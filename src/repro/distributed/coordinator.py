"""The shard coordinator: partition, dispatch, merge — exactly.

One :class:`ShardCoordinator` owns the worker membership of a
coordinator-mode ``repro serve`` and turns a pending workload's world
range ``[0, K)`` into per-shard sub-ranges:

* **partitioning** is chunk-aligned and contiguous
  (:func:`partition_ranges`), so the union of every shard's chunk
  boundaries is precisely the boundary set a single process would have
  used — even the ``sweeps`` counter merges exactly;
* **dispatch** fans the ranges out in parallel (one thread per range —
  the work happens on the shards, threads just wait on sockets);
* **failure handling** is two-tier: a transport failure is retried
  against the same shard with exponential backoff, then the shard is
  marked down and the *exact same range* is re-dispatched to the next
  healthy shard — bit-identical by the determinism contract, so a
  SIGKILLed worker mid-request costs latency, never correctness.  When
  every shard has failed a range, the coordinator evaluates it locally
  (unless local fallback is disabled, in which case the batch fails
  with a structured 503);
* **structured rejections** (a worker's
  :class:`~repro.api.errors.ReliabilityError`, e.g. a fingerprint
  mismatch after an un-synced ``/v1/update``) are *not* retried — they
  are deterministic verdicts — and propagate to the client with their
  original type and status;
* **membership/health** is tracked per shard and surfaced under the
  ``shards`` section of ``/v1/stats``; a downed shard is optimistically
  re-probed with real work after a cooldown.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.errors import ShardUnavailableError
from repro.api.types import QuerySpec, ShardRunRequest
from repro.distributed.client import ShardClient, ShardDispatchError
from repro.distributed.config import ShardTierConfig

#: The contributor tag of ranges the coordinator evaluated itself.
LOCAL_CONTRIBUTOR = "local"


def partition_ranges(
    total: int, chunk_size: int, parts: int
) -> List[Tuple[int, int]]:
    """Split ``[0, total)`` into at most ``parts`` chunk-aligned ranges.

    Ranges are contiguous, disjoint, cover the whole interval, and are
    balanced to within one chunk.  Alignment matters for one reason
    only: it keeps every shard's chunk boundaries identical to the
    single-process run's, so merged sweep counts match exactly.  Hit
    counts are bit-identical under *any* partition.
    """
    if total <= 0:
        return []
    chunks = -(-total // chunk_size)  # ceil
    parts = max(1, min(int(parts), chunks))
    base, extra = divmod(chunks, parts)
    ranges: List[Tuple[int, int]] = []
    chunk_cursor = 0
    for index in range(parts):
        span = base + (1 if index < extra else 0)
        start = chunk_cursor * chunk_size
        stop = min((chunk_cursor + span) * chunk_size, total)
        ranges.append((start, stop))
        chunk_cursor += span
    return ranges


class ShardMember:
    """Live bookkeeping for one shard worker (mutated under the
    coordinator's lock)."""

    def __init__(self, url: str, client: ShardClient) -> None:
        self.url = url
        self.client = client
        self.healthy = True
        self.down_since: Optional[float] = None  # time.monotonic()
        self.dispatches = 0
        self.failures = 0
        self.last_error: Optional[str] = None

    def snapshot(self, now: float, cooldown: float) -> dict:
        return {
            "url": self.url,
            "healthy": self.healthy,
            "cooling_down": (
                not self.healthy
                and self.down_since is not None
                and (now - self.down_since) < cooldown
            ),
            "dispatches": self.dispatches,
            "failures": self.failures,
            "last_error": self.last_error,
        }


class ShardCoordinator:
    """Dispatches world ranges across a fixed shard membership."""

    def __init__(
        self,
        shard_urls: Sequence[str],
        config: Optional[ShardTierConfig] = None,
    ) -> None:
        if not shard_urls:
            raise ValueError("a shard coordinator needs at least one shard")
        self.config = config if config is not None else ShardTierConfig.from_env()
        self.members: Tuple[ShardMember, ...] = tuple(
            ShardMember(url, ShardClient(url, timeout=self.config.timeout))
            for url in shard_urls
        )
        self._lock = threading.Lock()
        self._rotation = 0
        self._batches = 0
        self._ranges = 0
        self._retries = 0
        self._redispatches = 0
        self._local_fallbacks = 0

    # ------------------------------------------------------------------
    # Membership / health
    # ------------------------------------------------------------------

    def _is_available(self, member: ShardMember, now: float) -> bool:
        if member.healthy:
            return True
        # Optimistic revival: after the cooldown the next range *is* the
        # health probe — a correct reply marks the shard back up, and a
        # failed one just re-dispatches (free, by determinism).
        return (
            member.down_since is not None
            and (now - member.down_since) >= self.config.cooldown
        )

    def available_count(self) -> int:
        """How many shards a new batch may currently partition across."""
        now = time.monotonic()
        with self._lock:
            return sum(
                1 for member in self.members if self._is_available(member, now)
            )

    def _pick(self, tried: List[ShardMember]) -> Optional[ShardMember]:
        with self._lock:
            now = time.monotonic()
            candidates = [
                member
                for member in self.members
                if member not in tried and self._is_available(member, now)
            ]
            if not candidates:
                return None
            member = candidates[self._rotation % len(candidates)]
            self._rotation += 1
            member.dispatches += 1
            return member

    def _mark_down(self, member: ShardMember, error: object) -> None:
        with self._lock:
            member.healthy = False
            member.down_since = time.monotonic()
            member.failures += 1
            member.last_error = str(error)

    def _mark_up(self, member: ShardMember) -> None:
        with self._lock:
            if not member.healthy:
                member.healthy = True
                member.down_since = None
                member.last_error = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _call_with_retry(self, member: ShardMember, request):
        """Bounded same-shard retries with exponential backoff."""
        delay = self.config.backoff
        for attempt in range(self.config.retries + 1):
            try:
                return member.client.shard_run(request)
            except ShardDispatchError:
                if attempt == self.config.retries:
                    raise
                with self._lock:
                    self._retries += 1
                if delay > 0:
                    time.sleep(delay)
                delay *= 2

    def _dispatch_range(
        self,
        make_request,
        start: int,
        stop: int,
        query_count: int,
        local_evaluator: Callable[[int, int], Tuple[np.ndarray, int]],
    ) -> Tuple[np.ndarray, int, str]:
        """One range, to completion: ``(hits, sweeps, contributor)``.

        Walks healthy shards until one answers correctly; every failed
        shard is marked down and the identical range moves on (the
        re-dispatch whose bit-identity the determinism contract
        guarantees).  Structured rejections propagate immediately.
        """
        tried: List[ShardMember] = []
        while True:
            member = self._pick(tried)
            if member is None:
                if self.config.local_fallback:
                    with self._lock:
                        self._local_fallbacks += 1
                    hits, sweeps = local_evaluator(start, stop)
                    return hits, sweeps, LOCAL_CONTRIBUTOR
                raise ShardUnavailableError(
                    f"no healthy shard left for worlds [{start}, {stop}) "
                    f"({len(self.members)} configured, "
                    f"{len(tried)} failed this range) and local fallback "
                    f"is disabled"
                )
            request = make_request(start, stop)
            try:
                response = self._call_with_retry(member, request)
            except ShardDispatchError as error:
                self._mark_down(member, error)
                tried.append(member)
                with self._lock:
                    self._redispatches += 1
                continue
            # A reply that answers a different stream, range, or
            # workload than dispatched is a protocol failure — treat it
            # like a vanished worker, never merge it.
            if (
                response.fingerprint != request.fingerprint
                or response.seed != request.seed
                or response.start != start
                or response.stop != stop
                or len(response.hits) != query_count
            ):
                self._mark_down(
                    member,
                    f"protocol mismatch: reply does not match the "
                    f"dispatched range [{start}, {stop})",
                )
                tried.append(member)
                with self._lock:
                    self._redispatches += 1
                continue
            self._mark_up(member)
            return (
                np.asarray(response.hits, dtype=np.int64),
                int(response.sweeps),
                member.url,
            )

    def evaluate(
        self, engine, queries, k_needed: int
    ) -> Tuple[np.ndarray, int, int]:
        """Hit counts for worlds ``[0, k_needed)``, fanned across shards.

        ``queries`` are the plan's *pending* unique queries (already
        resolved); ``engine`` supplies the stream identity (graph
        fingerprint, seed, chunk size, kernels) and serves as the local
        fallback evaluator.  Returns ``(hits, sweeps, contributors)``
        with ``hits`` aligned with ``queries`` and ``contributors`` the
        number of distinct hosts (local included) that served ranges.
        """
        specs = tuple(
            QuerySpec(
                source=query.source,
                target=query.target,
                samples=query.samples,
                max_hops=query.max_hops,
            )
            for query in queries
        )
        ranges = partition_ranges(
            k_needed, engine.chunk_size, max(self.available_count(), 1)
        )

        def make_request(start: int, stop: int) -> ShardRunRequest:
            return ShardRunRequest(
                queries=specs,
                start=start,
                stop=stop,
                seed=engine.seed,
                fingerprint=engine.fingerprint,
                chunk_size=engine.chunk_size,
                kernels=engine.kernels,
            )

        def local_evaluator(start: int, stop: int):
            result = engine.run_range(queries, start, stop)
            return np.asarray(result.hits, dtype=np.int64), result.sweeps

        if len(ranges) == 1:
            outcomes = [
                self._dispatch_range(
                    make_request, ranges[0][0], ranges[0][1],
                    len(specs), local_evaluator,
                )
            ]
        else:
            with ThreadPoolExecutor(max_workers=len(ranges)) as executor:
                futures = [
                    executor.submit(
                        self._dispatch_range, make_request, start, stop,
                        len(specs), local_evaluator,
                    )
                    for start, stop in ranges
                ]
                outcomes = [future.result() for future in futures]
        hits = np.zeros(len(specs), dtype=np.int64)
        sweeps = 0
        contributors = set()
        for range_hits, range_sweeps, contributor in outcomes:
            hits += range_hits
            sweeps += range_sweeps
            contributors.add(contributor)
        with self._lock:
            self._batches += 1
            self._ranges += len(ranges)
        return hits, sweeps, max(len(contributors), 1)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        """The ``shards`` section of a coordinator's ``/v1/stats``."""
        now = time.monotonic()
        with self._lock:
            members = [
                member.snapshot(now, self.config.cooldown)
                for member in self.members
            ]
            return {
                "total": len(self.members),
                "healthy": sum(
                    1 for member in self.members if member.healthy
                ),
                "members": members,
                "batches": self._batches,
                "ranges_dispatched": self._ranges,
                "retries": self._retries,
                "redispatches": self._redispatches,
                "local_fallbacks": self._local_fallbacks,
                "config": self.config.to_dict(),
            }


__all__ = [
    "LOCAL_CONTRIBUTOR",
    "ShardCoordinator",
    "ShardMember",
    "partition_ranges",
]
