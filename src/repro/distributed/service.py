"""`CoordinatedReliabilityService`: the front door of a shard tier.

A drop-in :class:`~repro.api.service.ReliabilityService` whose
engine-backed batches are evaluated by remote shard workers instead of
the local sweep loop.  Everything else — estimate, warm, update, topk,
bounds, the sequential oracle, non-engine batch methods — runs locally,
unchanged, which is what makes ``repro serve --coordinator`` answer the
exact ``/v1`` surface a plain server does.

Wire compatibility: a coordinator's ``/v1/batch`` document has the same
keys, the same per-query rows, and the same deterministic engine
counters (``worlds_sampled``, ``sweeps``, ``cache_hits``,
``cache_misses``, ``fingerprint``) as a single-process server answering
the identical request — bit for bit.  The only honest divergences are
``engine.mode`` (``"distributed"`` instead of ``"shared_worlds"``),
``engine.workers`` (distinct hosts that contributed), and
``engine.seconds`` (wall clock).  The integration suite pins exactly
this: full-document equality after normalising those three fields.

The coordinator owns the caches: it performs the result-cache lookups
before dispatching (so warm queries never touch the network), merges
the shards' integer hit counts exactly, and writes the resulting
estimates back through the same ``put_many`` path the local engine
uses.  Shards never cache partial counts.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro.api.service import ReliabilityService
from repro.api.types import BatchRequest, BatchResponse
from repro.engine.cache import graph_fingerprint
from repro.core.graph import UncertainGraph
from repro.distributed.client import normalize_shard_url, parse_shard_list
from repro.distributed.config import ShardTierConfig
from repro.distributed.coordinator import ShardCoordinator
from repro.engine.batch import BatchEngine, BatchResult
from repro.engine.plan import plan_queries


class CoordinatedReliabilityService(ReliabilityService):
    """A reliability service that fans engine batches out to shards.

    Parameters (beyond :class:`ReliabilityService`'s)
    -------------------------------------------------
    shards:
        The worker membership: a ``"host:port,host:port"`` string (the
        CLI's ``--shards`` value) or a sequence of addresses/URLs.
        Each shard is a plain ``repro serve`` over the *same dataset,
        scale, and seed* — the fingerprint check on every dispatch
        enforces the "same graph" half of that contract at runtime.
    shard_config:
        A :class:`ShardTierConfig`; ``None`` resolves the
        ``REPRO_SHARD_*`` environment knobs.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        shards: Union[str, Sequence[str]],
        shard_config: Optional[ShardTierConfig] = None,
        **options,
    ) -> None:
        super().__init__(graph, **options)
        if isinstance(shards, str):
            urls = parse_shard_list(shards)
        else:
            urls = tuple(normalize_shard_url(spec) for spec in shards)
        self.coordinator = ShardCoordinator(urls, config=shard_config)

    # ------------------------------------------------------------------
    # The coordinator loop
    # ------------------------------------------------------------------

    def estimate_batch(self, request: BatchRequest) -> BatchResponse:
        """Answer a workload; engine-backed methods fan out to shards.

        Non-engine methods and the sequential oracle have no world
        ranges to partition — they run locally through the inherited
        path.  ``request.workers`` is validated as usual but does not
        fan anything out here: parallelism comes from the shard tier,
        and each shard applies its own compute configuration.

        ``method="auto"`` resolves through the coordinator's own router
        (shard workers never see "auto" — dispatches carry world ranges,
        not methods), so the tier routes exactly like a plain server.
        """
        fingerprint = graph_fingerprint(self.graph)
        request, decision = self._resolve_auto_batch(request)
        routing = None if decision is None else decision.to_dict()
        batch_path = self.batch_path_of(request.method)
        if batch_path != "engine" or request.sequential:
            response = super().estimate_batch(request)
            if routing is not None:
                response = dataclasses.replace(response, routing=routing)
            return response
        self._validate_batch(request, batch_path)
        queries = self.resolve_queries(
            request.queries, request.samples, request.max_hops
        )
        seed = self._resolve_seed(request.seed)
        chunk_size = (
            self.chunk_size
            if request.chunk_size is None
            else request.chunk_size
        )
        self._record_queries(queries, seed)
        # workers=1 on purpose: this engine plans, serves the cache, and
        # is the local fallback evaluator — the fan-out happens across
        # shards, not local processes.
        engine = self._engine(seed, chunk_size, 1, request.kernels)
        result = self._run_distributed(engine, queries)
        report = self._engine_report("distributed", result, chunk_size)
        rows = self._rows_from_result(result)
        per_query = result.seconds / max(len(rows), 1)
        for row in rows:
            self.telemetry.record(
                request.method,
                fingerprint=fingerprint,
                samples=row.samples,
                max_hops=row.max_hops,
                seconds=per_query,
                estimate=row.estimate,
            )
        self._count("batch")
        return BatchResponse(
            method=request.method,
            seed=seed,
            engine=report,
            results=rows,
            dataset=self.dataset_key,
            scale=self.scale,
            routing=routing,
        )

    def _run_distributed(
        self, engine: BatchEngine, queries: Iterable
    ) -> BatchResult:
        """:meth:`BatchEngine.run` with the sweep loop moved off-host.

        Identical plan, cache lookups, merge arithmetic, and cache
        writes — only the evaluation of pending worlds is delegated to
        :meth:`ShardCoordinator.evaluate`.  Bit-identical to the local
        run by the determinism contract.
        """
        started = time.perf_counter()
        plan = plan_queries(engine.graph, queries)
        unique_estimates = np.zeros(plan.unique_count, dtype=np.float64)
        pending = np.zeros(plan.unique_count, dtype=bool)
        cache_hits = cache_misses = 0
        for index, query in enumerate(plan.queries):
            cached = engine.cache.get(engine.query_key(query))
            if cached is None:
                cache_misses += 1
                pending[index] = True
            else:
                cache_hits += 1
                unique_estimates[index] = cached
        worlds = sweeps = 0
        contributors = 1
        if pending.any():
            budgets = np.asarray(
                [query.samples for query in plan.queries], dtype=np.int64
            )
            pending_indices = np.nonzero(pending)[0]
            pending_queries = [plan.queries[i] for i in pending_indices]
            k_needed = int(budgets[pending].max())
            pending_hits, sweeps, contributors = self.coordinator.evaluate(
                engine, pending_queries, k_needed
            )
            worlds = k_needed
            unique_estimates[pending] = pending_hits / budgets[pending]
            engine.cache.put_many(
                (
                    engine.query_key(plan.queries[index]),
                    float(unique_estimates[index]),
                )
                for index in pending_indices
            )
        return BatchResult(
            queries=tuple(plan.queries[i] for i in plan.assignment),
            estimates=plan.scatter(unique_estimates),
            seed=engine.seed,
            worlds_sampled=worlds,
            sweeps=sweeps,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            seconds=time.perf_counter() - started,
            workers=contributors,
            from_cache=plan.scatter(~pending),
            fingerprint=engine.fingerprint,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The inherited counters plus the shard-tier health section."""
        payload = super().stats()
        payload["shards"] = self.coordinator.statistics()
        return payload


__all__ = ["CoordinatedReliabilityService"]
