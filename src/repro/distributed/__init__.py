"""The distributed shard tier: many hosts behind one front door.

The engine's determinism contract — world ``i`` is a pure function of
``(graph fingerprint, seed, i)`` and per-world hit counts are integers —
makes cross-host reduction *exact*: a coordinator can partition a
batch's world range ``[0, K)`` across N shard workers, sum their
integer hit-count vectors, and obtain bit for bit what one process
sweeping the whole range would have computed.  Retries and re-dispatch
are free for the same reason, which is the robustness story of the
whole tier.

Pieces::

    repro serve --coordinator --shards host:port,host:port ...
        the front door: a CoordinatedReliabilityService behind the
        standard /v1 HTTP surface
    repro serve ...
        a shard worker: any plain server — POST /v1/shard/run is
        registered everywhere

* :class:`CoordinatedReliabilityService` — the facade subclass whose
  engine-backed batches fan out (:mod:`repro.distributed.service`);
* :class:`ShardCoordinator` — partition/dispatch/merge + membership
  health (:mod:`repro.distributed.coordinator`);
* :class:`ShardClient` — the per-worker HTTP client separating
  retryable transport failures from structured rejections
  (:mod:`repro.distributed.client`);
* :class:`ShardTierConfig` — the ``REPRO_SHARD_*`` robustness knobs
  (:mod:`repro.distributed.config`).

Operator guide: ``docs/distributed.md``.
"""

from repro.distributed.client import (
    ShardClient,
    ShardDispatchError,
    normalize_shard_url,
    parse_shard_list,
    rejection_from_body,
)
from repro.distributed.config import (
    BACKOFF_ENV_VAR,
    COOLDOWN_ENV_VAR,
    LOCAL_FALLBACK_ENV_VAR,
    RETRIES_ENV_VAR,
    TIMEOUT_ENV_VAR,
    ShardTierConfig,
)
from repro.distributed.coordinator import (
    LOCAL_CONTRIBUTOR,
    ShardCoordinator,
    ShardMember,
    partition_ranges,
)
from repro.distributed.service import CoordinatedReliabilityService

__all__ = [
    "BACKOFF_ENV_VAR",
    "COOLDOWN_ENV_VAR",
    "LOCAL_CONTRIBUTOR",
    "LOCAL_FALLBACK_ENV_VAR",
    "RETRIES_ENV_VAR",
    "TIMEOUT_ENV_VAR",
    "CoordinatedReliabilityService",
    "ShardClient",
    "ShardCoordinator",
    "ShardDispatchError",
    "ShardMember",
    "ShardTierConfig",
    "normalize_shard_url",
    "parse_shard_list",
    "partition_ranges",
    "rejection_from_body",
]
