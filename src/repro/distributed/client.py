"""The coordinator's HTTP client for one shard worker (stdlib-only).

A shard worker is just a plain ``repro serve`` process; this client
speaks its JSON protocol over :mod:`urllib`.  The crucial design point
is the **two-way split of failures**:

* transport-level failures — timeouts, refused/reset connections, a
  worker SIGKILLed mid-reply, non-JSON garbage, any 5xx — raise
  :class:`ShardDispatchError`.  These are *retryable by contract*: the
  determinism contract makes re-sending the identical range free, so
  the coordinator retries, backs off, and ultimately re-dispatches the
  range to a different shard;
* structured rejections — a worker answering with a well-formed
  ``{"error": {"type": ..., "message": ...}}`` body — are reconstructed
  as the matching :class:`~repro.api.errors.ReliabilityError` subclass
  and **raised as such**.  They are deterministic verdicts about the
  request (wrong fingerprint, malformed range), not about the
  transport; retrying cannot change them, so they propagate to the
  coordinator's client with their original status (409 for a
  fingerprint mismatch, 400 for a bad request) instead of decaying
  into a generic 500.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Any, Optional, Tuple

from repro.api.errors import (
    FingerprintMismatchError,
    GraphLoadError,
    InvalidQueryError,
    PayloadTooLargeError,
    ReliabilityError,
    ShardUnavailableError,
    UnknownEstimatorError,
)
from repro.api.types import ShardRunRequest, ShardRunResponse
from repro.distributed.config import DEFAULT_TIMEOUT

#: Error types a worker can legitimately reject a dispatch with; any
#: other (or unstructured) body is a transport failure, not a verdict.
_REJECTION_TYPES = {
    cls.__name__: cls
    for cls in (
        FingerprintMismatchError,
        InvalidQueryError,
        UnknownEstimatorError,
        GraphLoadError,
        PayloadTooLargeError,
        ShardUnavailableError,
    )
}


class ShardDispatchError(Exception):
    """A transport-level failure talking to one shard worker.

    Retryable by contract: world ``i`` is a pure function of
    ``(graph, seed, i)``, so re-sending the identical range — to this
    shard or any other — reproduces the identical counts.
    """


def rejection_from_body(body: bytes) -> Optional[ReliabilityError]:
    """Reconstruct a worker's structured rejection, if the body is one.

    Returns ``None`` for anything that is not a well-formed
    ``{"error": {"type": <known ReliabilityError>, "message": str}}``
    document — the caller then treats the reply as a transport failure.
    """
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    error = payload.get("error")
    if not isinstance(error, dict):
        return None
    type_name = error.get("type")
    message = error.get("message")
    if not isinstance(type_name, str) or not isinstance(message, str):
        return None
    cls = _REJECTION_TYPES.get(type_name)
    return None if cls is None else cls(message)


def normalize_shard_url(spec: str) -> str:
    """``host:port`` (or a full URL) -> a scheme-qualified base URL."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty shard address")
    if "://" not in spec:
        spec = f"http://{spec}"
    return spec.rstrip("/")


def parse_shard_list(specs: str) -> Tuple[str, ...]:
    """Parse the CLI's ``--shards host:port,host:port,...`` value."""
    urls = tuple(
        normalize_shard_url(part)
        for part in specs.split(",")
        if part.strip()
    )
    if not urls:
        raise ValueError(
            "expected a comma-separated list of shard addresses "
            "(host:port or http://host:port)"
        )
    return urls


class ShardClient:
    """JSON-over-HTTP calls to one shard worker, with a per-call timeout."""

    def __init__(
        self, base_url: str, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self.base_url = normalize_shard_url(base_url)
        self.timeout = float(timeout)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.base_url!r}, "
            f"timeout={self.timeout})"
        )

    def _request(self, path: str, body: Optional[bytes]) -> Any:
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers=(
                {"Content-Type": "application/json"} if body else {}
            ),
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as reply:
                raw = reply.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            if error.code < 500:
                rejection = rejection_from_body(raw)
                if rejection is not None:
                    raise rejection from None
            raise ShardDispatchError(
                f"{self.base_url}{path} answered HTTP {error.code}"
            ) from None
        except (OSError, HTTPException) as error:
            # URLError, timeouts, refused/reset connections, and a
            # worker dying mid-reply (RemoteDisconnected/BadStatusLine)
            # all land here: the transport failed, the request did not.
            raise ShardDispatchError(
                f"{self.base_url}{path}: {error}"
            ) from None
        try:
            return json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError):
            raise ShardDispatchError(
                f"{self.base_url}{path} returned a non-JSON body"
            ) from None

    def shard_run(self, request: ShardRunRequest) -> ShardRunResponse:
        """Dispatch one world range; parse the reply strictly."""
        payload = self._request(
            "/v1/shard/run",
            json.dumps(request.to_dict()).encode("utf-8"),
        )
        try:
            return ShardRunResponse.from_dict(payload)
        except InvalidQueryError as error:
            # A 200 whose body does not parse as a shard response means
            # the host is not speaking the protocol — transport failure.
            raise ShardDispatchError(
                f"{self.base_url}/v1/shard/run returned a malformed "
                f"response: {error}"
            ) from None

    def health(self) -> Any:
        """The worker's ``GET /v1/health`` payload."""
        return self._request("/v1/health", None)


__all__ = [
    "ShardClient",
    "ShardDispatchError",
    "normalize_shard_url",
    "parse_shard_list",
    "rejection_from_body",
]
