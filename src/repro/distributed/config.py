"""Tuning knobs of the distributed shard tier (env-var backed).

Every knob follows the repo's convention for operational levers
(``REPRO_ENGINE_WORKERS``, ``REPRO_SERVE_MAX_BODY``, ...): an explicit
value wins, else the environment variable, else the baked-in default —
and a malformed or out-of-range override falls back to the default
rather than disabling the tier.  None of these knobs can affect a
single bit of any estimate (the determinism contract makes retries and
re-dispatch value-transparent); they trade only wall-clock patience for
failure-detection latency.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Seconds one dispatch attempt may take before it counts as failed.
DEFAULT_TIMEOUT = 30.0

#: Extra attempts against the *same* shard before it is marked down.
DEFAULT_RETRIES = 2

#: Seconds before the first same-shard retry; doubles per attempt.
DEFAULT_BACKOFF = 0.1

#: Seconds an unhealthy shard sits out before the coordinator probes it
#: again with real work (optimistic revival — determinism makes a probe
#: that succeeds indistinguishable from any other dispatch).
DEFAULT_COOLDOWN = 5.0

#: Whether the coordinator may evaluate a range itself when every shard
#: has failed it.  On by default: availability costs nothing because
#: the local engine computes the exact same counts.
DEFAULT_LOCAL_FALLBACK = True

TIMEOUT_ENV_VAR = "REPRO_SHARD_TIMEOUT"
RETRIES_ENV_VAR = "REPRO_SHARD_RETRIES"
BACKOFF_ENV_VAR = "REPRO_SHARD_BACKOFF"
COOLDOWN_ENV_VAR = "REPRO_SHARD_COOLDOWN"
LOCAL_FALLBACK_ENV_VAR = "REPRO_SHARD_LOCAL_FALLBACK"


def _env_float(name: str, default: float, minimum: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value >= minimum else default


def _env_int(name: str, default: int, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= minimum else default


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    return default


@dataclass(frozen=True)
class ShardTierConfig:
    """The coordinator's robustness knobs, resolved once per service."""

    timeout: float = DEFAULT_TIMEOUT
    retries: int = DEFAULT_RETRIES
    backoff: float = DEFAULT_BACKOFF
    cooldown: float = DEFAULT_COOLDOWN
    local_fallback: bool = DEFAULT_LOCAL_FALLBACK

    @classmethod
    def from_env(cls) -> "ShardTierConfig":
        """Resolve every knob from the environment (defaults otherwise)."""
        return cls(
            timeout=_env_float(TIMEOUT_ENV_VAR, DEFAULT_TIMEOUT, 0.001),
            retries=_env_int(RETRIES_ENV_VAR, DEFAULT_RETRIES, 0),
            backoff=_env_float(BACKOFF_ENV_VAR, DEFAULT_BACKOFF, 0.0),
            cooldown=_env_float(COOLDOWN_ENV_VAR, DEFAULT_COOLDOWN, 0.0),
            local_fallback=_env_bool(
                LOCAL_FALLBACK_ENV_VAR, DEFAULT_LOCAL_FALLBACK
            ),
        )

    def to_dict(self) -> dict:
        """The ``/v1/stats`` shard-section echo of the effective knobs."""
        return {
            "timeout": self.timeout,
            "retries": self.retries,
            "backoff": self.backoff,
            "cooldown": self.cooldown,
            "local_fallback": self.local_fallback,
        }


__all__ = [
    "DEFAULT_TIMEOUT",
    "DEFAULT_RETRIES",
    "DEFAULT_BACKOFF",
    "DEFAULT_COOLDOWN",
    "DEFAULT_LOCAL_FALLBACK",
    "TIMEOUT_ENV_VAR",
    "RETRIES_ENV_VAR",
    "BACKOFF_ENV_VAR",
    "COOLDOWN_ENV_VAR",
    "LOCAL_FALLBACK_ENV_VAR",
    "ShardTierConfig",
]
