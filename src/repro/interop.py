"""NetworkX interoperability.

Real uncertain-graph datasets usually arrive as NetworkX graphs with a
probability attribute; these converters bridge them to the frozen CSR
:class:`~repro.core.graph.UncertainGraph` and back.  Node labels of any
hashable type are supported — they are mapped to dense ids and the mapping
is returned so queries can be phrased in the original labels.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import networkx as nx

from repro.core.graph import UncertainGraph

DEFAULT_ATTRIBUTE = "probability"


def from_networkx(
    source: "nx.Graph",
    probability_attribute: str = DEFAULT_ATTRIBUTE,
    default_probability: float | None = None,
) -> Tuple[UncertainGraph, Dict[Hashable, int]]:
    """Convert a NetworkX (Di)Graph into an :class:`UncertainGraph`.

    Undirected inputs become bi-directed (both orientations share the
    edge's probability, like the paper's social-network datasets).  Every
    edge must carry ``probability_attribute`` unless
    ``default_probability`` supplies a fallback.  Returns the graph and
    the label -> dense-id mapping.
    """
    labels = list(source.nodes)
    node_map: Dict[Hashable, int] = {label: i for i, label in enumerate(labels)}

    def probability_of(data: dict, edge) -> float:
        if probability_attribute in data:
            return float(data[probability_attribute])
        if default_probability is not None:
            return float(default_probability)
        raise ValueError(
            f"edge {edge!r} lacks attribute {probability_attribute!r} and no "
            "default_probability was given"
        )

    triples = []
    for u, v, data in source.edges(data=True):
        probability = probability_of(data, (u, v))
        triples.append((node_map[u], node_map[v], probability))
        if not source.is_directed():
            triples.append((node_map[v], node_map[u], probability))
    return UncertainGraph(len(labels), triples), node_map


def to_networkx(
    graph: UncertainGraph,
    probability_attribute: str = DEFAULT_ATTRIBUTE,
) -> "nx.DiGraph":
    """Convert an :class:`UncertainGraph` to a NetworkX DiGraph.

    Edge probabilities land in ``probability_attribute``; node ids are the
    dense integers of the CSR graph.
    """
    result = nx.DiGraph()
    result.add_nodes_from(range(graph.node_count))
    for u, v, p in graph.iter_edges():
        result.add_edge(u, v, **{probability_attribute: p})
    return result


__all__ = ["DEFAULT_ATTRIBUTE", "from_networkx", "to_networkx"]
