"""Statistics helpers shared by the convergence framework and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np


@dataclass
class RunningMoments:
    """Welford accumulator for mean/variance without storing samples.

    Used where an experiment streams many per-pair estimates and only the
    first two moments are reported (paper Eqs. 11-13).
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``n - 1`` denominator, 0 if n < 2)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)


def mean_and_variance(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and unbiased variance of ``values`` (Eq. 11 of the paper)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("mean_and_variance requires at least one value")
    if array.size == 1:
        return float(array[0]), 0.0
    return float(array.mean()), float(array.var(ddof=1))


def dispersion_index(variance: float, mean: float) -> float:
    """Index of dispersion ``variance / mean`` (paper's rho_K).

    A mean of zero (reliability exactly 0 in all repeats) has zero variance
    too; the paper treats that point as converged, so we return 0.0.
    """
    if mean == 0.0:
        return 0.0
    return variance / mean


def binomial_variance(reliability: float, samples: int) -> float:
    """Theoretical MC estimator variance ``R(1-R)/K`` (paper Eq. 4)."""
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    return reliability * (1.0 - reliability) / samples


def chernoff_sample_bound(
    reliability: float, epsilon: float = 0.1, failure: float = 0.05
) -> int:
    """Chernoff bound on #samples for an (epsilon, failure) guarantee (Eq. 5).

    ``K >= 3 / (eps^2 R) * ln(2 / lambda)`` ensures the relative error of the
    MC estimate exceeds ``epsilon`` with probability at most ``failure``.
    """
    if not 0.0 < reliability <= 1.0:
        raise ValueError(f"reliability must be in (0, 1], got {reliability}")
    if not 0.0 < epsilon:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < failure < 1.0:
        raise ValueError(f"failure must be in (0, 1), got {failure}")
    bound = 3.0 / (epsilon**2 * reliability) * np.log(2.0 / failure)
    return int(np.ceil(bound))


def pairwise_deviation(relative_errors: Sequence[float]) -> float:
    """Mean absolute pairwise deviation D of relative errors (paper Eq. 15).

    The paper normalises by ``5 * 6`` for six estimators, i.e. by
    ``k * (k - 1)`` — the number of ordered pairs — which this generalises.
    """
    errors = np.asarray(relative_errors, dtype=np.float64)
    k = errors.size
    if k < 2:
        return 0.0
    diffs = np.abs(errors[:, None] - errors[None, :])
    return float(diffs.sum() / (k * (k - 1)))


__all__ = [
    "RunningMoments",
    "mean_and_variance",
    "dispersion_index",
    "binomial_variance",
    "chernoff_sample_bound",
    "pairwise_deviation",
]
