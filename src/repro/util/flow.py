"""Max-flow / min-cut substrate (Edmonds-Karp) for reliability bounds.

The reliability upper bound of :mod:`repro.core.bounds` needs the s-t edge
cut minimising the probability that at least one cut edge exists — a
min-cut under capacities ``-log(1 - p(e))``.  This module provides a small,
dependency-free max-flow implementation over an explicit edge list with
float capacities (``inf`` supported for probability-1 edges, which can
never be "cut away").
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence, Tuple

import numpy as np

FlowEdge = Tuple[int, int, float]  # (source, target, capacity)


class MaxFlowResult:
    """Outcome of a max-flow computation: value and a minimum cut."""

    def __init__(self, value: float, cut_edges: List[int], source_side: np.ndarray):
        #: Maximum flow value == minimum cut capacity.
        self.value = value
        #: Indices (into the input edge list) of a minimum s-t cut.
        self.cut_edges = cut_edges
        #: Boolean mask of nodes on the source side of the cut.
        self.source_side = source_side


def max_flow(
    node_count: int, edges: Sequence[FlowEdge], source: int, sink: int
) -> MaxFlowResult:
    """Edmonds-Karp max flow; returns the flow value and a minimum cut.

    Runs in ``O(V E^2)`` — ample for the benchmark-scale graphs this
    library targets.  ``capacity = inf`` edges are supported and never
    appear in the returned cut (if every cut requires one, the flow and
    cut value are infinite).
    """
    if not 0 <= source < node_count or not 0 <= sink < node_count:
        raise ValueError("source/sink out of range")
    if source == sink:
        raise ValueError("source and sink must differ")

    # Residual graph as adjacency of edge slots; each input edge gets a
    # forward slot and a zero-capacity reverse slot.
    head: List[int] = []
    capacity: List[float] = []
    adjacency: List[List[int]] = [[] for _ in range(node_count)]
    for u, v, cap in edges:
        if cap < 0:
            raise ValueError(f"negative capacity {cap} on edge ({u}, {v})")
        adjacency[u].append(len(head))
        head.append(v)
        capacity.append(float(cap))
        adjacency[v].append(len(head))
        head.append(u)
        capacity.append(0.0)

    total_flow = 0.0
    while True:
        # BFS for a shortest augmenting path.
        parent_edge = [-1] * node_count
        parent_edge[source] = -2
        queue = deque([source])
        while queue and parent_edge[sink] == -1:
            node = queue.popleft()
            for slot in adjacency[node]:
                neighbor = head[slot]
                if parent_edge[neighbor] == -1 and capacity[slot] > 1e-15:
                    parent_edge[neighbor] = slot
                    queue.append(neighbor)
        if parent_edge[sink] == -1:
            break
        # Bottleneck and augment.
        bottleneck = float("inf")
        node = sink
        while node != source:
            slot = parent_edge[node]
            bottleneck = min(bottleneck, capacity[slot])
            node = head[slot ^ 1]
        if bottleneck == float("inf"):
            total_flow = float("inf")
            break
        node = sink
        while node != source:
            slot = parent_edge[node]
            capacity[slot] -= bottleneck
            capacity[slot ^ 1] += bottleneck
            node = head[slot ^ 1]
        total_flow += bottleneck

    # Min cut: nodes reachable in the residual graph form the source side.
    source_side = np.zeros(node_count, dtype=bool)
    if total_flow != float("inf"):
        source_side[source] = True
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for slot in adjacency[node]:
                neighbor = head[slot]
                if not source_side[neighbor] and capacity[slot] > 1e-15:
                    source_side[neighbor] = True
                    queue.append(neighbor)

    cut_edges = [
        index
        for index, (u, v, _) in enumerate(edges)
        if source_side[u] and not source_side[v]
    ]
    return MaxFlowResult(total_flow, cut_edges, source_side)


__all__ = ["FlowEdge", "MaxFlowResult", "max_flow"]
