"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).  Centralising
the coercion here keeps experiments reproducible: an experiment seeds one
generator and *spawns* independent child streams for each (pair, repeat, K)
cell, so adding repeats never perturbs earlier ones.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    anything else creates a fresh, independent generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from ``seed``.

    Used by the experiment runner to give every query pair and every repeat
    its own stream, so results are reproducible yet uncorrelated.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the parent's bit generator state.
        return [ensure_generator(int(seed.integers(2**63))) for _ in range(count)]
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def stable_substream(seed: SeedLike, *keys: int) -> np.random.Generator:
    """Return a generator keyed by ``keys`` that is stable across runs.

    ``stable_substream(seed, pair_index, repeat_index)`` always yields the
    same stream for the same arguments, independent of call order.
    """
    base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(
        seed if isinstance(seed, int) else None
    )
    keyed = np.random.SeedSequence(
        entropy=base.entropy, spawn_key=tuple(int(k) for k in keys)
    )
    return np.random.default_rng(keyed)


def geometric_skips(
    rng: np.random.Generator, probability: float, size: int
) -> np.ndarray:
    """Draw ``size`` geometric "failure counts" for an edge of ``probability``.

    Returns the number of worlds that *skip* the edge before it next exists,
    i.e. ``X ~ Geometric(p) - 1`` (support 0, 1, 2, ...).  An edge with
    probability 1 always exists (all-zero skips).
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {probability}")
    if probability == 1.0:
        return np.zeros(size, dtype=np.int64)
    return rng.geometric(probability, size=size).astype(np.int64) - 1


__all__ = [
    "SeedLike",
    "ensure_generator",
    "spawn_generators",
    "stable_substream",
    "geometric_skips",
]
