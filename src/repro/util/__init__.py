"""Shared low-level utilities: RNG plumbing, packed bitsets, statistics."""

from repro.util.rng import ensure_generator, spawn_generators
from repro.util.bitset import (
    packed_words,
    sample_bit_matrix,
    popcount,
    popcount_rows,
)
from repro.util.stats import (
    RunningMoments,
    dispersion_index,
    mean_and_variance,
)
from repro.util.validation import (
    check_node,
    check_probability,
    check_positive,
)

__all__ = [
    "ensure_generator",
    "spawn_generators",
    "packed_words",
    "sample_bit_matrix",
    "popcount",
    "popcount_rows",
    "RunningMoments",
    "dispersion_index",
    "mean_and_variance",
    "check_node",
    "check_probability",
    "check_positive",
]
