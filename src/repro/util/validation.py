"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any


def check_probability(value: float, name: str = "probability") -> float:
    """Validate an edge probability in ``(0, 1]`` and return it as float.

    Zero-probability edges are rejected: under possible-world semantics they
    can never exist, so the caller should simply omit them (this mirrors the
    paper's definition P : E -> (0, 1]).
    """
    probability = float(value)
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return probability


def check_node(node: int, node_count: int, name: str = "node") -> int:
    """Validate a dense node id against the graph size."""
    index = int(node)
    if not 0 <= index < node_count:
        raise ValueError(
            f"{name} {node!r} out of range for graph with {node_count} nodes"
        )
    return index


def check_positive(value: Any, name: str) -> int:
    """Validate a strictly positive integer parameter (e.g. sample counts)."""
    number = int(value)
    if number <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return number


__all__ = ["check_probability", "check_node", "check_positive"]
