"""Packed uint64 bitset kernels used by the BFS Sharing index.

A *bit matrix* of shape ``(rows, words)`` stores one K-bit vector per row,
where ``words = ceil(K / 64)``.  Row ``i``'s bit ``k`` says "edge/node ``i``
is present/reachable in sampled world ``k``".  All kernels are NumPy
vectorised so a single OR/AND touches K worlds at once — this is exactly the
"shared BFS across possible worlds" trick of Zhu et al. (ICDM'15).
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
_WORD_DTYPE = np.uint64

# Byte-level popcount table; uint64 rows are viewed as uint8 for counting.
_POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def concatenate_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Flatten ``[starts[i], ends[i])`` integer ranges into one index array.

    Vectorised equivalent of ``np.concatenate([np.arange(s, e) ...])`` —
    the gather step that lets BFS kernels touch a whole frontier's CSR
    edge blocks in O(1) NumPy calls.
    """
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    segment = np.repeat(np.arange(len(starts)), counts)
    cumulative = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total) - cumulative
    return starts[segment] + within


def packed_words(bit_count: int) -> int:
    """Number of uint64 words needed to hold ``bit_count`` bits."""
    if bit_count < 0:
        raise ValueError(f"bit_count must be non-negative, got {bit_count}")
    return (bit_count + WORD_BITS - 1) // WORD_BITS


def zeros(rows: int, bit_count: int) -> np.ndarray:
    """Allocate an all-zero bit matrix for ``rows`` vectors of ``bit_count`` bits."""
    return np.zeros((rows, packed_words(bit_count)), dtype=_WORD_DTYPE)


def full_row(bit_count: int) -> np.ndarray:
    """A single bit vector with the first ``bit_count`` bits set.

    Trailing bits of the last word stay zero so popcounts stay exact.
    """
    words = packed_words(bit_count)
    row = np.zeros(words, dtype=_WORD_DTYPE)
    if words == 0:
        return row
    row[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
    tail = bit_count % WORD_BITS
    if tail:
        row[-1] = np.uint64((1 << tail) - 1)
    return row


def _pack_word(draws: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, bits <= 64)`` boolean block into one word per row.

    Bit ``k`` of the result's row ``i`` is ``draws[i, k]`` — the packing
    step shared by :func:`sample_bit_matrix` and :func:`pack_bool_matrix`:
    a sum of ``2^k`` over set bit positions.
    """
    shifts = np.arange(draws.shape[1], dtype=np.uint64)
    weights = (np.uint64(1) << shifts).astype(np.uint64)
    return (draws.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)


def sample_bit_matrix(
    probabilities: np.ndarray, bit_count: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample a ``(len(probabilities), words)`` bit matrix.

    Bit ``k`` of row ``i`` is set with ``probabilities[i]``, independently —
    one Bernoulli possible-world draw per (edge, world) cell, packed.
    Sampling proceeds word-by-word to bound peak memory at
    ``64 * len(probabilities)`` booleans.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    rows = probabilities.shape[0]
    words = packed_words(bit_count)
    matrix = np.zeros((rows, words), dtype=_WORD_DTYPE)
    for word_index in range(words):
        bits_here = min(WORD_BITS, bit_count - word_index * WORD_BITS)
        draws = rng.random((rows, bits_here)) < probabilities[:, None]
        matrix[:, word_index] = _pack_word(draws)
    return matrix


def pack_bool_matrix(masks: np.ndarray) -> np.ndarray:
    """Pack a ``(bit_count, rows)`` boolean matrix into ``(rows, words)``.

    Bit ``k`` of packed row ``i`` is ``masks[k, i]`` — the layout of
    :func:`sample_bit_matrix`, but for *externally supplied* draws.  The
    batch engine (:mod:`repro.engine.batch`) uses this to pack a chunk of
    individually-seeded world masks into the shared-BFS bit layout without
    giving up per-world determinism.
    """
    if masks.ndim != 2:
        raise ValueError(f"expected 2-D boolean matrix, got shape {masks.shape}")
    bit_count, rows = masks.shape
    words = packed_words(bit_count)
    matrix = np.zeros((rows, words), dtype=_WORD_DTYPE)
    for word_index in range(words):
        block = masks[word_index * WORD_BITS : (word_index + 1) * WORD_BITS]
        matrix[:, word_index] = _pack_word(block.T)
    return matrix


def prefix_mask(bit_count: int, words: int) -> np.ndarray:
    """A ``words``-word vector with only the first ``bit_count`` bits set.

    Like :func:`full_row` but padded/truncated to a fixed word width, so it
    can mask rows of an existing bit matrix (e.g. "count only the worlds a
    query's budget covers" in the batch engine).
    """
    if bit_count < 0:
        raise ValueError(f"bit_count must be non-negative, got {bit_count}")
    row = np.zeros(words, dtype=_WORD_DTYPE)
    full_words = min(bit_count // WORD_BITS, words)
    row[:full_words] = np.uint64(0xFFFFFFFFFFFFFFFF)
    tail = bit_count - full_words * WORD_BITS
    if tail and full_words < words:
        row[full_words] = np.uint64((1 << tail) - 1)
    return row


def popcount(row: np.ndarray) -> int:
    """Number of set bits in one packed bit vector."""
    return int(_POPCOUNT_TABLE[row.view(np.uint8)].sum())


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row popcounts of a packed bit matrix, shape ``(rows,)``."""
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D bit matrix, got shape {matrix.shape}")
    bytes_view = matrix.view(np.uint8).reshape(matrix.shape[0], -1)
    return _POPCOUNT_TABLE[bytes_view].sum(axis=1, dtype=np.int64)


def get_bit(row: np.ndarray, index: int) -> bool:
    """Read bit ``index`` from a packed vector (slow path, for tests)."""
    word, offset = divmod(index, WORD_BITS)
    return bool((int(row[word]) >> offset) & 1)


def set_bit(row: np.ndarray, index: int) -> None:
    """Set bit ``index`` in a packed vector in place (slow path, for tests)."""
    word, offset = divmod(index, WORD_BITS)
    row[word] |= np.uint64(1 << offset)


__all__ = [
    "WORD_BITS",
    "packed_words",
    "zeros",
    "full_row",
    "sample_bit_matrix",
    "pack_bool_matrix",
    "prefix_mask",
    "popcount",
    "popcount_rows",
    "get_bit",
    "set_bit",
]
