"""Recursion-limit guard for the divide-and-conquer estimators."""

from __future__ import annotations

import contextlib
import sys
from typing import Iterator


@contextlib.contextmanager
def recursion_limit(minimum: int) -> Iterator[None]:
    """Temporarily raise the interpreter recursion limit to ``minimum``.

    The recursive estimators' include chains can be as deep as the DFS path
    they explore; chain-shaped graphs would otherwise crash CPython mid-query.
    The previous limit is restored on exit, even on exception.
    """
    previous = sys.getrecursionlimit()
    if previous < minimum:
        sys.setrecursionlimit(minimum)
    try:
        yield
    finally:
        if previous < minimum:
            sys.setrecursionlimit(previous)


__all__ = ["recursion_limit"]
