"""Advanced reliability queries built on the six estimators (paper §2.9).

The paper notes that "many of the efficient sampling and indexing
strategies that we investigate in this work can also be employed to answer
such advanced queries".  This subpackage does exactly that:

* :mod:`repro.queries.distance_constrained` — d-hop reliability (Jin et
  al.'s original problem, which the paper generalises away from);
* :mod:`repro.queries.top_k` — top-k most reliable targets from a source
  (the problem BFS Sharing was designed for, paper §2.3);
* :mod:`repro.queries.reliable_set` — all targets above a reliability
  threshold (Khan et al., EDBT'14);
* :mod:`repro.queries.conditional` — reliability given observed edge/node
  states (Khan et al., TKDE'18).
"""

from repro.queries.conditional import conditional_reliability, failure_impact
from repro.queries.distance_constrained import distance_constrained_reliability
from repro.queries.reliable_set import reliable_set
from repro.queries.top_k import top_k_reliable_targets

__all__ = [
    "conditional_reliability",
    "failure_impact",
    "distance_constrained_reliability",
    "top_k_reliable_targets",
    "reliable_set",
]
