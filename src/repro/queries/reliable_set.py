"""Reliable-set queries (Khan et al., EDBT'14; paper §2.9).

Given a source ``s`` and a threshold ``eta``, return every node whose
reliability from ``s`` is at least ``eta`` — e.g. "all proteins connected
to this protein with probability >= 0.5".  Shares the all-targets machinery
of :mod:`repro.queries.top_k`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import UncertainGraph
from repro.queries.top_k import all_reliabilities
from repro.util.rng import SeedLike
from repro.util.validation import check_probability


def reliable_set(
    graph: UncertainGraph,
    source: int,
    threshold: float,
    samples: int = 1_000,
    method: str = "bfs_sharing",
    rng: SeedLike = None,
    include_source: bool = False,
) -> List[Tuple[int, float]]:
    """All nodes with estimated ``R(source, v) >= threshold``.

    Returned in decreasing reliability (ties by node id).  The source node
    itself is excluded unless ``include_source``.
    """
    threshold = check_probability(threshold, "threshold")
    reliabilities = all_reliabilities(graph, source, samples, method, rng)
    members = [
        (node, float(reliabilities[node]))
        for node in range(graph.node_count)
        if reliabilities[node] >= threshold
        and (include_source or node != source)
    ]
    members.sort(key=lambda pair: (-pair[1], pair[0]))
    return members


__all__ = ["reliable_set"]
