"""Conditional reliability (Khan et al., TKDE'18; paper §2.9).

``R(s, t | E+, E-, V-)``: the s-t reliability *given* that the edges in
``E+`` are known to be up, the edges in ``E-`` known to be down, and the
nodes in ``V-`` failed (all their incident edges down).  The paper lists
conditional reliability among the advanced queries its estimators can
serve; here it drops straight out of the conditioned lazy-BFS kernel the
recursive estimators already use (possible-world sampling under a forced
edge-state vector).

Typical uses: "what is the delivery probability if this router is down?"
or "we just observed this link alive — how does the picture change?".
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.graph import UncertainGraph
from repro.core.possible_world import (
    EDGE_ABSENT,
    EDGE_PRESENT,
    ReachabilitySampler,
)
from repro.util.rng import SeedLike, ensure_generator
from repro.util.validation import check_node, check_positive

EdgePair = Tuple[int, int]


def _resolve_edge(graph: UncertainGraph, pair: EdgePair) -> int:
    """CSR edge id of ``(u, v)``; raises if the edge does not exist."""
    u, v = pair
    check_node(u, graph.node_count, "edge source")
    check_node(v, graph.node_count, "edge target")
    start, stop = graph.indptr[u], graph.indptr[u + 1]
    position = int(np.searchsorted(graph.targets[start:stop], v))
    if position < stop - start and graph.targets[start + position] == v:
        return int(start + position)
    raise ValueError(f"edge {pair!r} not present in the graph")


def build_condition(
    graph: UncertainGraph,
    present_edges: Sequence[EdgePair] = (),
    absent_edges: Sequence[EdgePair] = (),
    failed_nodes: Iterable[int] = (),
) -> np.ndarray:
    """Forced edge-state vector encoding the conditioning event.

    ``present_edges`` are pinned up, ``absent_edges`` pinned down, and
    every edge incident (in or out) to a ``failed_nodes`` member pinned
    down.  Conflicts (an edge both up and down) are rejected.
    """
    forced = np.zeros(graph.edge_count, dtype=np.int8)
    for pair in absent_edges:
        forced[_resolve_edge(graph, pair)] = EDGE_ABSENT
    failed = {check_node(n, graph.node_count, "failed node") for n in failed_nodes}
    if failed:
        for edge_id in range(graph.edge_count):
            if (
                graph.edge_source(edge_id) in failed
                or int(graph.targets[edge_id]) in failed
            ):
                forced[edge_id] = EDGE_ABSENT
    for pair in present_edges:
        edge_id = _resolve_edge(graph, pair)
        if forced[edge_id] == EDGE_ABSENT:
            raise ValueError(
                f"edge {pair!r} conditioned both present and absent"
            )
        forced[edge_id] = EDGE_PRESENT
    return forced


def conditional_reliability(
    graph: UncertainGraph,
    source: int,
    target: int,
    *,
    present_edges: Sequence[EdgePair] = (),
    absent_edges: Sequence[EdgePair] = (),
    failed_nodes: Iterable[int] = (),
    samples: int = 1_000,
    rng: SeedLike = None,
) -> float:
    """MC estimate of ``R(source, target)`` under the conditioning event.

    Unbiased for the conditional reliability: conditioning on independent
    edges simply fixes their state, so hit-and-miss sampling of the free
    edges estimates the conditional probability directly.
    """
    check_node(source, graph.node_count, "source")
    check_node(target, graph.node_count, "target")
    check_positive(samples, "samples")
    forced = build_condition(graph, present_edges, absent_edges, failed_nodes)
    if source == target:
        return 1.0
    sampler = ReachabilitySampler(graph)
    return sampler.estimate(
        source, target, samples, ensure_generator(rng), forced
    )


def failure_impact(
    graph: UncertainGraph,
    source: int,
    target: int,
    candidate_nodes: Sequence[int],
    samples: int = 1_000,
    rng: SeedLike = None,
) -> list:
    """Reliability drop caused by each candidate node's failure.

    Returns ``[(node, conditional_reliability, drop)]`` sorted by largest
    drop — a simple criticality ranking for network-maintenance scenarios.
    """
    generator = ensure_generator(rng)
    baseline = conditional_reliability(
        graph, source, target, samples=samples, rng=generator
    )
    ranking = []
    for node in candidate_nodes:
        if node in (source, target):
            continue
        value = conditional_reliability(
            graph, source, target,
            failed_nodes=[node], samples=samples, rng=generator,
        )
        ranking.append((int(node), float(value), float(baseline - value)))
    ranking.sort(key=lambda item: (-item[2], item[0]))
    return ranking


__all__ = ["build_condition", "conditional_reliability", "failure_impact"]
