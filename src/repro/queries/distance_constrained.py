"""Distance-constrained reachability (Jin et al., PVLDB'11; paper §2.4).

``R_d(s, t)``: the probability that ``t`` is reachable from ``s`` within
``d`` hops.  The paper adapted Jin et al.'s recursive estimator *away* from
this constraint to the fundamental s-t query; this module closes the loop
and offers the constrained variant, via the same lazy-BFS MC kernel with a
hop cap.  ``R_d`` is monotone in ``d`` and reaches ``R(s, t)`` once ``d``
exceeds the graph's longest shortest path.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import UncertainGraph
from repro.core.possible_world import ReachabilitySampler
from repro.util.rng import SeedLike, ensure_generator
from repro.util.validation import check_node, check_positive


def distance_constrained_reliability(
    graph: UncertainGraph,
    source: int,
    target: int,
    distance: int,
    samples: int = 1_000,
    rng: SeedLike = None,
) -> float:
    """MC estimate of ``R_d(source, target)`` with ``d = distance`` hops.

    Uses Algorithm 1's lazy sampling with BFS truncated at ``distance``
    levels; unbiased for the distance-constrained reliability by the same
    hit-and-miss argument as the unconstrained estimator.
    """
    check_node(source, graph.node_count, "source")
    check_node(target, graph.node_count, "target")
    check_positive(distance, "distance")
    check_positive(samples, "samples")
    if source == target:
        return 1.0
    sampler = ReachabilitySampler(graph)
    return sampler.estimate(
        source, target, samples, ensure_generator(rng), max_hops=distance
    )


def distance_profile(
    graph: UncertainGraph,
    source: int,
    target: int,
    max_distance: int,
    samples: int = 1_000,
    rng: SeedLike = None,
) -> np.ndarray:
    """``R_d`` for every ``d in 1..max_distance`` (one MC batch per d).

    Useful for picking the distance bound of a constrained query: the
    profile saturates at the unconstrained reliability.
    """
    check_positive(max_distance, "max_distance")
    generator = ensure_generator(rng)
    return np.array(
        [
            distance_constrained_reliability(
                graph, source, target, d, samples, generator
            )
            for d in range(1, max_distance + 1)
        ]
    )


__all__ = ["distance_constrained_reliability", "distance_profile"]
