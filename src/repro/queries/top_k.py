"""Top-k reliability search (Zhu et al., ICDM'15; paper §2.3).

BFS Sharing was *originally* proposed to find the k targets with maximum
reliability from a source — the paper trims it down to s-t queries for the
comparison.  This module restores the original query: one shared BFS
produces every node's K-bit reachability vector, and per-node popcounts
rank all targets at once.  An MC fallback (per-sample visit counting) is
provided for index-free use.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.estimators.bfs_sharing import BFSSharingEstimator
from repro.core.graph import UncertainGraph
from repro.util import bitset
from repro.util.bitset import concatenate_ranges
from repro.util.rng import SeedLike, ensure_generator
from repro.util.validation import check_node, check_positive

Ranking = List[Tuple[int, float]]


def _all_reliabilities_mc(
    graph: UncertainGraph, source: int, samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Visit frequency of every node over ``samples`` lazily-sampled worlds."""
    indptr, targets, probs = graph.indptr, graph.targets, graph.probs
    visited = np.zeros(graph.node_count, dtype=np.int64)
    hits = np.zeros(graph.node_count, dtype=np.int64)
    epoch = 0
    for _ in range(samples):
        epoch += 1
        visited[source] = epoch
        hits[source] += 1
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            edge_ids = concatenate_ranges(indptr[frontier], indptr[frontier + 1])
            if edge_ids.size == 0:
                break
            exists = rng.random(edge_ids.size) < probs[edge_ids]
            candidates = targets[edge_ids[exists]]
            if candidates.size == 0:
                break
            fresh = np.unique(candidates[visited[candidates] != epoch])
            if fresh.size == 0:
                break
            visited[fresh] = epoch
            hits[fresh] += 1
            frontier = fresh
    return hits / samples


def all_reliabilities(
    graph: UncertainGraph,
    source: int,
    samples: int = 1_000,
    method: str = "bfs_sharing",
    rng: SeedLike = None,
) -> np.ndarray:
    """Estimated ``R(source, v)`` for every node ``v``.

    ``method="bfs_sharing"`` builds the bit-vector index and shares one BFS
    across all K worlds (the original design); ``method="mc"`` counts
    per-sample visits without an index.  Both are unbiased per node.
    """
    check_node(source, graph.node_count, "source")
    check_positive(samples, "samples")
    generator = ensure_generator(rng)
    if method == "bfs_sharing":
        estimator = BFSSharingEstimator(graph, capacity=samples, seed=generator)
        node_bits = estimator.reachability_bits(source, samples)
        return bitset.popcount_rows(node_bits) / samples
    if method == "mc":
        return _all_reliabilities_mc(graph, source, samples, generator)
    raise ValueError(f"unknown method {method!r}; use 'bfs_sharing' or 'mc'")


def top_k_reliable_targets(
    graph: UncertainGraph,
    source: int,
    k: int,
    samples: int = 1_000,
    method: str = "bfs_sharing",
    rng: SeedLike = None,
    include_source: bool = False,
) -> Ranking:
    """The ``k`` targets with the highest estimated reliability from source.

    Ties are broken by node id for determinism.  The source itself
    (reliability 1 by definition) is excluded unless ``include_source``.
    """
    check_positive(k, "k")
    reliabilities = all_reliabilities(graph, source, samples, method, rng)
    if not include_source:
        reliabilities = reliabilities.copy()
        reliabilities[source] = -1.0
    order = np.lexsort((np.arange(graph.node_count), -reliabilities))
    ranking = [
        (int(node), float(reliabilities[node]))
        for node in order[:k]
        if reliabilities[node] >= 0.0
    ]
    return ranking


__all__ = ["all_reliabilities", "top_k_reliable_targets", "Ranking"]
