"""Vectorized sweep kernels: bulk bitwise fixpoints over packed CSR bits.

The per-node Python loops in
:func:`~repro.core.estimators.bfs_sharing.shared_reachability_fixpoint`
and :meth:`~repro.core.possible_world.ReachabilitySampler.reach_targets`
spend most of their time in the interpreter once graphs grow: every
frontier node costs a Python iteration even though its actual work is a
handful of word-wide ORs.  This module provides drop-in replacements
that process a *whole frontier per NumPy call*:

* gather every out-edge of the frontier at once
  (:func:`~repro.util.bitset.concatenate_ranges` over the packed uint64
  CSR adjacency — edge row ``e`` of ``edge_bits`` is CSR position ``e``);
* AND each edge's bit row with its source's reachability row in one
  broadcast;
* scatter-OR the contributions into the target nodes with a sort +
  ``np.bitwise_or.reduceat`` segmented reduction (duplicate heads within
  a round collapse to one OR, exactly as sequential in-place ORs would).

Bit-identity is a theorem, not a hope: the reachability fixpoint
``I_v = OR over in-edges (u, v) of (I_u AND bits(u, v))`` is monotone
over a finite lattice, so *every* evaluation schedule — the FIFO
worklist of the Python kernel, the frontier-synchronous rounds here —
converges to the same unique fixpoint.  For hop-bounded sweeps both
kernels propagate from a snapshot of the frontier's rows, so bits travel
exactly one edge per round in either.  The conformance suite
(``tests/engine/test_kernels.py``) pins the equality bit for bit over
hypothesis-generated graphs.  The one permitted divergence is the
``edges_probed`` *instrumentation* of the unbounded fixpoint, which is a
property of the schedule, not of the answer.

Selection: ``BatchEngine(kernels="vectorized")`` routes both sweep
strategies through this module; ``kernels=None`` consults the
``REPRO_ENGINE_KERNELS`` environment variable and falls back to
``"python"`` (the historical per-node kernels).  Worker processes — the
per-run fan-out of :mod:`repro.engine.parallel` and the long-lived pool
of :mod:`repro.engine.pool` — inherit the parent engine's choice.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util import bitset

#: Kernel implementations accepted by :class:`~repro.engine.batch.BatchEngine`.
KERNEL_MODES = ("python", "vectorized")

#: Environment variable supplying the default kernel mode; lets CI (and
#: operators) route an unmodified test suite or workload through the
#: vectorized sweeps, mirroring ``REPRO_ENGINE_WORKERS``.
KERNELS_ENV_VAR = "REPRO_ENGINE_KERNELS"


def resolve_kernels(kernels: Optional[str]) -> str:
    """Resolve a ``kernels`` knob: explicit value, else env var, else python."""
    if kernels is None:
        kernels = os.environ.get(KERNELS_ENV_VAR, "").strip() or "python"
    if kernels not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernels!r}; known: {', '.join(KERNEL_MODES)}"
        )
    return kernels


def _scatter_or(
    contribution: np.ndarray, heads: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """OR-reduce per-edge bit rows by their head node.

    Returns ``(unique_heads, reduced)`` where ``reduced[i]`` is the OR of
    every contribution row whose edge points at ``unique_heads[i]``.  The
    stable sort groups equal heads contiguously; ``reduceat`` then ORs
    each contiguous run in one C-level pass.
    """
    order = np.argsort(heads, kind="stable")
    heads_sorted = heads[order]
    run_starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(heads_sorted)) + 1)
    )
    unique_heads = heads_sorted[run_starts]
    reduced = np.bitwise_or.reduceat(contribution[order], run_starts, axis=0)
    return unique_heads, reduced


def shared_fixpoint_vectorized(
    graph: UncertainGraph,
    edge_bits: np.ndarray,
    source: int,
    bit_count: int,
    max_hops: Optional[int] = None,
) -> tuple:
    """Frontier-bulk evaluation of the shared-BFS dataflow fixpoint.

    Same signature, same ``node_bits`` — bit for bit — as
    :func:`~repro.core.estimators.bfs_sharing.shared_reachability_fixpoint`;
    see the module docstring for why the schedules must agree.  Each round
    gathers the whole frontier's CSR edge blocks, broadcasts the AND, and
    scatter-ORs into head nodes; nodes whose rows grew form the next
    frontier.  With ``max_hops`` the loop runs at most that many rounds
    (the level-synchronous d-hop mode); unbounded it runs to the fixpoint.
    """
    words = edge_bits.shape[1]
    if bitset.packed_words(bit_count) != words:
        raise ValueError(
            f"bit_count {bit_count} needs {bitset.packed_words(bit_count)} "
            f"words, edge bits carry {words}"
        )
    node_bits = np.zeros((graph.node_count, words), dtype=np.uint64)
    node_bits[source] = bitset.full_row(bit_count)
    indptr, targets = graph.indptr, graph.targets
    edges_probed = 0

    frontier = np.asarray([source], dtype=np.int64)
    rounds = 0
    while frontier.size and (max_hops is None or rounds < max_hops):
        rounds += 1
        starts, stops = indptr[frontier], indptr[frontier + 1]
        edge_ids = bitset.concatenate_ranges(starts, stops)
        if edge_ids.size == 0:
            break
        edges_probed += edge_ids.size
        # All gathers precede the scatter, so every contribution reads
        # the frontier's rows as they stood when the round began — the
        # snapshot semantics the hop-bounded Python kernel enforces with
        # an explicit copy.
        edge_sources = np.repeat(frontier, stops - starts)
        contribution = edge_bits[edge_ids] & node_bits[edge_sources]
        unique_heads, reduced = _scatter_or(contribution, targets[edge_ids])
        updated = node_bits[unique_heads] | reduced
        changed = (updated != node_bits[unique_heads]).any(axis=1)
        frontier = unique_heads[changed]
        node_bits[frontier] = updated[changed]
    return node_bits, int(edges_probed)


def reach_targets_in_world(
    graph: UncertainGraph,
    mask: np.ndarray,
    source: int,
    targets: np.ndarray,
    max_hops: Optional[int] = None,
) -> np.ndarray:
    """Reachability indicators for many targets in one materialised world.

    The vectorized counterpart of
    :meth:`~repro.core.possible_world.ReachabilitySampler.reach_targets`
    with a fully forced world: it consumes the boolean edge ``mask``
    directly (no ±1 forced-state conversion, no sampler instance, no
    epoch array) and expands the walk level by level with the same bulk
    CSR gather.  Early termination, hop bounding, and therefore the
    returned indicator vector all match the sampler kernel exactly —
    reachability in a concrete world is a fact, not an estimate, so the
    agreement is bitwise by construction and pinned by the conformance
    suite regardless.
    """
    targets = np.asarray(targets, dtype=np.int64)
    indptr, edge_targets = graph.indptr, graph.targets
    visited = np.zeros(graph.node_count, dtype=bool)
    visited[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    hops = 0
    while frontier.size and not visited[targets].all():
        if max_hops is not None and hops >= max_hops:
            break
        hops += 1
        edge_ids = bitset.concatenate_ranges(
            indptr[frontier], indptr[frontier + 1]
        )
        if edge_ids.size == 0:
            break
        candidates = edge_targets[edge_ids[mask[edge_ids]]]
        if candidates.size == 0:
            break
        fresh = candidates[~visited[candidates]]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        visited[fresh] = True
        frontier = fresh
    return visited[targets]


__all__ = [
    "KERNEL_MODES",
    "KERNELS_ENV_VAR",
    "resolve_kernels",
    "shared_fixpoint_vectorized",
    "reach_targets_in_world",
]
