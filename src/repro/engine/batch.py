"""The shared-world batch engine (paper §2.2 cost model, §3.7 world sharing).

The paper's running theme is that the *sampling* of possible worlds, not
the per-world arithmetic, dominates s-t reliability estimation; its two
index-based methods (BFS Sharing §2.3, ProbTree §2.7) both win by making
sampled work reusable.  This engine applies the same lever at the workload
level: given many ``(source, target, K)`` queries over one graph, it draws
each possible world **once** and evaluates every query whose budget covers
that world against it, instead of re-sampling K worlds per query the way a
per-query loop does.

Determinism contract
--------------------
World ``i`` is a pure function of ``(graph, seed, i)`` — see
:meth:`BatchEngine.world_mask`.  Consequences:

* batch and sequential evaluation over the same stream agree **exactly**
  (tested in ``tests/engine/``);
* results are independent of ``chunk_size``, which only bounds how many
  ``(chunk, m)`` world masks are resident at once (memory-bounded
  streaming, the anti-``O(Km)`` stance of §2.3's corrected analysis);
* results are independent of ``workers``: the chunk sweep is
  embarrassingly parallel across chunk ranges, per-chunk hit counts are
  integers, and integer addition is associative — so fanning chunks out
  over a process pool (:mod:`repro.engine.parallel`) reduces to the very
  same counts the serial loop accumulates, **bit for bit**;
* estimates are cacheable by ``(graph fingerprint, s, t, K, seed,
  max_hops)`` — see :mod:`repro.engine.cache` — because nothing else
  enters the value.

Distance-constrained workloads (§2.9): a :class:`~repro.engine.plan.
BatchQuery` may carry ``max_hops``, in which case its indicator becomes
"reaches within ``max_hops`` edges".  The planner groups queries by
``(source, max_hops)`` and both sweep strategies bound their walk — the
bitset sweep via the level-synchronous mode of
:func:`~repro.core.estimators.bfs_sharing.shared_reachability_fixpoint`,
the per-world sweep via ``reach_targets(max_hops=...)`` — so d-hop and
plain queries are served from one world stream.

Two sweep strategies implement the same semantics:

* ``sweep="bitset"`` (default) — each chunk of worlds is packed into the
  uint64 bit-matrix layout of BFS Sharing (§2.3) and one dataflow
  fixpoint per distinct source answers *all* of that source's targets in
  *all* of the chunk's worlds at once
  (:func:`~repro.core.estimators.bfs_sharing.shared_reachability_fixpoint`);
* ``sweep="per_world"`` — one
  :meth:`~repro.core.possible_world.ReachabilitySampler.reach_targets`
  call per (world, source): the multi-target generalisation of Alg. 1's
  fused BFS kernel with early termination.  Slower, but a direct
  per-world oracle; :meth:`BatchEngine.run_sequential` is built on it.

Both strategies consume the identical world stream, so they agree exactly
with each other and with the sequential loop (property-tested in
``tests/engine/``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.estimators.bfs_sharing import shared_reachability_fixpoint
from repro.core.graph import UncertainGraph
from repro.core.possible_world import (
    ReachabilitySampler,
    forced_from_mask,
    sample_world,
)
from repro.engine.cache import (
    DEFAULT_CACHE_CAPACITY,
    ResultCache,
    graph_fingerprint,
    open_result_cache,
    result_key,
)
from repro.engine.kernels import (
    KERNEL_MODES,
    KERNELS_ENV_VAR,
    reach_targets_in_world,
    resolve_kernels,
    shared_fixpoint_vectorized,
)
from repro.engine.plan import BatchQuery, QueryLike, plan_queries
from repro.util import bitset
from repro.util.rng import stable_substream
from repro.util.validation import check_positive

#: Default number of world masks materialised per streaming step.  A
#: multiple of 64 keeps the packed chunks' last words fully used.
DEFAULT_CHUNK_SIZE = 256

#: Sweep strategies accepted by :class:`BatchEngine`.
SWEEP_MODES = ("bitset", "per_world")

#: Namespace key separating the engine's world stream from the substreams
#: used elsewhere (experiment repeats, CLI queries, ...).
_WORLD_STREAM = 0x57

#: Environment variable supplying the default worker count; lets CI (and
#: operators) route an unmodified test suite or workload through the
#: multiprocess path.
WORKERS_ENV_VAR = "REPRO_ENGINE_WORKERS"


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a ``workers`` knob: explicit value, else env var, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
            ) from None
    return check_positive(workers, "workers")


@dataclass(frozen=True)
class RangeResult:
    """Integer hit counts for one world range of a workload.

    The primitive of the distributed shard tier
    (:mod:`repro.distributed`): a shard evaluates worlds ``[start,
    stop)`` and returns raw per-query hit *counts* — not estimates —
    because integer counts are what a coordinator can merge exactly.
    ``hits`` is aligned with the submitted query order (duplicates
    kept, like :attr:`BatchResult.estimates`).
    """

    queries: Tuple[BatchQuery, ...]  # original order, duplicates kept
    hits: np.ndarray  # int64, aligned with `queries`
    start: int
    stop: int
    worlds_evaluated: int  # worlds actually swept (budgets clip the range)
    sweeps: int
    seconds: float
    seed: int
    fingerprint: str

    def __len__(self) -> int:
        return len(self.queries)


@dataclass(frozen=True)
class BatchResult:
    """Estimates plus engine instrumentation for one workload run."""

    queries: Tuple[BatchQuery, ...]  # original order, duplicates kept
    estimates: np.ndarray  # aligned with `queries`
    seed: int
    worlds_sampled: int  # worlds drawn during this run
    sweeps: int  # per-group BFS sweeps performed
    cache_hits: int
    cache_misses: int
    seconds: float
    workers: int = 1  # processes that evaluated chunks (1 = in-process)
    #: Per-query cache provenance aligned with ``queries``: ``True`` where
    #: the estimate was replayed from the result cache without sampling,
    #: ``False`` where this run evaluated it.  ``None`` when the run had
    #: no provenance to report (externally constructed results).
    from_cache: Optional[np.ndarray] = None
    #: Fingerprint of the graph this run answered against — the version
    #: provenance live-update clients (and the mid-update hammer tests)
    #: need to know *which* graph produced each response.  ``None`` for
    #: externally constructed results.
    fingerprint: Optional[str] = None

    def __len__(self) -> int:
        return len(self.queries)

    def as_rows(self) -> Tuple[Dict[str, float], ...]:
        """JSON-friendly per-query rows (the `repro batch` CLI payload)."""
        return tuple(
            {
                "source": query.source,
                "target": query.target,
                "samples": query.samples,
                "max_hops": query.max_hops,
                "estimate": float(estimate),
                **(
                    {}
                    if self.from_cache is None
                    else {"cached": bool(self.from_cache[position])}
                ),
            }
            for position, (query, estimate) in enumerate(
                zip(self.queries, self.estimates)
            )
        )


class BatchEngine:
    """Answers workloads of s-t reliability queries over one graph.

    Parameters
    ----------
    graph:
        The uncertain graph all queries address.
    seed:
        Root of the world stream; ``None`` draws a fresh random root so
        separate engines are independent (at the cost of cacheability
        across engine instances).
    chunk_size:
        How many world masks are sampled per streaming step; memory is
        bounded by ``O(chunk_size * edge_count)`` bits regardless of K.
    sweep:
        ``"bitset"`` (default, packed fixpoint per chunk) or
        ``"per_world"`` (one kernel sweep per world) — identical results,
        different constants.
    workers:
        Number of processes evaluating chunk ranges.  ``None`` reads the
        ``REPRO_ENGINE_WORKERS`` environment variable (default 1).  With
        ``workers >= 2`` chunks fan out over a ``ProcessPoolExecutor``
        (:mod:`repro.engine.parallel`) and the per-query hit counts are
        summed in the parent — bit-identical to the serial sweep by the
        determinism contract.
    kernels:
        ``"python"`` (the historical per-node loops) or ``"vectorized"``
        (the frontier-bulk kernels of :mod:`repro.engine.kernels`).
        ``None`` reads ``REPRO_ENGINE_KERNELS`` (default ``"python"``).
        Both kernel sets compute the identical fixpoint, so estimates
        are bit-identical either way (the kernel conformance suite pins
        this); the knob is purely a constant-factor lever.
    pool:
        A long-lived :class:`~repro.engine.pool.WorkerPool` to evaluate
        fanned-out chunk ranges on, instead of forking a fresh pool per
        run.  ``None`` (default) falls back to the per-run fork — unless
        ``REPRO_ENGINE_POOL`` is set, in which case runs borrow the
        process-wide shared pool for this graph.  A closed pool is
        treated as "no pool" (the run falls back), never as an error.
    cache:
        A shared :class:`ResultCache`; by default each engine owns one of
        ``DEFAULT_CACHE_CAPACITY`` entries.  The cache is internally
        thread-safe, so many engines — one per concurrently served
        request — may share a single instance; exact keys make the
        sharing value-transparent (two engines that race on a key write
        the same float).
    cache_dir:
        Convenience for persistence: when given (and ``cache`` is not),
        the engine opens the :class:`~repro.engine.cache.
        PersistentResultCache` sidecar under this directory, so estimates
        survive the process and a re-run warm-starts with zero world
        evaluations.  Exactness is unaffected — the cache key fully
        determines the estimate.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        seed: Optional[int] = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        sweep: str = "bitset",
        workers: Optional[int] = None,
        kernels: Optional[str] = None,
        pool=None,
        cache: Optional[ResultCache] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.graph = graph
        if seed is None:
            seed = int(np.random.default_rng().integers(2**63))
        self.seed = int(seed)
        self.chunk_size = check_positive(chunk_size, "chunk_size")
        if sweep not in SWEEP_MODES:
            raise ValueError(
                f"unknown sweep mode {sweep!r}; known: {', '.join(SWEEP_MODES)}"
            )
        self.sweep = sweep
        self.workers = resolve_workers(workers)
        self.kernels = resolve_kernels(kernels)
        self.pool = pool
        if cache is None:
            cache = (
                open_result_cache(cache_dir, capacity=cache_capacity)
                if cache_dir is not None
                else ResultCache(cache_capacity)
            )
        self.cache = cache
        self.fingerprint = graph_fingerprint(graph)
        self._sampler = ReachabilitySampler(graph)

    # ------------------------------------------------------------------
    # The world stream
    # ------------------------------------------------------------------

    def world_mask(self, index: int) -> np.ndarray:
        """Materialise world ``index`` as a boolean mask over edge ids.

        Pure in ``(graph, seed, index)``: every evaluation strategy — batch,
        sequential, chunked or not — sees the same world at the same index,
        which is what makes batch-vs-sequential agreement exact and cache
        keys sound.
        """
        rng = stable_substream(self.seed, _WORLD_STREAM, index)
        return sample_world(self.graph, rng)

    def _forced_world(self, index: int) -> np.ndarray:
        """World ``index`` as a fully-forced edge-state vector (±1)."""
        return forced_from_mask(self.world_mask(index))

    def world_masks(self, start: int, count: int) -> np.ndarray:
        """Worlds ``start .. start + count`` as a ``(count, m)`` mask block.

        One block is the engine's entire world-residency: resident memory
        is ``O(chunk_size * edge_count)`` bits however large K grows.
        Each row comes from its own world substream, so the block's
        content is independent of the chunk boundaries.  Public because
        calibration passes (the importance sampler's occurrence counts)
        reuse the engine's world stream: calibration worlds are then
        exactly the worlds an engine with the same seed would sweep.
        """
        masks = np.empty((count, self.graph.edge_count), dtype=bool)
        for offset in range(count):
            masks[offset] = self.world_mask(start + offset)
        return masks

    # ------------------------------------------------------------------
    # Chunk sweeps (identical semantics, different constants)
    # ------------------------------------------------------------------

    def _sweep_chunk_bitset(
        self,
        masks: np.ndarray,
        chunk_start: int,
        count: int,
        groups,
        pending: np.ndarray,
        hits: np.ndarray,
    ) -> int:
        """Packed sweep: one fixpoint per group covers the whole chunk.

        The chunk's masks become a BFS-Sharing-style edge bit matrix; the
        shared fixpoint then resolves every (source, target, world) triple
        at once, and per-query prefix masks keep each budget exact.
        Hop-bounded groups run the fixpoint in its level-synchronous
        ``max_hops`` mode (the §2.9 d-hop indicator).
        """
        edge_bits = bitset.pack_bool_matrix(masks)
        words = edge_bits.shape[1]
        fixpoint = (
            shared_fixpoint_vectorized
            if self.kernels == "vectorized"
            else shared_reachability_fixpoint
        )
        mask_by_limit: Dict[int, np.ndarray] = {}

        def budget_mask(limit: int) -> np.ndarray:
            # Budgets repeat heavily (uniform-K workloads have one value),
            # so prefix masks are built once per distinct limit per chunk.
            cached = mask_by_limit.get(limit)
            if cached is None:
                cached = bitset.prefix_mask(limit, words)
                mask_by_limit[limit] = cached
            return cached

        sweeps = 0
        for group in groups:
            live_counts = np.minimum(group.samples - chunk_start, count)
            live = pending[group.query_indices] & (live_counts > 0)
            if not live.any():
                continue
            node_bits, _ = fixpoint(
                self.graph, edge_bits, group.source, count,
                max_hops=group.max_hops,
            )
            rows = node_bits[group.targets[live]]
            budget_masks = np.stack(
                [budget_mask(int(limit)) for limit in live_counts[live]]
            )
            hits[group.query_indices[live]] += bitset.popcount_rows(
                rows & budget_masks
            )
            sweeps += 1
        return sweeps

    def _sweep_chunk_per_world(
        self,
        masks: np.ndarray,
        chunk_start: int,
        count: int,
        groups,
        pending: np.ndarray,
        hits: np.ndarray,
    ) -> int:
        """Per-world sweep: one fused-kernel walk per (world, group)."""
        vectorized = self.kernels == "vectorized"
        sweeps = 0
        for offset in range(count):
            world = chunk_start + offset
            # The vectorized walk consumes the boolean mask directly; the
            # python kernel wants the ±1 forced-state encoding.
            forced = None if vectorized else forced_from_mask(masks[offset])
            for group in groups:
                if world >= group.k_max:
                    continue
                live = pending[group.query_indices] & (group.samples > world)
                if not live.any():
                    continue
                if vectorized:
                    reached = reach_targets_in_world(
                        self.graph, masks[offset], group.source,
                        group.targets[live], max_hops=group.max_hops,
                    )
                else:
                    reached = self._sampler.reach_targets(
                        group.source, group.targets[live], forced=forced,
                        max_hops=group.max_hops,
                    )
                hits[group.query_indices[live]] += reached
                sweeps += 1
        return sweeps

    def evaluate_chunk(
        self,
        chunk_start: int,
        count: int,
        groups,
        pending: np.ndarray,
        unique_count: int,
    ) -> Tuple[np.ndarray, int]:
        """Evaluate worlds ``chunk_start .. chunk_start + count`` standalone.

        Returns fresh per-unique-query hit counts plus the number of sweeps
        performed.  Pure in ``(graph, seed, sweep, arguments)`` — it reads
        no mutable engine state — which is what lets
        :mod:`repro.engine.parallel` run chunk ranges in worker processes
        and sum the counts in any order without changing a single bit.
        """
        masks = self.world_masks(chunk_start, count)
        hits = np.zeros(unique_count, dtype=np.int64)
        sweep_chunk = (
            self._sweep_chunk_bitset
            if self.sweep == "bitset"
            else self._sweep_chunk_per_world
        )
        sweeps = sweep_chunk(masks, chunk_start, count, groups, pending, hits)
        return hits, sweeps

    def memory_bytes(self) -> int:
        """Approximate peak working set of one chunk sweep (graph included).

        The streaming bound the ``chunk_size`` knob enforces: one chunk of
        boolean world masks plus, for the bitset sweep, the packed edge
        bits and one node-reachability matrix (cf. §2.3's ``O(Km)`` index
        memory, which the engine holds only ``chunk_size`` worlds of).
        """
        edge_count = self.graph.edge_count
        node_count = self.graph.node_count
        total = self.graph.memory_bytes()
        total += self.chunk_size * edge_count  # boolean mask chunk
        if self.sweep == "bitset":
            words = bitset.packed_words(self.chunk_size)
            word_bytes = np.dtype(np.uint64).itemsize
            total += edge_count * words * word_bytes  # packed edge bits
            total += node_count * words * word_bytes  # fixpoint node bits
        else:
            total += edge_count  # int8 forced-state vector
            total += node_count * np.dtype(np.int64).itemsize  # visited
        return total

    # ------------------------------------------------------------------
    # Evaluation strategies
    # ------------------------------------------------------------------

    def _resolve_pool(self):
        """The pool this run's fan-out should use, if any.

        An explicitly attached pool wins; otherwise ``REPRO_ENGINE_POOL``
        borrows the process-wide shared pool for this graph (the CI
        worker-pool leg's switch).  ``None`` means per-run forking.
        """
        if self.pool is not None:
            return self.pool
        from repro.engine.pool import pool_enabled, shared_pool

        if pool_enabled():
            return shared_pool(self.graph, self.workers)
        return None

    def query_key(self, query: BatchQuery):
        """The exact result-cache key of ``query`` under this engine.

        Public because the distributed coordinator performs its own
        cache lookups before fanning pending work out to shards — the
        key must be *the same function* the local engine uses, or the
        tiers would disagree about what is warm.
        """
        return result_key(
            self.fingerprint, query.source, query.target,
            query.samples, self.seed, query.max_hops,
        )

    def run(self, queries: Iterable[QueryLike]) -> BatchResult:
        """Answer a workload with the shared-world fast path.

        Worlds stream in ``chunk_size`` blocks; each world is swept once
        per ``(source, max_hops)`` group still holding unresolved queries.
        Cached queries are served without sampling at all.  With
        ``workers >= 2`` and more than one chunk, chunk ranges are
        evaluated by a process pool and reduced here — bit-identical to
        the in-process loop (see the determinism contract).
        """
        started = time.perf_counter()
        plan = plan_queries(self.graph, queries)
        unique_estimates = np.zeros(plan.unique_count, dtype=np.float64)
        pending = np.zeros(plan.unique_count, dtype=bool)
        cache_hits = cache_misses = 0

        for index, query in enumerate(plan.queries):
            cached = self.cache.get(self.query_key(query))
            if cached is None:
                cache_misses += 1
                pending[index] = True
            else:
                cache_hits += 1
                unique_estimates[index] = cached

        worlds = sweeps = 0
        effective_workers = 1
        if pending.any():
            budgets = np.asarray(
                [query.samples for query in plan.queries], dtype=np.int64
            )
            groups = [
                group
                for group in plan.groups
                if pending[group.query_indices].any()
            ]
            k_needed = int(budgets[pending].max())
            tasks = [
                (chunk_start, min(self.chunk_size, k_needed - chunk_start))
                for chunk_start in range(0, k_needed, self.chunk_size)
            ]
            hits = None
            if self.workers > 1 and len(tasks) > 1:
                effective_workers = min(self.workers, len(tasks))
                pool = self._resolve_pool()
                if pool is not None:
                    from repro.engine.pool import PoolClosedError

                    try:
                        hits, sweeps = pool.evaluate(
                            self, tasks, groups, pending, plan.unique_count,
                        )
                    except PoolClosedError:
                        # A closed pool is "no pool", not a failure: the
                        # run falls through to the per-run fork below.
                        hits = None
                if hits is None:
                    from repro.engine.parallel import (
                        evaluate_chunks_parallel,
                    )

                    hits, sweeps = evaluate_chunks_parallel(
                        self, tasks, groups, pending, plan.unique_count,
                        effective_workers,
                    )
            else:
                hits = np.zeros(plan.unique_count, dtype=np.int64)
                for chunk_start, count in tasks:
                    chunk_hits, chunk_sweeps = self.evaluate_chunk(
                        chunk_start, count, groups, pending,
                        plan.unique_count,
                    )
                    hits += chunk_hits
                    sweeps += chunk_sweeps
            worlds = k_needed
            unique_estimates[pending] = hits[pending] / budgets[pending]
            # One batched write for the whole run: the persistent cache
            # turns this into a single transaction (one fsync total,
            # however many queries the sweep resolved).
            self.cache.put_many(
                (
                    self.query_key(plan.queries[index]),
                    float(unique_estimates[index]),
                )
                for index in np.nonzero(pending)[0]
            )

        return BatchResult(
            queries=tuple(plan.queries[i] for i in plan.assignment),
            estimates=plan.scatter(unique_estimates),
            seed=self.seed,
            worlds_sampled=worlds,
            sweeps=sweeps,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            seconds=time.perf_counter() - started,
            workers=effective_workers,
            # `pending` still marks this run's cache misses; its negation
            # is the per-unique-query provenance, scattered like estimates.
            from_cache=plan.scatter(~pending),
            fingerprint=self.fingerprint,
        )

    def run_range(
        self, queries: Iterable[QueryLike], start: int, stop: int
    ) -> RangeResult:
        """Integer hit counts for worlds ``[start, stop)`` of a workload.

        The range-restricted entry point the distributed shard tier is
        built on: a shard evaluates only its assigned slice of the world
        stream and returns per-query hit counts, which a coordinator
        sums across shards.  Because world ``i`` is a pure function of
        ``(graph, seed, i)`` and integer addition is associative, the
        merged counts equal what one process sweeping ``[0, K)`` would
        accumulate — bit for bit — however the range is partitioned,
        retried, or re-dispatched.

        Budgets clip the range exactly as in :meth:`run`: a query with
        ``samples <= start`` contributes zero hits here, and worlds at
        or beyond every budget are never materialised (``stop`` is
        clipped to the plan's largest budget).  The result cache is
        not consulted or written — raw counts for a partial range are
        not estimates and have no cache identity.

        Chunk boundaries fall at ``start + i * chunk_size``; when
        ``start`` is chunk-aligned (the coordinator always aligns its
        partitions) the union of ranges performs exactly the sweeps of
        the single-process run, so even the ``sweeps`` counter merges
        exactly.
        """
        start = int(start)
        stop = int(stop)
        if start < 0 or stop < start:
            raise ValueError(
                f"a world range needs 0 <= start <= stop, "
                f"got [{start}, {stop})"
            )
        started = time.perf_counter()
        plan = plan_queries(self.graph, queries)
        hits = np.zeros(plan.unique_count, dtype=np.int64)
        pending = np.ones(plan.unique_count, dtype=bool)
        bounded_stop = min(stop, plan.k_max)
        sweeps = 0
        for chunk_start in range(start, bounded_stop, self.chunk_size):
            count = min(self.chunk_size, bounded_stop - chunk_start)
            chunk_hits, chunk_sweeps = self.evaluate_chunk(
                chunk_start, count, plan.groups, pending, plan.unique_count
            )
            hits += chunk_hits
            sweeps += chunk_sweeps
        return RangeResult(
            queries=tuple(plan.queries[i] for i in plan.assignment),
            hits=plan.scatter(hits),
            start=start,
            stop=stop,
            worlds_evaluated=max(bounded_stop - start, 0),
            sweeps=sweeps,
            seconds=time.perf_counter() - started,
            seed=self.seed,
            fingerprint=self.fingerprint,
        )

    def run_sequential(self, queries: Iterable[QueryLike]) -> BatchResult:
        """Answer the workload one query at a time over the *same* stream.

        This is the per-query loop the engine exists to beat: every query
        re-materialises its K worlds from scratch (K world samplings per
        query instead of ``max K`` total), then sweeps them for its single
        target.  Because the stream is shared, estimates agree exactly
        with :meth:`run` — it serves as both the benchmark baseline and
        the correctness oracle.  The result cache is bypassed on purpose,
        so the report's cache counters are zero.
        """
        started = time.perf_counter()
        plan = plan_queries(self.graph, queries)
        unique_estimates = np.zeros(plan.unique_count, dtype=np.float64)
        worlds = sweeps = 0
        for index, query in enumerate(plan.queries):
            target = np.asarray([query.target], dtype=np.int64)
            hits = 0
            for world in range(query.samples):
                forced = self._forced_world(world)
                worlds += 1
                hits += int(
                    self._sampler.reach_targets(
                        query.source, target, forced=forced,
                        max_hops=query.max_hops,
                    )[0]
                )
                sweeps += 1
            unique_estimates[index] = hits / query.samples
        return BatchResult(
            queries=tuple(plan.queries[i] for i in plan.assignment),
            estimates=plan.scatter(unique_estimates),
            seed=self.seed,
            worlds_sampled=worlds,
            sweeps=sweeps,
            cache_hits=0,
            cache_misses=0,
            seconds=time.perf_counter() - started,
            # The oracle bypasses the cache on purpose: nothing cached.
            from_cache=plan.scatter(np.zeros(plan.unique_count, dtype=bool)),
            fingerprint=self.fingerprint,
        )


def estimate_workload(
    graph: UncertainGraph,
    queries: Iterable[QueryLike],
    *,
    seed: Optional[int] = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> BatchResult:
    """One-shot convenience wrapper: plan, run, return the report."""
    engine = BatchEngine(
        graph, seed=seed, chunk_size=chunk_size, workers=workers,
        cache_dir=cache_dir,
    )
    return engine.run(queries)


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "KERNEL_MODES",
    "KERNELS_ENV_VAR",
    "SWEEP_MODES",
    "WORKERS_ENV_VAR",
    "BatchResult",
    "RangeResult",
    "BatchEngine",
    "estimate_workload",
    "resolve_kernels",
    "resolve_workers",
]
