"""Workload planning for the batch engine: validate, deduplicate, group.

The paper's cost model (§2.2, §3.7) says sampling possible worlds dominates
s-t reliability estimation, so the engine's job is to do as little of it as
possible.  Planning prepares a raw workload for the shared-world sweep of
:mod:`repro.engine.batch`:

* **Validation** — every ``(source, target, K)`` triple is checked against
  the graph once, so the sweep loop runs assertion-free;
* **Deduplication** — repeated queries collapse to one slot, evaluated once
  and scattered back to every original position;
* **Grouping by (source, hop bound)** — queries sharing a source *and* a
  hop bound share one BFS sweep per world (the multi-target generalisation
  of Alg. 1's early-terminating walk), exactly the "share the traversal,
  not just the worlds" trick of BFS Sharing (§2.3) applied at batch
  granularity.  Distance-constrained queries (§2.9 d-hop reliability)
  carry an optional ``max_hops`` bound and form their own groups, because
  a hop-bounded sweep answers a different indicator than an unbounded one.

A plan is immutable and independent of chunking, so the same plan yields
identical estimates whatever ``chunk_size`` streams the worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.validation import check_node, check_positive


class BatchQuery(NamedTuple):
    """One s-t reliability query with its sample budget ``K``.

    ``max_hops`` turns the query into the *distance-constrained* d-hop
    reliability of §2.9: "does ``source`` reach ``target`` within
    ``max_hops`` edges?"; ``None`` means plain (unbounded) reliability.
    A plain ``(source, target, samples)`` or ``(source, target, samples,
    max_hops)`` tuple coerces to this, so callers can submit workloads as
    bare tuples.
    """

    source: int
    target: int
    samples: int
    max_hops: Optional[int] = None


QueryLike = Union[BatchQuery, Tuple[int, int, int], Sequence[int]]


class SourceGroup(NamedTuple):
    """All unique queries sharing one ``(source, max_hops)`` pair.

    ``targets[i]`` belongs to the unique query ``query_indices[i]`` whose
    budget is ``samples[i]``; one (hop-bounded) sweep per world answers
    the whole group.
    """

    source: int
    targets: np.ndarray  # int64, aligned with query_indices
    query_indices: np.ndarray  # indices into QueryPlan.queries
    samples: np.ndarray  # int64 per-query budgets
    k_max: int  # sweeps are needed only for world indices < k_max
    max_hops: Optional[int] = None  # shared hop bound (None = unbounded)


@dataclass(frozen=True)
class QueryPlan:
    """A validated, deduplicated workload ready for the world sweep."""

    queries: Tuple[BatchQuery, ...]  # unique queries, first-seen order
    assignment: Tuple[int, ...]  # original position -> unique index
    groups: Tuple[SourceGroup, ...]  # one per distinct (source, max_hops)
    k_max: int  # largest budget over the whole plan

    def __len__(self) -> int:
        return len(self.assignment)

    @property
    def unique_count(self) -> int:
        return len(self.queries)

    def scatter(self, unique_values: np.ndarray) -> np.ndarray:
        """Map per-unique-query values back onto the original order."""
        if len(self.assignment) == 0:
            return np.empty(0, dtype=np.asarray(unique_values).dtype)
        return np.asarray(unique_values)[np.asarray(self.assignment)]


def as_query(item: QueryLike) -> BatchQuery:
    """Coerce a raw workload item into a :class:`BatchQuery`.

    Accepts 3-tuples ``(source, target, samples)`` and 4-tuples with a
    trailing hop bound (``None`` for unbounded).
    """
    if isinstance(item, BatchQuery):
        return item
    parts = tuple(item)
    if len(parts) == 3:
        source, target, samples = parts
        max_hops: Optional[int] = None
    elif len(parts) == 4:
        source, target, samples, max_hops = parts
    else:
        raise ValueError(
            f"a query is (source, target, samples[, max_hops]), got {item!r}"
        )
    return BatchQuery(
        int(source),
        int(target),
        int(samples),
        None if max_hops is None else int(max_hops),
    )


def plan_queries(
    graph: UncertainGraph, queries: Iterable[QueryLike]
) -> QueryPlan:
    """Build the evaluation plan for ``queries`` over ``graph``.

    Order of results is preserved through :attr:`QueryPlan.assignment`;
    an empty workload yields an empty (but valid) plan.
    """
    unique: Dict[BatchQuery, int] = {}
    assignment: List[int] = []
    ordered: List[BatchQuery] = []
    for item in queries:
        query = as_query(item)
        check_node(query.source, graph.node_count, "source")
        check_node(query.target, graph.node_count, "target")
        check_positive(query.samples, "samples")
        if query.max_hops is not None:
            check_positive(query.max_hops, "max_hops")
        index = unique.get(query)
        if index is None:
            index = len(ordered)
            unique[query] = index
            ordered.append(query)
        assignment.append(index)

    by_group: Dict[Tuple[int, Optional[int]], List[int]] = {}
    for index, query in enumerate(ordered):
        by_group.setdefault((query.source, query.max_hops), []).append(index)

    groups = []
    # Deterministic group order: by source, bounded groups (ascending hop
    # bound) before the unbounded one.  Order never affects estimates —
    # hit counts are per-query — only the sweep schedule.
    for source, max_hops in sorted(
        by_group, key=lambda key: (key[0], key[1] is None, key[1] or 0)
    ):
        members = by_group[(source, max_hops)]
        indices = np.asarray(members, dtype=np.int64)
        samples = np.asarray(
            [ordered[i].samples for i in members], dtype=np.int64
        )
        groups.append(
            SourceGroup(
                source=source,
                targets=np.asarray(
                    [ordered[i].target for i in members], dtype=np.int64
                ),
                query_indices=indices,
                samples=samples,
                k_max=int(samples.max()),
                max_hops=max_hops,
            )
        )

    k_max = max((query.samples for query in ordered), default=0)
    return QueryPlan(
        queries=tuple(ordered),
        assignment=tuple(assignment),
        groups=tuple(groups),
        k_max=k_max,
    )


__all__ = [
    "BatchQuery",
    "QueryLike",
    "SourceGroup",
    "QueryPlan",
    "as_query",
    "plan_queries",
]
