"""Workload planning for the batch engine: validate, deduplicate, group.

The paper's cost model (§2.2, §3.7) says sampling possible worlds dominates
s-t reliability estimation, so the engine's job is to do as little of it as
possible.  Planning prepares a raw workload for the shared-world sweep of
:mod:`repro.engine.batch`:

* **Validation** — every ``(source, target, K)`` triple is checked against
  the graph once, so the sweep loop runs assertion-free;
* **Deduplication** — repeated queries collapse to one slot, evaluated once
  and scattered back to every original position;
* **Source grouping** — queries sharing a source share one BFS sweep per
  world (the multi-target generalisation of Alg. 1's early-terminating
  walk), exactly the "share the traversal, not just the worlds" trick of
  BFS Sharing (§2.3) applied at batch granularity.

A plan is immutable and independent of chunking, so the same plan yields
identical estimates whatever ``chunk_size`` streams the worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Sequence, Tuple, Union

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.validation import check_node, check_positive


class BatchQuery(NamedTuple):
    """One s-t reliability query with its sample budget ``K``.

    A plain ``(source, target, samples)`` tuple coerces to this, so callers
    can submit workloads as bare triples.
    """

    source: int
    target: int
    samples: int


QueryLike = Union[BatchQuery, Tuple[int, int, int], Sequence[int]]


class SourceGroup(NamedTuple):
    """All unique queries sharing one source node.

    ``targets[i]`` belongs to the unique query ``query_indices[i]`` whose
    budget is ``samples[i]``; one sweep per world answers the whole group.
    """

    source: int
    targets: np.ndarray  # int64, aligned with query_indices
    query_indices: np.ndarray  # indices into QueryPlan.queries
    samples: np.ndarray  # int64 per-query budgets
    k_max: int  # sweeps are needed only for world indices < k_max


@dataclass(frozen=True)
class QueryPlan:
    """A validated, deduplicated workload ready for the world sweep."""

    queries: Tuple[BatchQuery, ...]  # unique queries, first-seen order
    assignment: Tuple[int, ...]  # original position -> unique index
    groups: Tuple[SourceGroup, ...]  # one per distinct source
    k_max: int  # largest budget over the whole plan

    def __len__(self) -> int:
        return len(self.assignment)

    @property
    def unique_count(self) -> int:
        return len(self.queries)

    def scatter(self, unique_values: np.ndarray) -> np.ndarray:
        """Map per-unique-query values back onto the original order."""
        if len(self.assignment) == 0:
            return np.empty(0, dtype=np.asarray(unique_values).dtype)
        return np.asarray(unique_values)[np.asarray(self.assignment)]


def as_query(item: QueryLike) -> BatchQuery:
    """Coerce a raw workload item into a :class:`BatchQuery`."""
    if isinstance(item, BatchQuery):
        return item
    source, target, samples = item
    return BatchQuery(int(source), int(target), int(samples))


def plan_queries(
    graph: UncertainGraph, queries: Iterable[QueryLike]
) -> QueryPlan:
    """Build the evaluation plan for ``queries`` over ``graph``.

    Order of results is preserved through :attr:`QueryPlan.assignment`;
    an empty workload yields an empty (but valid) plan.
    """
    unique: Dict[BatchQuery, int] = {}
    assignment: List[int] = []
    ordered: List[BatchQuery] = []
    for item in queries:
        query = as_query(item)
        check_node(query.source, graph.node_count, "source")
        check_node(query.target, graph.node_count, "target")
        check_positive(query.samples, "samples")
        index = unique.get(query)
        if index is None:
            index = len(ordered)
            unique[query] = index
            ordered.append(query)
        assignment.append(index)

    by_source: Dict[int, List[int]] = {}
    for index, query in enumerate(ordered):
        by_source.setdefault(query.source, []).append(index)

    groups = []
    for source in sorted(by_source):
        indices = np.asarray(by_source[source], dtype=np.int64)
        samples = np.asarray(
            [ordered[i].samples for i in by_source[source]], dtype=np.int64
        )
        groups.append(
            SourceGroup(
                source=source,
                targets=np.asarray(
                    [ordered[i].target for i in by_source[source]],
                    dtype=np.int64,
                ),
                query_indices=indices,
                samples=samples,
                k_max=int(samples.max()),
            )
        )

    k_max = max((query.samples for query in ordered), default=0)
    return QueryPlan(
        queries=tuple(ordered),
        assignment=tuple(assignment),
        groups=tuple(groups),
        k_max=k_max,
    )


__all__ = [
    "BatchQuery",
    "QueryLike",
    "SourceGroup",
    "QueryPlan",
    "as_query",
    "plan_queries",
]
