"""A long-lived, shared worker-process pool for engine chunk sweeps.

:mod:`repro.engine.parallel` forks one ``ProcessPoolExecutor`` per
:meth:`~repro.engine.batch.BatchEngine.run` call — correct, but a served
workload pays the pool spin-up *and* a full graph pickle on every
request.  A :class:`WorkerPool` inverts the lifetimes: workers are
forked **once** with the graph pre-loaded (the ``_initialise_worker``
idiom of :mod:`repro.engine.parallel`, minus the per-run plan), live as
long as their owner — one service, one pool, shared by every served
engine run — and each request ships only its small frozen plan state
plus ``(chunk_start, count)`` tasks.

Determinism is untouched: a pooled chunk evaluation calls the very same
pure :meth:`~repro.engine.batch.BatchEngine.evaluate_chunk`, per-chunk
hit counts are integers, and integer addition is associative — pooled,
per-run-forked, and in-process sweeps agree **bit for bit** (the
engine's determinism contract; hammer-tested in ``tests/serve``).

Lifecycle:

* **lazy start** — constructing a :class:`WorkerPool` forks nothing;
  the executor spins up on the first :meth:`evaluate` (or
  :meth:`healthy`) call;
* **health check** — :meth:`healthy` round-trips a ping task through a
  worker with a timeout;
* **crashed-worker respawn** — a ``BrokenProcessPool`` (a worker died
  mid-task) discards the executor, re-forks, and retries the run once;
  the retry is free because chunk tasks are pure;
* **graph-update rejection** — the pool is pinned to its graph's
  fingerprint at construction; dispatching an engine over any other
  graph raises instead of silently sweeping stale workers;
* **clean shutdown** — :meth:`close` is idempotent; a closed pool makes
  :meth:`evaluate` raise :class:`PoolClosedError`, which the engine
  treats as "no pool" and falls back to its other evaluation paths, so
  closing a service never corrupts an in-flight request.

``REPRO_ENGINE_POOL=1`` routes *every* fanning-out engine run in the
process through a module-level pool registry (:func:`shared_pool`),
keyed by graph fingerprint — the switch the CI worker-pool leg flips to
drive the whole test suite through pooled execution.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import UncertainGraph
from repro.engine.cache import graph_fingerprint
from repro.util.validation import check_positive

#: Environment variable enabling the process-wide shared pool registry
#: for engine runs that were not handed an explicit pool.
POOL_ENV_VAR = "REPRO_ENGINE_POOL"

#: Run states a worker keeps deserialised; above this, oldest-run state
#: is dropped (and rebuilt from the task blob if that run resurfaces).
_WORKER_STATE_CAPACITY = 8

#: Pools the module-level registry keeps alive; above this, the least
#: recently used pool is closed and evicted.
_REGISTRY_CAPACITY = 4

#: Process-unique run tokens; workers key their deserialised plan state
#: on these, so interleaved runs on one pool never read each other's plan.
_RUN_TOKENS = itertools.count(1)


class PoolClosedError(RuntimeError):
    """Raised by :meth:`WorkerPool.evaluate` after :meth:`WorkerPool.close`.

    Engines catch this and fall back to their non-pooled paths — a
    closed pool means "no accelerator", never a failed request.
    """


# ----------------------------------------------------------------------
# Worker-side plumbing (runs in the forked processes)
# ----------------------------------------------------------------------

# The graph is pinned once per worker by the initializer; per-run plan
# state arrives with the tasks and is cached by run token, so a run
# deserialises its plan once per worker, not once per chunk.
_WORKER_GRAPH = None
_WORKER_STATES: "OrderedDict" = OrderedDict()


def _initialise_worker(graph) -> None:
    """Pin the pool's graph in this worker; plans arrive per run."""
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph
    _WORKER_STATES.clear()


def _worker_run_state(token: int, blob: bytes):
    state = _WORKER_STATES.get(token)
    if state is None:
        from repro.engine.batch import BatchEngine

        (
            seed, chunk_size, sweep, kernels, groups, pending, unique_count,
        ) = pickle.loads(blob)
        engine = BatchEngine(
            _WORKER_GRAPH,
            seed=seed,
            chunk_size=chunk_size,
            sweep=sweep,
            kernels=kernels,
            workers=1,  # workers never nest pools
            cache_capacity=1,  # the parent owns the real result cache
        )
        state = (engine, groups, pending, unique_count)
        _WORKER_STATES[token] = state
        while len(_WORKER_STATES) > _WORKER_STATE_CAPACITY:
            _WORKER_STATES.popitem(last=False)
    return state


def _evaluate_pooled(
    token: int, blob: bytes, chunk_start: int, count: int
) -> Tuple[np.ndarray, int]:
    """Worker-side task: evaluate one chunk range for one run's plan."""
    assert _WORKER_GRAPH is not None, "pool worker used before initialisation"
    engine, groups, pending, unique_count = _worker_run_state(token, blob)
    return engine.evaluate_chunk(
        chunk_start, count, groups, pending, unique_count
    )


def _ping() -> int:
    """Health-check task: prove a worker is alive (and name it)."""
    return os.getpid()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------


class WorkerPool:
    """A reusable process pool pinned to one graph.

    Thread-safe: concurrent served requests may :meth:`evaluate` on the
    same pool (``ProcessPoolExecutor.submit`` is thread-safe; lifecycle
    transitions serialise on an internal lock).
    """

    def __init__(self, graph: UncertainGraph, workers: int) -> None:
        self.graph = graph
        self.workers = check_positive(workers, "workers")
        self.fingerprint = graph_fingerprint(graph)
        self._executor: Optional[ProcessPoolExecutor] = None  # guarded-by: _lock
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        self._runs = 0  # guarded-by: _lock
        self._respawns = 0  # guarded-by: _lock

    # -- lifecycle ------------------------------------------------------

    def _ensure_started(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise PoolClosedError("worker pool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_initialise_worker,
                    initargs=(self.graph,),
                )
            return self._executor

    @property
    def started(self) -> bool:
        """Whether worker processes currently exist (lazy start)."""
        return self._executor is not None

    @property
    def closed(self) -> bool:
        return self._closed

    def healthy(self, timeout: float = 30.0) -> bool:
        """Round-trip a ping through a worker (starts the pool if lazy)."""
        try:
            executor = self._ensure_started()
            executor.submit(_ping).result(timeout=timeout)
        except Exception:  # noqa: BLE001 — any failure means "not healthy"
            return False
        return True

    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of the live worker processes (diagnostics and tests)."""
        executor = self._executor
        processes = getattr(executor, "_processes", None) or {}
        return tuple(processes.keys())

    def _respawn(self, broken: ProcessPoolExecutor) -> None:
        """Discard a broken executor so the next start forks fresh workers."""
        with self._lock:
            if self._executor is broken:
                self._executor = None
                self._respawns += 1
        broken.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the workers down; idempotent, waits for running tasks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation -----------------------------------------------------

    def evaluate(
        self,
        engine,
        tasks: Sequence[Tuple[int, int]],
        groups,
        pending: np.ndarray,
        unique_count: int,
    ) -> Tuple[np.ndarray, int]:
        """Fan ``tasks`` out over the pooled workers for one engine run.

        Returns ``(hits, sweeps)`` summed over all chunks — the same
        int64 totals the serial loop accumulates.  The plan is
        serialised once here and cached worker-side by run token; each
        task then costs one small tuple on the wire (the graph never
        travels — it was shipped at fork).
        """
        if engine.fingerprint != self.fingerprint:
            raise ValueError(
                "engine graph does not match this pool's graph (the pool "
                "was forked for a different fingerprint); build a new "
                "pool after a graph update"
            )
        blob = pickle.dumps(
            (
                engine.seed, engine.chunk_size, engine.sweep, engine.kernels,
                groups, pending, unique_count,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            return self._dispatch(
                self._ensure_started(), blob, tasks, unique_count
            )
        except BrokenProcessPool as error:
            self._respawn(error.__self_executor__)
            # One deterministic retry on fresh workers: chunk tasks are
            # pure, so re-evaluating them cannot change any result.
            return self._dispatch(
                self._ensure_started(), blob, tasks, unique_count
            )

    def _dispatch(
        self,
        executor: ProcessPoolExecutor,
        blob: bytes,
        tasks: Sequence[Tuple[int, int]],
        unique_count: int,
    ) -> Tuple[np.ndarray, int]:
        token = next(_RUN_TOKENS)
        try:
            futures = [
                executor.submit(_evaluate_pooled, token, blob, start, count)
                for start, count in tasks
            ]
        except RuntimeError as error:
            if self._closed:  # close() raced the submit loop
                raise PoolClosedError("worker pool is closed") from None
            raise self._tag(error, executor)
        hits = np.zeros(unique_count, dtype=np.int64)
        sweeps = 0
        try:
            for future in futures:
                chunk_hits, chunk_sweeps = future.result()
                hits += chunk_hits
                sweeps += chunk_sweeps
        except BaseException as error:
            # A failure mid-fan-out must not leave the remaining chunks
            # running: cancel whatever has not started, then propagate.
            for future in futures:
                future.cancel()
            if isinstance(error, CancelledError) and self._closed:
                # close(cancel_futures=True) raced an in-flight run: the
                # queued chunks were cancelled under us.  That is the
                # pool going away, not a failed computation — surface it
                # as PoolClosedError so the engine re-evaluates via its
                # per-run fallback instead of erroring the request.
                raise PoolClosedError("worker pool is closed") from None
            raise self._tag(error, executor)
        with self._lock:
            self._runs += 1
        return hits, sweeps

    @staticmethod
    def _tag(error: BaseException, executor: ProcessPoolExecutor):
        # BrokenProcessPool does not say *which* executor broke; remember
        # it so `evaluate` respawns the right one (close() or a racing
        # respawn may have replaced self._executor meanwhile).
        if isinstance(error, BrokenProcessPool):
            error.__self_executor__ = executor
        return error

    def statistics(self) -> Dict[str, object]:
        """Lifecycle counters (surfaced by the service's ``stats()``)."""
        return {
            "workers": self.workers,
            "started": self.started,
            "closed": self._closed,
            "runs": self._runs,
            "respawns": self._respawns,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "started" if self.started else "lazy"
        )
        return f"WorkerPool(workers={self.workers}, {state})"


# ----------------------------------------------------------------------
# The env-driven process-wide registry
# ----------------------------------------------------------------------

_REGISTRY: "OrderedDict[bytes, WorkerPool]" = (  # guarded-by: _REGISTRY_LOCK
    OrderedDict()
)
_REGISTRY_LOCK = threading.Lock()


def pool_enabled() -> bool:
    """Whether ``REPRO_ENGINE_POOL`` asks for shared pools by default."""
    return os.environ.get(POOL_ENV_VAR, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def shared_pool(graph: UncertainGraph, workers: int) -> WorkerPool:
    """The process-wide pool for ``graph``, created (LRU-bounded) on demand.

    Keyed by graph fingerprint: engines over equal graphs share workers;
    a new graph gets a new pool, and the least recently used pool is
    closed once the registry outgrows its small bound.  The pool keeps
    its first-seen worker count — later callers share the same workers
    (worker count is a wall-clock lever, never a results lever).
    """
    key = graph_fingerprint(graph)
    with _REGISTRY_LOCK:
        pool = _REGISTRY.get(key)
        if pool is not None and not pool.closed:
            _REGISTRY.move_to_end(key)
            return pool
        pool = WorkerPool(graph, workers)
        _REGISTRY[key] = pool
        evicted = []
        while len(_REGISTRY) > _REGISTRY_CAPACITY:
            evicted.append(_REGISTRY.popitem(last=False)[1])
    for old in evicted:
        old.close()
    return pool


def close_shared_pools() -> None:
    """Close and forget every registry pool (test isolation, atexit)."""
    with _REGISTRY_LOCK:
        pools = list(_REGISTRY.values())
        _REGISTRY.clear()
    for pool in pools:
        pool.close()


atexit.register(close_shared_pools)


__all__ = [
    "POOL_ENV_VAR",
    "PoolClosedError",
    "WorkerPool",
    "pool_enabled",
    "shared_pool",
    "close_shared_pools",
]
