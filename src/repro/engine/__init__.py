"""Batched multi-query reliability engine (paper §2.2, §3.7, §2.9).

Answers workloads of ``(source, target, K[, max_hops])`` queries by
sampling each possible world once and sweeping it for every pending
query, instead of re-sampling worlds per query.  Chunk ranges optionally
fan out over a process pool (``workers=N`` /
:class:`~repro.engine.parallel.ParallelBatchEngine`) with bit-identical
results.  See ``docs/architecture.md`` for the design and
:mod:`repro.engine.batch` for the determinism contract.
"""

from repro.engine.batch import (
    DEFAULT_CHUNK_SIZE,
    KERNEL_MODES,
    KERNELS_ENV_VAR,
    WORKERS_ENV_VAR,
    BatchEngine,
    BatchResult,
    estimate_workload,
    resolve_kernels,
    resolve_workers,
)
from repro.engine.cache import (
    PersistentResultCache,
    ResultCache,
    graph_fingerprint,
    open_result_cache,
    result_key,
)
from repro.engine.parallel import ParallelBatchEngine, default_worker_count
from repro.engine.plan import BatchQuery, QueryPlan, plan_queries
from repro.engine.pool import (
    POOL_ENV_VAR,
    PoolClosedError,
    WorkerPool,
    pool_enabled,
    shared_pool,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "KERNEL_MODES",
    "KERNELS_ENV_VAR",
    "POOL_ENV_VAR",
    "WORKERS_ENV_VAR",
    "BatchEngine",
    "BatchResult",
    "PoolClosedError",
    "WorkerPool",
    "estimate_workload",
    "pool_enabled",
    "resolve_kernels",
    "resolve_workers",
    "shared_pool",
    "PersistentResultCache",
    "ResultCache",
    "graph_fingerprint",
    "open_result_cache",
    "result_key",
    "ParallelBatchEngine",
    "default_worker_count",
    "BatchQuery",
    "QueryPlan",
    "plan_queries",
]
