"""Batched multi-query reliability engine (paper §2.2, §3.7).

Answers workloads of ``(source, target, K)`` queries by sampling each
possible world once and sweeping it for every pending query, instead of
re-sampling worlds per query.  See ``docs/architecture.md`` for the design
and :mod:`repro.engine.batch` for the determinism contract.
"""

from repro.engine.batch import (
    DEFAULT_CHUNK_SIZE,
    BatchEngine,
    BatchResult,
    estimate_workload,
)
from repro.engine.cache import ResultCache, graph_fingerprint, result_key
from repro.engine.plan import BatchQuery, QueryPlan, plan_queries

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BatchEngine",
    "BatchResult",
    "estimate_workload",
    "ResultCache",
    "graph_fingerprint",
    "result_key",
    "BatchQuery",
    "QueryPlan",
    "plan_queries",
]
