"""Result caching for the batch engine.

Because the engine's world stream is a pure function of
``(graph fingerprint, seed, world index)`` — see
:meth:`repro.engine.batch.BatchEngine.world_mask` — an estimate is fully
determined by the key ``(graph fingerprint, source, target, K, seed,
max_hops)``.  The hop bound is part of the key because a d-hop query
(§2.9) answers a *different indicator* over the same worlds: a ``(s, t,
K, seed)`` hit must never be served across different ``max_hops`` values.
Caching on that key is therefore *exact*, not approximate: a hit replays
the very number a fresh evaluation would produce.  This mirrors the paper's
observation (§2.2/§3.7) that the expensive part of an estimate is sampling,
not arithmetic — a served query whose worlds were already drawn should
never draw them again.

The in-memory cache is a plain LRU over that key.  It deliberately stores
only floats: worlds themselves are streamed and dropped (the §2.3 lesson —
BFS Sharing's offline index shows that *retaining* K worlds costs ``O(Km)``
memory, which is exactly what the engine's ``chunk_size`` knob avoids).

:class:`PersistentResultCache` extends the LRU with a SQLite *sidecar*
file, so estimates survive the process: a benchmark re-run, a second
``repro batch`` invocation, or a freshly started serving process
warm-starts from disk and answers repeated queries with **zero** world
evaluations.  Because the key is exact (see above), persistence cannot
change any estimate — a disk hit replays the very number a fresh
evaluation would produce, across processes and machines alike.

Thread safety
-------------
Both caches are safe to share across threads: every public method runs
under one internal lock, so concurrent engines (the serving layer runs
one engine per HTTP request against the service's shared cache) can get,
put, and read statistics without corrupting the LRU order or overlapping
statements on the shared SQLite connection.  The lock is held for memory
operations and SQLite statement batches (at most one ``put_many``
transaction) — never while sampling worlds — so it serialises
bookkeeping and result I/O, not computation.
Exactness makes write races benign by construction: two threads that
miss the same key compute the *same* float, so whichever ``put`` lands
last changes nothing.

Write batching — two different knobs, one transaction discipline:

* :meth:`PersistentResultCache.put_many` writes a whole workload's
  results in **one** transaction (one fsync instead of one per row);
  the batch engine and ``ReliabilityService.warm()`` route every
  multi-result write through it.
* Disk-hit recency (the ``touched`` tick that orders the disk LRU) is
  *deferred*: hits accumulate in memory and flush every
  ``touch_flush_every`` hits, on any write, on ``statistics()``, and on
  ``close()`` — instead of paying one UPDATE+commit per hit.  Recency
  may therefore lag the truth by at most ``touch_flush_every`` hits
  (and another process sees it only after a flush), which can never
  change a served value — only disk-LRU eviction order.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.graph import UncertainGraph
from repro.util.validation import check_positive

#: Cache key: (graph fingerprint, source, target, samples, seed, max_hops)
#: with the unbounded hop budget encoded as ``UNBOUNDED_HOPS``.
ResultKey = Tuple[str, int, int, int, int, int]

#: Key encoding of "no hop bound" (hop bounds are strictly positive).
UNBOUNDED_HOPS = -1

DEFAULT_CACHE_CAPACITY = 4096

#: Default bound on sidecar rows; far above any benchmark workload, small
#: enough that the file stays a few megabytes at worst.
DEFAULT_DISK_CAPACITY = 65536

#: How many deferred disk-hit recency updates accumulate before they are
#: flushed in one transaction (see the module docstring's batching notes).
DEFAULT_TOUCH_FLUSH_EVERY = 64

#: The sidecar filename used when callers hand over a *directory*
#: (``repro batch --cache-dir``): one file can hold results for any
#: number of graphs, because the fingerprint is part of every key.
RESULT_CACHE_FILENAME = "results.sqlite"

_FINGERPRINT_ATTRIBUTE = "_engine_fingerprint"


def graph_fingerprint(graph: UncertainGraph) -> str:
    """Content hash of a graph's CSR arrays (stable across processes).

    Two graphs with identical structure and probabilities share a
    fingerprint, so cached results survive reloading the same dataset.

    The digest is memoised on the graph instance *keyed by its mutation
    counter* (``graph.version``): a plain memo served stale digests —
    hence stale cache keys — to any graph edited in place after its
    first hashing.  The memo holds ``(version, digest)`` and re-hashes
    whenever the version moved; at an unchanged version, repeated calls
    return the identical digest string.
    """
    version = getattr(graph, "version", 0)
    cached = getattr(graph, _FINGERPRINT_ATTRIBUTE, None)
    if cached is not None and cached[0] == version:
        return cached[1]
    digest = hashlib.blake2b(digest_size=16)
    digest.update(int(graph.node_count).to_bytes(8, "little"))
    digest.update(graph.indptr.tobytes())
    digest.update(graph.targets.tobytes())
    digest.update(graph.probs.tobytes())
    fingerprint = digest.hexdigest()
    setattr(graph, _FINGERPRINT_ATTRIBUTE, (version, fingerprint))
    return fingerprint


def result_key(
    fingerprint: str,
    source: int,
    target: int,
    samples: int,
    seed: int,
    max_hops: Optional[int] = None,
) -> ResultKey:
    """The canonical cache key for one estimate.

    ``max_hops=None`` (plain reliability) and every concrete hop bound map
    to distinct keys, so d-hop and unbounded estimates never alias.
    """
    return (
        fingerprint,
        int(source),
        int(target),
        int(samples),
        int(seed),
        UNBOUNDED_HOPS if max_hops is None else int(max_hops),
    )


class ResultCache:
    """A bounded LRU cache of batch-engine estimates.

    ``get`` promotes hits to most-recently-used; ``put`` evicts the least
    recently used entry once ``capacity`` is exceeded.  Hit/miss counters
    feed the engine's :class:`~repro.engine.batch.BatchResult` report.

    Safe for concurrent use: one internal lock covers every public
    method, so threads sharing a cache can never corrupt the LRU order
    (``OrderedDict`` is not thread-safe on its own) or lose counter
    increments.  Subclasses reuse the same lock for their extra state.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self.capacity = check_positive(capacity, "capacity")
        self._entries: "OrderedDict[ResultKey, float]" = (  # guarded-by: _lock
            OrderedDict()
        )
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        #: Guards the LRU, the counters, and (in the persistent subclass)
        #: the SQLite connection.  Plain (non-reentrant) lock: public
        #: methods acquire it exactly once and delegate to ``*_locked``
        #: internals, which must never re-acquire.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ResultKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: ResultKey) -> Optional[float]:
        """Return the cached estimate for ``key`` or ``None`` (counted)."""
        with self._lock:
            return self._get_locked(key)

    def put(self, key: ResultKey, value: float) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past capacity."""
        with self._lock:
            self._put_locked(key, value)

    def put_many(self, items: Iterable[Tuple[ResultKey, float]]) -> None:
        """Insert a batch of results under one lock acquisition.

        The in-memory LRU gains nothing from batching beyond fewer lock
        round-trips; the persistent subclass overrides the disk half to
        write the whole batch in a single SQLite transaction (one fsync
        instead of one per row), which is what makes warming N queries
        O(1) commits.
        """
        with self._lock:
            for key, value in items:
                self._put_locked(key, value)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def statistics(self) -> Dict[str, int]:
        """Counters for reports: size, capacity, hits, misses."""
        with self._lock:
            return self._statistics_locked()

    # ------------------------------------------------------------------
    # Lock-free internals (callers hold self._lock)
    # ------------------------------------------------------------------

    def _get_locked(self, key: ResultKey) -> Optional[float]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def _put_locked(self, key: ResultKey, value: float) -> None:
        self._entries[key] = float(value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _statistics_locked(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT NOT NULL,
    source INTEGER NOT NULL,
    target INTEGER NOT NULL,
    samples INTEGER NOT NULL,
    seed TEXT NOT NULL,
    max_hops INTEGER NOT NULL,
    value REAL NOT NULL,
    touched INTEGER NOT NULL,
    PRIMARY KEY (fingerprint, source, target, samples, seed, max_hops)
)
"""

#: How long a connection waits on another process's write lock before
#: giving up (seconds).  Concurrent ``repro batch`` runs sharing a sidecar
#: serialise on SQLite's file lock; readers never block readers.
_SQLITE_TIMEOUT = 30.0


class PersistentResultCache(ResultCache):
    """A :class:`ResultCache` backed by a SQLite sidecar file.

    Layered lookup: the in-memory LRU first (free), then the sidecar (one
    indexed SELECT); disk hits are promoted into memory.  Result writes go
    through to both layers before ``put`` returns, so a crash after
    ``put`` loses nothing and concurrent processes see each other's
    results; only disk-hit *recency* is deferred (see below).

    Failure containment — the sidecar is an *accelerator*, never a
    correctness dependency:

    * a corrupted file is quarantined (renamed to ``*.corrupt``) and a
      fresh sidecar is created in its place;
    * if SQLite errors at runtime (disk full, file deleted underneath
      us, ...), persistence is disabled and the cache degrades to the
      plain in-memory LRU — estimates keep flowing;
    * a fingerprint mismatch is not an error at all: keys of a mutated
      (hence re-fingerprinted) graph simply never collide with stale
      rows, which age out via the disk LRU below.

    Eviction: rows carry a monotone ``touched`` tick, bumped on every put
    and disk hit; once the table exceeds ``disk_capacity`` the
    least-recently-touched rows are deleted.  A result served purely from
    the memory layer does not refresh its disk recency — keeping the hot
    path free of write traffic — so disk LRU order follows disk activity,
    which is what governs warm starts.  Disk-hit ticks are *batched*:
    they accumulate in memory and flush in one transaction every
    ``touch_flush_every`` hits (and on every write, ``statistics()``, and
    ``close()``), so a read-heavy serving workload pays one fsync per
    batch instead of one per hit.  Pending ticks are always applied
    before eviction runs, so deferral never evicts a just-hit row.
    Seeds are stored as TEXT because engine seeds span the full unsigned
    64-bit range, which SQLite's signed INTEGER cannot hold.

    Thread safety: inherited — the base lock additionally guards the
    SQLite connection (opened with ``check_same_thread=False``), so HTTP
    handler threads and the main thread interleave statements safely.
    """

    def __init__(
        self,
        path: Union[str, Path],
        capacity: int = DEFAULT_CACHE_CAPACITY,
        disk_capacity: int = DEFAULT_DISK_CAPACITY,
        touch_flush_every: int = DEFAULT_TOUCH_FLUSH_EVERY,
    ) -> None:
        super().__init__(capacity)
        self.path = Path(path)
        self.disk_capacity = check_positive(disk_capacity, "disk_capacity")
        self.touch_flush_every = check_positive(
            touch_flush_every, "touch_flush_every"
        )
        self.disk_hits = 0  # guarded-by: _lock
        self._tick = 0  # guarded-by: _lock
        #: Deferred disk-hit recency updates: key -> latest tick.  A dict
        #: (not a list) so a key hit twice between flushes costs one row.
        self._pending_touches: Dict[ResultKey, int] = {}  # guarded-by: _lock
        #: Upper bound on the sidecar's row count, maintained locally so
        #: eviction does not pay a full-table COUNT per put: +1 per
        #: insert (REPLACEs overcount, which is safe), re-synced with the
        #: true count whenever the bound crosses ``disk_capacity``.
        self._row_bound = 0  # guarded-by: _lock
        self._connection: Optional[sqlite3.Connection] = None  # guarded-by: _lock
        self._open()

    # ------------------------------------------------------------------
    # Sidecar lifecycle
    # ------------------------------------------------------------------

    @property
    def disabled(self) -> bool:
        """Whether persistence has been turned off (memory LRU still works)."""
        return self._connection is None

    def _open(self) -> None:  # init-only
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._connection = self._connect()
        except sqlite3.Error:
            self._quarantine()
            try:
                self._connection = self._connect()
            except sqlite3.Error:
                self._connection = None

    def _connect(self) -> sqlite3.Connection:  # init-only
        # check_same_thread=False: the serving layer opens the cache on
        # the main thread and touches it from HTTP handler threads.
        # SQLite connections tolerate cross-thread use as long as calls
        # never overlap, which the cache's own lock now guarantees —
        # every statement runs inside a ``self._lock`` critical section.
        connection = sqlite3.connect(
            self.path, timeout=_SQLITE_TIMEOUT, check_same_thread=False
        )
        try:
            connection.execute(_SCHEMA)
            connection.commit()
            # Probe: a garbage file connects fine but fails its first
            # real statement with "file is not a database".
            row = connection.execute(
                "SELECT COALESCE(MAX(touched), 0) FROM results"
            ).fetchone()
            count = connection.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        except sqlite3.Error:
            connection.close()
            raise
        self._tick = int(row[0])
        self._row_bound = int(count[0])
        return connection

    def _quarantine(self) -> None:
        """Move a corrupted sidecar aside so a fresh one can be created."""
        try:
            os.replace(self.path, self.path.with_suffix(".corrupt"))
        except OSError:
            pass

    def _disable_locked(self) -> None:
        """Stop touching the sidecar after a runtime failure."""
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None
        self._pending_touches.clear()

    def close(self) -> None:
        """Flush deferred recency, then release the SQLite connection.

        Result rows themselves are already durable (every put commits);
        only the batched ``touched`` ticks need the final flush.
        """
        with self._lock:
            self._flush_touches_locked(commit=True)
            self._disable_locked()

    def flush(self) -> None:
        """Make deferred disk-hit recency visible to other processes."""
        with self._lock:
            self._flush_touches_locked(commit=True)

    # ------------------------------------------------------------------
    # Layered get / write-through put
    # ------------------------------------------------------------------

    def get(self, key: ResultKey) -> Optional[float]:
        """Memory first, then the sidecar; disk hits are promoted."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            value = self._disk_get_locked(key)
            if value is not None:
                self.hits += 1
                self.disk_hits += 1
                self._put_locked(key, value)  # promote into memory only
                return value
            self.misses += 1
            return None

    def put(self, key: ResultKey, value: float) -> None:
        with self._lock:
            self._put_locked(key, value)
            self._disk_put_locked([(key, float(value))])

    def put_many(self, items: Iterable[Tuple[ResultKey, float]]) -> None:
        """Write a whole batch in one transaction (one fsync total)."""
        with self._lock:
            rows = []
            for key, value in items:
                self._put_locked(key, value)
                rows.append((key, float(value)))
            if rows:
                self._disk_put_locked(rows)

    def _disk_get_locked(self, key: ResultKey) -> Optional[float]:
        if self._connection is None:
            return None
        fingerprint, source, target, samples, seed, max_hops = key
        try:
            row = self._connection.execute(
                "SELECT value FROM results WHERE fingerprint = ? AND "
                "source = ? AND target = ? AND samples = ? AND seed = ? "
                "AND max_hops = ?",
                (fingerprint, source, target, samples, str(seed), max_hops),
            ).fetchone()
        except sqlite3.Error:
            self._disable_locked()
            return None
        if row is None:
            return None
        # Defer the recency write: record the tick now (ordering stays
        # exact), flush it with the next batch instead of paying an
        # UPDATE+commit on every disk hit.
        self._tick += 1
        self._pending_touches[key] = self._tick
        if len(self._pending_touches) >= self.touch_flush_every:
            self._flush_touches_locked(commit=True)
        return float(row[0])

    def _flush_touches_locked(self, commit: bool) -> None:
        """Apply deferred recency ticks (optionally committing)."""
        if self._connection is None or not self._pending_touches:
            self._pending_touches.clear()
            return
        rows = [
            (
                tick, fingerprint, source, target, samples, str(seed),
                max_hops,
            )
            for (
                fingerprint, source, target, samples, seed, max_hops
            ), tick in self._pending_touches.items()
        ]
        try:
            self._connection.executemany(
                "UPDATE results SET touched = ? WHERE fingerprint = ? AND "
                "source = ? AND target = ? AND samples = ? AND seed = ? "
                "AND max_hops = ?",
                rows,
            )
            if commit:
                self._connection.commit()
        except sqlite3.Error:
            self._disable_locked()
            return
        self._pending_touches.clear()

    def _disk_put_locked(
        self, rows: Iterable[Tuple[ResultKey, float]]
    ) -> None:
        """Insert ``rows`` and commit once (plus any deferred touches)."""
        if self._connection is None:
            return
        try:
            # Pending recency rides along in the same transaction: the
            # commit is being paid anyway, and eviction below must see
            # true recency before it picks victims.
            self._flush_touches_locked(commit=False)
            if self._connection is None:  # the flush hit an error
                return
            inserted = 0
            for key, value in rows:
                fingerprint, source, target, samples, seed, max_hops = key
                self._tick += 1
                self._connection.execute(
                    "INSERT OR REPLACE INTO results VALUES (?, ?, ?, ?, ?, "
                    "?, ?, ?)",
                    (
                        fingerprint, source, target, samples, str(seed),
                        max_hops, value, self._tick,
                    ),
                )
                inserted += 1
            # REPLACEs overcount the bound; the resync below fixes it.
            self._row_bound += inserted
            if self._row_bound > self.disk_capacity:
                overflow = self._disk_size_locked() - self.disk_capacity
                if self._connection is None:  # the COUNT hit an error
                    return
                if overflow > 0:
                    self._connection.execute(
                        "DELETE FROM results WHERE rowid IN (SELECT rowid "
                        "FROM results ORDER BY touched ASC, rowid ASC "
                        "LIMIT ?)",
                        (overflow,),
                    )
                    self._row_bound = self.disk_capacity
            self._connection.commit()
        except sqlite3.Error:
            self._disable_locked()

    def _disk_size(self) -> int:
        """True sidecar row count, as a standalone (locking) call."""
        with self._lock:
            return self._disk_size_locked()

    def _disk_size_locked(self) -> int:
        """True sidecar row count (one COUNT; also resyncs the bound)."""
        if self._connection is None:
            return 0
        try:
            count = int(
                self._connection.execute("SELECT COUNT(*) FROM results")
                .fetchone()[0]
            )
        except sqlite3.Error:
            self._disable_locked()
            return 0
        self._row_bound = count
        return count

    def statistics(self) -> Dict[str, int]:
        """Base counters plus the sidecar's size, hits, and health."""
        with self._lock:
            # Reporting is a natural flush point: cheap, rare, and it
            # keeps cross-process recency from lagging indefinitely on
            # read-only workloads.
            self._flush_touches_locked(commit=True)
            stats = self._statistics_locked()
            stats.update(
                {
                    "disk_hits": self.disk_hits,
                    "disk_size": self._disk_size_locked(),
                    "disk_capacity": self.disk_capacity,
                    "persistent": not self.disabled,
                }
            )
            return stats


def open_result_cache(
    cache_dir: Union[str, Path],
    capacity: int = DEFAULT_CACHE_CAPACITY,
    disk_capacity: int = DEFAULT_DISK_CAPACITY,
) -> PersistentResultCache:
    """Open (or create) the persistent result cache under ``cache_dir``.

    The directory is created if missing; the sidecar inside it is
    :data:`RESULT_CACHE_FILENAME`.  One directory can serve any number of
    graphs and seeds — the full key disambiguates.
    """
    return PersistentResultCache(
        Path(cache_dir) / RESULT_CACHE_FILENAME,
        capacity=capacity,
        disk_capacity=disk_capacity,
    )


__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_DISK_CAPACITY",
    "DEFAULT_TOUCH_FLUSH_EVERY",
    "RESULT_CACHE_FILENAME",
    "UNBOUNDED_HOPS",
    "ResultKey",
    "ResultCache",
    "PersistentResultCache",
    "graph_fingerprint",
    "open_result_cache",
    "result_key",
]
