"""Result caching for the batch engine.

Because the engine's world stream is a pure function of
``(graph fingerprint, seed, world index)`` — see
:meth:`repro.engine.batch.BatchEngine.world_mask` — an estimate is fully
determined by the key ``(graph fingerprint, source, target, K, seed,
max_hops)``.  The hop bound is part of the key because a d-hop query
(§2.9) answers a *different indicator* over the same worlds: a ``(s, t,
K, seed)`` hit must never be served across different ``max_hops`` values.
Caching on that key is therefore *exact*, not approximate: a hit replays
the very number a fresh evaluation would produce.  This mirrors the paper's
observation (§2.2/§3.7) that the expensive part of an estimate is sampling,
not arithmetic — a served query whose worlds were already drawn should
never draw them again.

The cache is a plain LRU over that key.  It deliberately stores only
floats: worlds themselves are streamed and dropped (the §2.3 lesson — BFS
Sharing's offline index shows that *retaining* K worlds costs ``O(Km)``
memory, which is exactly what the engine's ``chunk_size`` knob avoids).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.graph import UncertainGraph
from repro.util.validation import check_positive

#: Cache key: (graph fingerprint, source, target, samples, seed, max_hops)
#: with the unbounded hop budget encoded as ``UNBOUNDED_HOPS``.
ResultKey = Tuple[str, int, int, int, int, int]

#: Key encoding of "no hop bound" (hop bounds are strictly positive).
UNBOUNDED_HOPS = -1

DEFAULT_CACHE_CAPACITY = 4096

_FINGERPRINT_ATTRIBUTE = "_engine_fingerprint"


def graph_fingerprint(graph: UncertainGraph) -> str:
    """Content hash of a graph's CSR arrays (stable across processes).

    Two graphs with identical structure and probabilities share a
    fingerprint, so cached results survive reloading the same dataset.
    The digest is memoised on the (frozen) graph instance.
    """
    cached = getattr(graph, _FINGERPRINT_ATTRIBUTE, None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    digest.update(int(graph.node_count).to_bytes(8, "little"))
    digest.update(graph.indptr.tobytes())
    digest.update(graph.targets.tobytes())
    digest.update(graph.probs.tobytes())
    fingerprint = digest.hexdigest()
    setattr(graph, _FINGERPRINT_ATTRIBUTE, fingerprint)
    return fingerprint


def result_key(
    fingerprint: str,
    source: int,
    target: int,
    samples: int,
    seed: int,
    max_hops: Optional[int] = None,
) -> ResultKey:
    """The canonical cache key for one estimate.

    ``max_hops=None`` (plain reliability) and every concrete hop bound map
    to distinct keys, so d-hop and unbounded estimates never alias.
    """
    return (
        fingerprint,
        int(source),
        int(target),
        int(samples),
        int(seed),
        UNBOUNDED_HOPS if max_hops is None else int(max_hops),
    )


class ResultCache:
    """A bounded LRU cache of batch-engine estimates.

    ``get`` promotes hits to most-recently-used; ``put`` evicts the least
    recently used entry once ``capacity`` is exceeded.  Hit/miss counters
    feed the engine's :class:`~repro.engine.batch.BatchResult` report.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self.capacity = check_positive(capacity, "capacity")
        self._entries: "OrderedDict[ResultKey, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ResultKey) -> bool:
        return key in self._entries

    def get(self, key: ResultKey) -> Optional[float]:
        """Return the cached estimate for ``key`` or ``None`` (counted)."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: ResultKey, value: float) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past capacity."""
        self._entries[key] = float(value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def statistics(self) -> Dict[str, int]:
        """Counters for reports: size, capacity, hits, misses."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "UNBOUNDED_HOPS",
    "ResultKey",
    "ResultCache",
    "graph_fingerprint",
    "result_key",
]
