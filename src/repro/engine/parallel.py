"""Multiprocess chunk evaluation for the batch engine.

The engine's chunk sweep is embarrassingly parallel: world ``i`` is a pure
function of ``(graph, seed, i)`` (the determinism contract of
:mod:`repro.engine.batch`), so any chunk range can be evaluated by any
process from nothing but the engine's constructor arguments.  Each worker
returns integer per-query hit counts; the parent sums them.  Integer
addition is associative and commutative, so the reduction equals the
serial loop's accumulation **bit for bit** — parallelism is purely a
wall-clock lever, never a statistical one.  (Sasaki et al. exploit the
same index-keyed decomposition for network reliability; see PAPERS.md.)

Topology: one ``ProcessPoolExecutor`` per :meth:`BatchEngine.run` call.
Workers are primed once via an initializer that rebuilds a private
``BatchEngine`` from ``(graph, seed, chunk_size, sweep)`` plus the run's
frozen plan state (groups, pending mask); after that each task ships only
a ``(chunk_start, count)`` pair.  Worker engines disable caching — the
parent owns the :class:`~repro.engine.cache.ResultCache` and is the only
writer.

Parallel granularity equals ``chunk_size``: the parent fans out exactly
the chunk ranges the serial loop would sweep, so instrumentation
(``sweeps``, ``worlds_sampled``) also matches the serial run exactly.
Lower ``chunk_size`` to expose more parallelism for small ``K``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import BatchEngine

# Per-worker-process state, installed once by _initialise_worker.  Module
# globals survive across tasks within one pool, so the graph and plan are
# shipped (pickled) once per worker instead of once per chunk.
_WORKER_ENGINE = None
_WORKER_GROUPS = None
_WORKER_PENDING = None
_WORKER_UNIQUE_COUNT = 0


def _initialise_worker(
    graph,
    seed: int,
    chunk_size: int,
    sweep: str,
    kernels: str,
    groups,
    pending: np.ndarray,
    unique_count: int,
) -> None:
    """Build this worker's private engine and pin the run's plan state."""
    global _WORKER_ENGINE, _WORKER_GROUPS, _WORKER_PENDING
    global _WORKER_UNIQUE_COUNT
    _WORKER_ENGINE = BatchEngine(
        graph,
        seed=seed,
        chunk_size=chunk_size,
        sweep=sweep,
        kernels=kernels,
        workers=1,  # workers never nest pools
        # The parent owns the real result cache — including any
        # persistent sidecar; workers never open the SQLite file, so the
        # fan-out adds no write contention.
        cache_capacity=1,
    )
    _WORKER_GROUPS = groups
    _WORKER_PENDING = pending
    _WORKER_UNIQUE_COUNT = unique_count


def _evaluate_range(task: Tuple[int, int]) -> Tuple[np.ndarray, int]:
    """Worker-side task: evaluate one chunk range against the pinned plan."""
    chunk_start, count = task
    assert _WORKER_ENGINE is not None, "worker used before initialisation"
    return _WORKER_ENGINE.evaluate_chunk(
        chunk_start, count, _WORKER_GROUPS, _WORKER_PENDING,
        _WORKER_UNIQUE_COUNT,
    )


def evaluate_chunks_parallel(
    engine: BatchEngine,
    tasks: Sequence[Tuple[int, int]],
    groups,
    pending: np.ndarray,
    unique_count: int,
    workers: int,
) -> Tuple[np.ndarray, int]:
    """Fan ``tasks`` (chunk ranges) out over ``workers`` processes.

    Returns ``(hits, sweeps)`` summed over all chunks — the same totals
    :meth:`BatchEngine.run`'s serial loop accumulates, in the same dtype
    (int64), hence bit-identical estimates downstream.
    """
    hits = np.zeros(unique_count, dtype=np.int64)
    sweeps = 0
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_initialise_worker,
        initargs=(
            engine.graph, engine.seed, engine.chunk_size, engine.sweep,
            engine.kernels, groups, pending, unique_count,
        ),
    ) as pool:
        futures = [pool.submit(_evaluate_range, task) for task in tasks]
        try:
            for future in futures:
                chunk_hits, chunk_sweeps = future.result()
                hits += chunk_hits
                sweeps += chunk_sweeps
        except BaseException:
            # A chunk failing mid-fan-out must not strand the rest of the
            # run: without the cancellations, the context exit's
            # ``shutdown(wait=True)`` sat through *every* still-queued
            # chunk before the error could propagate — on a big workload,
            # a pool's worth of doomed work (and its worker processes)
            # leaked past the failure for seconds.  Cancel the queue, let
            # the context manager reap the workers, re-raise the cause.
            for future in futures:
                future.cancel()
            raise
    return hits, sweeps


class ParallelBatchEngine(BatchEngine):
    """:class:`BatchEngine` pre-configured for multiprocess evaluation.

    ``ParallelBatchEngine(graph)`` is exactly ``BatchEngine(graph,
    workers=os.cpu_count())``: callers reaching for "the parallel engine"
    get a sensible default worker count without consulting
    :data:`~repro.engine.batch.WORKERS_ENV_VAR`.  Everything else —
    semantics, caching, determinism — is inherited unchanged.
    """

    def __init__(
        self, graph, *, workers: Optional[int] = None, **kwargs
    ) -> None:
        if workers is None:
            workers = default_worker_count()
        super().__init__(graph, workers=workers, **kwargs)


def default_worker_count() -> int:
    """The worker count :class:`ParallelBatchEngine` defaults to."""
    return os.cpu_count() or 1


__all__ = [
    "ParallelBatchEngine",
    "default_worker_count",
    "evaluate_chunks_parallel",
]
