"""The public API facade: one stable surface from CLI to HTTP.

Every transport — the ``repro`` CLI, the :mod:`repro.serve` HTTP server,
library callers, and any future gRPC/async/sharded layer — speaks to the
library through :class:`ReliabilityService` and the typed
request/response objects in this package.  Import from here::

    from repro.api import BatchRequest, ReliabilityService

    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=7)
    response = service.estimate_batch(
        BatchRequest(queries=coerce_query_specs([[0, 5, 500], [3, 9, 500]]))
    )
    print(response.to_dict())
"""

from repro.api.errors import (
    FingerprintMismatchError,
    GraphLoadError,
    InvalidQueryError,
    PayloadTooLargeError,
    ReliabilityError,
    ShardUnavailableError,
    UnknownEstimatorError,
)
from repro.api.service import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_REWARM_TOP,
    FAST_BATCH_PATHS,
    ReliabilityService,
)
from repro.api.types import (
    BatchRequest,
    BatchResponse,
    BoundsRequest,
    BoundsResponse,
    EngineReport,
    EstimateRequest,
    EstimateResponse,
    QueryResult,
    QuerySpec,
    RecommendRequest,
    RecommendResponse,
    ShardRunRequest,
    ShardRunResponse,
    TopKRequest,
    TopKResponse,
    UpdateRequest,
    UpdateResponse,
    WarmRequest,
    WarmResponse,
    coerce_query_specs,
)

__all__ = [
    "ReliabilityError",
    "UnknownEstimatorError",
    "InvalidQueryError",
    "GraphLoadError",
    "PayloadTooLargeError",
    "FingerprintMismatchError",
    "ShardUnavailableError",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_REWARM_TOP",
    "FAST_BATCH_PATHS",
    "ReliabilityService",
    "QuerySpec",
    "coerce_query_specs",
    "EstimateRequest",
    "BatchRequest",
    "WarmRequest",
    "UpdateRequest",
    "ShardRunRequest",
    "TopKRequest",
    "BoundsRequest",
    "RecommendRequest",
    "QueryResult",
    "EngineReport",
    "EstimateResponse",
    "BatchResponse",
    "WarmResponse",
    "UpdateResponse",
    "ShardRunResponse",
    "TopKResponse",
    "BoundsResponse",
    "RecommendResponse",
]
