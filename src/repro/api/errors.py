"""The structured error hierarchy of the public API.

Every failure the :class:`~repro.api.service.ReliabilityService` can
signal to a caller is a :class:`ReliabilityError` subclass, so transports
(the CLI, the HTTP server, future gRPC/async layers) need exactly one
``except`` clause to map *any* service failure onto their own error
surface — a ``SystemExit`` with context for the CLI, a structured 400
body for HTTP.

Two of the subclasses double as builtin exceptions:

* :class:`InvalidQueryError` is also a :class:`ValueError` — malformed
  workload entries were plain ``ValueError`` before the facade existed,
  and callers that caught those keep working;
* :class:`UnknownEstimatorError` is also a :class:`KeyError`-free
  ``ValueError`` (registry lookups raise ``KeyError``; the service
  re-raises them as this type so API users never see a bare mapping
  error).
"""

from __future__ import annotations


class ReliabilityError(Exception):
    """Base class of every error raised by the public API facade.

    The class name doubles as the wire-level error code: transports
    report ``type(error).__name__`` alongside the message (see the
    ``error`` objects of :mod:`repro.serve`).
    """

    #: HTTP status the serving layer maps this error onto.
    http_status = 400

    def to_dict(self) -> dict:
        """The structured payload transports ship to clients."""
        return {"type": type(self).__name__, "message": str(self)}


class UnknownEstimatorError(ReliabilityError, ValueError):
    """An estimator key that is not in the registry."""


class InvalidQueryError(ReliabilityError, ValueError):
    """A malformed query, workload entry, or request parameter."""


class GraphLoadError(ReliabilityError):
    """The requested graph/dataset could not be loaded or is unusable."""


class PayloadTooLargeError(ReliabilityError):
    """A request body larger than the serving layer accepts.

    Maps onto HTTP 413 so well-behaved clients can distinguish "shrink
    your batch" from the 400 family of malformed-request errors.
    """

    http_status = 413


class FingerprintMismatchError(ReliabilityError):
    """A shard request addressed a different graph version than served.

    The shard protocol carries the coordinator's graph fingerprint on
    every dispatch; a worker whose graph (version) differs must refuse
    rather than contribute counts from the wrong world stream.  Maps
    onto HTTP 409 (conflict): the request was well-formed, the two
    hosts simply disagree about state — re-sync the tier (replay the
    ``/v1/update`` on every shard) and retry.
    """

    http_status = 409


class ShardUnavailableError(ReliabilityError):
    """No healthy shard could complete a dispatched world range.

    Raised by the coordinator when every configured shard has failed a
    range (after per-shard retries) and local fallback is disabled.
    Maps onto HTTP 503: the request is fine, the tier is not — retry
    once workers are back.
    """

    http_status = 503


__all__ = [
    "ReliabilityError",
    "UnknownEstimatorError",
    "InvalidQueryError",
    "GraphLoadError",
    "PayloadTooLargeError",
    "FingerprintMismatchError",
    "ShardUnavailableError",
]
