"""`ReliabilityService`: the one long-lived facade over the whole library.

The paper frames s-t reliability as a *query workload* problem — sampling
possible worlds dominates, so shared indexes and batching win (§2.2,
§3.7).  That framing makes the natural unit of deployment a **service**:
one process that loads the graph once, builds each estimator index once,
keeps the result caches hot, and answers queries for as long as it
lives.  This class is that unit.  Every transport is a thin adapter over
it — the ``repro`` CLI builds one service per invocation, ``repro
serve`` keeps one alive behind an HTTP API (:mod:`repro.serve`), and any
future transport (gRPC, async, sharded workers) lands behind the same
six methods instead of forking the CLI.

What the service owns
---------------------
* the loaded :class:`~repro.core.graph.UncertainGraph` (plus, when built
  via :meth:`from_dataset`, the suite dataset's provenance);
* lazily-constructed estimators, one per method, indexes built once and
  reused across requests (ProbTree's FWD decomposition, BFS Sharing's
  bit-vector index);
* the shared result cache — the in-memory LRU, or the persistent SQLite
  sidecar when ``cache_dir`` is given — threaded through every
  engine-backed request, so a repeated query is replayed without
  sampling a single world;
* request counters for the ``/v1/stats`` endpoint.

Thread safety: all public methods may be called from concurrent threads
(the HTTP layer does).  Locking is fine-grained so independent requests
actually run in parallel:

* a short **prepare lock** covers lazy estimator construction only —
  each method's index is built exactly once, and the estimator map is
  published copy-on-write so readers never need the lock;
* every engine-backed request (``estimate_batch`` on an engine-path
  method, ``warm``) builds its own cheap :class:`BatchEngine` and runs
  it **outside any service lock** — concurrent runs share only the
  internally thread-safe result cache;
* ``topk`` and ``bounds`` build all their state per call, so they run
  unlocked too;
* calls into a *shared, stateful* estimator instance (``estimate``, and
  the non-engine batch paths) serialise on that method's own lock —
  different methods proceed in parallel, and index reuse stays safe;
* request counters live behind a micro-lock, so ``health()`` and
  ``stats()`` snapshots never wait on a running engine.

Determinism is untouched by any of this: world ``i`` is a pure function
of ``(graph, seed, i)`` and cache keys are exact, so concurrent
identical requests return **bit-identical** estimates no matter how
they interleave (hammer-tested in ``tests/serve``).

Determinism: with an explicit ``seed`` the service's answers equal the
CLI's historical output exactly — the CLI *is* this facade now, and the
conformance tests in ``tests/api`` pin the equivalence.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Optional, Tuple, Type

from repro.api.errors import (
    FingerprintMismatchError,
    GraphLoadError,
    InvalidQueryError,
    UnknownEstimatorError,
)
from repro.api.types import (
    BatchRequest,
    BatchResponse,
    BoundsRequest,
    BoundsResponse,
    EngineReport,
    EstimateRequest,
    EstimateResponse,
    QueryResult,
    QuerySpec,
    RecommendRequest,
    RecommendResponse,
    ResolvedQuery,
    ShardRunRequest,
    ShardRunResponse,
    TopKRequest,
    TopKResponse,
    UpdateRequest,
    UpdateResponse,
    WarmRequest,
    WarmResponse,
)
from repro.core.bounds import reliability_bounds
from repro.core.estimators.base import Estimator
from repro.core.graph import UncertainGraph
from repro.core.mutation import apply_update
from repro.core.recommend import recommend_estimator
from repro.core.registry import create_estimator as _registry_create
from repro.core.registry import display_name, estimator_class
from repro.engine.batch import (
    DEFAULT_CHUNK_SIZE,
    KERNEL_MODES,
    BatchEngine,
    BatchResult,
    resolve_kernels,
    resolve_workers,
)
from repro.engine.cache import (
    DEFAULT_CACHE_CAPACITY,
    ResultCache,
    graph_fingerprint,
    open_result_cache,
)
from repro.engine.pool import WorkerPool
from repro.queries.top_k import top_k_reliable_targets
from repro.routing import AdaptiveRouter, QueryTelemetry, RoutingDecision
from repro.util.rng import stable_substream

#: Batch-path tags with an engine or grouped fast path (``workers`` /
#: ``cache_dir`` are honoured there; the per-query loop ignores both).
FAST_BATCH_PATHS = ("engine", "bag_grouped")

#: The pseudo-method that routes through the adaptive router: a request
#: carrying it is resolved to a concrete registered estimator before any
#: dispatch, and the response reports both the concrete method and the
#: routing decision that picked it.
AUTO_METHOD = "auto"

#: Bound on distinct keys the re-warm query log tracks.  Beyond it, new
#: keys are dropped (never counted keys evicted): re-warming targets the
#: *heavy hitters*, and the heavy hitters of a workload big enough to
#: overflow this are in the log long before it fills.
QUERY_LOG_CAPACITY = 1024

#: Default number of logged keys a re-warm pass replays.
DEFAULT_REWARM_TOP = 8


class ReliabilityService:
    """Answers every public query type over one uncertain graph.

    The request-counter key set (fixed up front so counter snapshots are
    lock-free) is :data:`ENDPOINTS`.

    Parameters
    ----------
    graph:
        The uncertain graph all requests address.
    seed:
        The service's root seed: the default for requests that do not
        carry their own, and the construction seed of every estimator.
    cache_dir:
        When given, results persist to the SQLite sidecar under this
        directory (see :mod:`repro.engine.cache`); a re-started service
        warm-starts from disk.  ``None`` keeps an in-memory LRU only.
    chunk_size / workers:
        Engine defaults for requests that do not override them.
    kernels:
        Default sweep kernels (``"python"`` or ``"vectorized"``, see
        :mod:`repro.engine.kernels`) for served engine runs; a request
        may override per call.  Bit-identical either way.

    Multi-process requests share **one** long-lived
    :class:`~repro.engine.pool.WorkerPool`: the first engine run that
    fans out forks the workers (graph shipped once, at fork), and every
    later run — any request thread, any seed — dispatches its
    ``(chunk_start, count)`` tasks to the same processes instead of
    re-forking and re-pickling the graph per request.  The pool dies
    with the service (:meth:`close`); a run that catches the pool
    closing falls back to the per-run fork, so shutdown never corrupts
    an in-flight request.
    """

    #: Every counted endpoint, fixed so the counter dict never resizes.
    #: ``repro lint`` (W302/W303) keeps this tuple, the HTTP routes in
    #: ``serve/server.py``, and the docs/api.md endpoint table in sync;
    #: ``# wire: local-only`` marks endpoints served by the CLI only.
    ENDPOINTS = (
        "estimate",
        "batch",
        "warm",
        "update",
        "shard_run",
        "topk",
        "bounds",
        "study",  # wire: local-only
        "recommend",
    )

    # lock-order: _update_lock -> _prepare_lock -> _counts_lock -> _pool_lock

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        seed: int = 0,
        dataset=None,
        cache_dir: Optional[str] = None,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
        kernels: Optional[str] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        if not isinstance(graph, UncertainGraph):
            raise GraphLoadError(
                f"a ReliabilityService wraps an UncertainGraph, "
                f"got {type(graph).__name__}"
            )
        self.graph = graph  # guarded-by: _prepare_lock
        self.seed = int(seed)
        self.dataset = dataset  # a suite Dataset, or None for raw graphs
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.chunk_size = (
            DEFAULT_CHUNK_SIZE if chunk_size is None else int(chunk_size)
        )
        if self.chunk_size <= 0:
            raise InvalidQueryError(
                f"chunk_size must be a positive integer, got {chunk_size}"
            )
        self.workers = workers
        if kernels is not None and kernels not in KERNEL_MODES:
            raise InvalidQueryError(
                f"unknown kernel mode {kernels!r}; "
                f"known: {', '.join(KERNEL_MODES)}"
            )
        self.kernels = kernels
        #: The one shared worker pool (lazily built by :meth:`_engine`).
        self._pool: Optional[WorkerPool] = None  # guarded-by: _pool_lock
        self._pool_lock = threading.Lock()
        self._cache: ResultCache = (
            open_result_cache(self.cache_dir, capacity=cache_capacity)
            if self.cache_dir is not None
            else ResultCache(cache_capacity)
        )
        #: method -> (estimator, its call lock).  Published copy-on-write:
        #: lookups read the attribute without locking; inserts (under the
        #: prepare lock) replace the whole dict, never mutate a published
        #: one — so iteration in ``stats()`` can never see a resize.
        self._estimators: Dict[  # guarded-by: _prepare_lock
            str, Tuple[Estimator, threading.Lock]
        ] = {}
        #: Serialises lazy estimator construction (once per method).
        self._prepare_lock = threading.Lock()
        #: Micro-lock making request-counter increments atomic; snapshots
        #: read without it (the key set is fixed at construction, so a
        #: concurrent read can never see a dict resize either).
        self._counts_lock = threading.Lock()
        self._started = time.time()
        self._request_counts: Dict[str, int] = {  # guarded-by: _counts_lock
            endpoint: 0 for endpoint in self.ENDPOINTS
        }
        #: Serialises :meth:`update` calls — one version transition at a
        #: time, so ``version`` and the fingerprint lineage stay linear.
        self._update_lock = threading.Lock()
        #: Engine-served query keys -> hit counts, feeding :meth:`rewarm`.
        #: Guarded by the counts micro-lock (increments are cheap).
        self._query_log: Dict[  # guarded-by: _counts_lock
            Tuple[int, int, int, Optional[int], int], int
        ] = {}
        self._rewarm_runs = 0  # guarded-by: _counts_lock
        self._rewarm_queries = 0  # guarded-by: _counts_lock
        #: What every served query measured, bucketed by (fingerprint,
        #: method, K band, hop band) — see :mod:`repro.routing`.
        self.telemetry = QueryTelemetry()
        #: Routes ``estimator="auto"`` requests and backs ``recommend()``.
        self.router = AdaptiveRouter(self.telemetry)
        #: Index-backed methods whose index a live update *dropped* (to
        #: be lazily rebuilt): demoted by the router and ``recommend()``
        #: until a per-estimator request forces the rebuild.  Guarded by
        #: the counts micro-lock; read as a snapshot.
        self._dropped_indexes: set = set()  # guarded-by: _counts_lock
        self._closed = False

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def from_dataset(
        cls,
        dataset: str,
        scale: str = "small",
        seed: int = 0,
        **options,
    ) -> "ReliabilityService":
        """Build a service over one suite dataset (Table 2 analogue).

        Deterministic in ``(dataset, scale, seed)``; unknown keys become
        a structured :class:`GraphLoadError` instead of a bare KeyError.
        """
        from repro.datasets.suite import load_dataset

        try:
            loaded = load_dataset(dataset, scale, seed)
        except KeyError as error:
            raise GraphLoadError(error.args[0]) from None
        return cls(loaded.graph, seed=seed, dataset=loaded, **options)

    @property
    def dataset_key(self) -> Optional[str]:
        return None if self.dataset is None else self.dataset.key

    @property
    def scale(self) -> Optional[str]:
        return None if self.dataset is None else self.dataset.scale

    @property
    def persistent(self) -> bool:
        """Whether results outlive this process (a sidecar is attached)."""
        return self.cache_dir is not None

    def close(self) -> None:
        """Release the persistent cache connection (writes are durable).

        Does not wait for in-flight requests (the PR 4 close did, as a
        side effect of the global lock): a request still running when
        the sidecar closes finishes correctly — its estimates are
        computed and returned — but its late cache writes are silently
        skipped (the disabled-persistence path), so those queries are
        not warm on disk for the next process.  Acceptable by the cache
        contract (an accelerator, never a correctness dependency);
        callers that need every write durable stop accepting requests
        before closing, as ``serve()`` does via ``server_close()``.
        """
        self._closed = True
        pool = self._pool
        if pool is not None:
            # Waits for running chunk tasks, cancels queued ones; a run
            # mid-dispatch sees PoolClosedError and falls back to its
            # per-run fork, so its estimates still come out correct.
            pool.close()
        close = getattr(self._cache, "close", None)
        if close is not None:
            close()  # the cache serialises itself against in-flight I/O

    def __enter__(self) -> "ReliabilityService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        origin = (
            f"dataset={self.dataset_key!r}, scale={self.scale!r}"
            if self.dataset is not None
            else f"graph={self.graph!r}"
        )
        return (
            f"{type(self).__name__}({origin}, seed={self.seed}, "
            f"persistent={self.persistent})"
        )

    # ------------------------------------------------------------------
    # Estimator plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _estimator_class(method: str) -> Type[Estimator]:
        try:
            return estimator_class(method)
        except KeyError as error:
            raise UnknownEstimatorError(error.args[0]) from None

    @classmethod
    def batch_path_of(cls, method: str) -> str:
        """The fast-path dispatch tag of ``method`` (see ``batch_path``)."""
        return cls._estimator_class(method).batch_path

    def create_estimator(self, method: str, **options) -> Estimator:
        """Construct a *fresh* estimator on the service's graph.

        The construction hook the experiment runner uses
        (:func:`repro.experiments.runner.build_estimator`): studies need
        per-study estimator instances so their RNG state never leaks
        between runs, unlike the cached instances serving requests.
        """
        self._estimator_class(method)  # raises UnknownEstimatorError
        options.setdefault("seed", self.seed)
        return _registry_create(method, self.graph, **options)

    def estimator(self, method: str) -> Estimator:
        """The service's long-lived estimator for ``method``.

        Built (and :meth:`~Estimator.ensure_prepared`-d) on first use
        under the prepare lock, then reused: ProbTree's FWD index and
        BFS Sharing's world index amortise across every later request.
        Callers that *invoke* the returned (stateful) instance from
        concurrent threads must hold its call lock — the service's own
        request paths go through :meth:`_estimator_entry` for exactly
        that.
        """
        return self._estimator_entry(method)[0]

    def _estimator_entry(
        self, method: str
    ) -> Tuple[Estimator, threading.Lock]:
        """``(estimator, call lock)`` for ``method``, building lazily.

        Double-checked: the common case reads the copy-on-write map with
        no lock at all; a miss takes the prepare lock, re-checks, builds
        and prepares once, and publishes a *new* map.  The per-method
        call lock serialises access to the estimator's mutable state
        (scratch arrays, ProbTree's lift LRU, instrumentation) without
        ever serialising two different methods against each other.
        """
        entry = self._estimators.get(method)
        if entry is None:
            with self._prepare_lock:
                entry = self._estimators.get(method)
                if entry is None:
                    built = self.create_estimator(method)
                    built.ensure_prepared()
                    entry = (built, threading.Lock())
                    published = dict(self._estimators)
                    published[method] = entry
                    self._estimators = published
        return entry

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def _check_node(self, node: int, role: str, context: str = "") -> None:
        prefix = f"{context}: " if context else ""
        if not 0 <= int(node) < self.graph.node_count:
            raise InvalidQueryError(
                f"{prefix}{role} {node} out of range for a graph with "
                f"{self.graph.node_count} nodes"
            )

    @staticmethod
    def _check_positive(value, name: str, context: str = "") -> None:
        prefix = f"{context}: " if context else ""
        if value is not None and int(value) <= 0:
            raise InvalidQueryError(
                f"{prefix}{name} must be a positive integer, got {value}"
            )

    def resolve_queries(
        self,
        queries: Tuple[QuerySpec, ...],
        default_samples: int,
        default_max_hops: Optional[int] = None,
    ) -> List[ResolvedQuery]:
        """Apply workload defaults and validate every entry up front.

        The engine validates too, but deep in the sweep and without
        workload context; failing here turns "ValueError from
        plan_queries" into "which query of your request is wrong".
        """
        self._check_positive(default_samples, "samples")
        self._check_positive(default_max_hops, "max_hops")
        resolved: List[ResolvedQuery] = []
        for position, spec in enumerate(queries):
            context = f"query {position}"
            samples = (
                default_samples if spec.samples is None else spec.samples
            )
            max_hops = (
                default_max_hops if spec.max_hops is None else spec.max_hops
            )
            self._check_node(spec.source, "source", context)
            self._check_node(spec.target, "target", context)
            self._check_positive(samples, "samples", context)
            self._check_positive(max_hops, "max_hops", context)
            resolved.append(
                (int(spec.source), int(spec.target), int(samples), max_hops)
            )
        return resolved

    def _resolve_seed(self, seed: Optional[int]) -> int:
        return self.seed if seed is None else int(seed)

    def _count(self, endpoint: str) -> None:
        # The micro-lock makes the read-modify-write atomic; it is never
        # held across estimator or engine work, so counting can never
        # block (or be blocked by) a running request.
        with self._counts_lock:
            self._request_counts[endpoint] += 1

    # ------------------------------------------------------------------
    # Routing plumbing (estimator="auto" and recommend())
    # ------------------------------------------------------------------

    def _dropped_snapshot(self) -> Tuple[str, ...]:
        """Methods currently demoted for a dropped (not yet rebuilt) index."""
        if not self._dropped_indexes:
            return ()
        with self._counts_lock:
            return tuple(sorted(self._dropped_indexes))

    def _mark_index_rebuilt(self, method: str) -> None:
        """Lift ``method``'s demotion: a per-estimator request just served
        through it, so any lazily-dropped index has been rebuilt."""
        if not self._dropped_indexes:
            return
        with self._counts_lock:
            self._dropped_indexes.discard(method)

    def _route(
        self,
        *,
        fingerprint: str,
        samples: int,
        max_hops: Optional[int],
        memory_limited: bool = False,
    ) -> RoutingDecision:
        """One router decision against the given graph snapshot."""
        return self.router.route(
            fingerprint=fingerprint,
            samples=samples,
            max_hops=max_hops,
            memory_limited=memory_limited,
            unavailable=self._dropped_snapshot(),
        )

    def _resolve_auto_batch(
        self, request: BatchRequest
    ) -> Tuple[BatchRequest, Optional[RoutingDecision]]:
        """Resolve ``method="auto"`` to a concrete method for a workload.

        The routing key is the workload's *shape*: the request-level
        sample budget and whether any entry is hop-bounded (a single
        bounded entry restricts the pool to hop-capable methods — a
        router that picked a fallback-path method would make the whole
        batch unservable).  Named-method requests pass through untouched.
        """
        if request.method != AUTO_METHOD:
            return request, None
        max_hops = request.max_hops
        if max_hops is None:
            bounded = [
                spec.max_hops
                for spec in request.queries
                if spec.max_hops is not None
            ]
            if bounded:
                max_hops = bounded[0]
        decision = self._route(
            fingerprint=graph_fingerprint(self.graph),
            samples=request.samples,
            max_hops=max_hops,
        )
        return dataclasses.replace(request, method=decision.method), decision

    def _shared_pool(
        self, graph: UncertainGraph, workers: int
    ) -> Optional[WorkerPool]:
        """The service's one worker pool, pinned to ``graph``'s version.

        Sized by the first run that needs it (the service-level
        ``workers`` when set); later runs share it whatever their own
        ``workers`` value — pool size is a wall-clock lever, and the
        determinism contract keeps every interleaving bit-identical.
        Construction forks nothing (the pool starts lazily).

        Workers fork with one frozen graph, so the pool is useless the
        moment an update lands: a pool pinned to a *different*
        fingerprint than the current service graph is swapped out and
        closed here (the respawn half of the update lifecycle —
        :meth:`update` does the close half for pools it retires).  A run
        against a graph that is no longer ``self.graph`` (it resolved
        its engine just before an update swapped versions) gets ``None``
        and falls back to its per-run fork — stale versions never
        recruit the shared pool.
        """
        fingerprint = graph_fingerprint(graph)
        stale = None
        with self._pool_lock:
            pool = self._pool
            if (
                pool is not None
                and not pool.closed
                and pool.fingerprint == fingerprint
            ):
                return pool
            if graph is not self.graph:
                return None
            stale, pool = pool, WorkerPool(graph, workers)
            self._pool = pool
        if stale is not None:
            stale.close()
        return pool

    def _engine(
        self,
        seed: int,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
        kernels: Optional[str] = None,
    ) -> BatchEngine:
        """An engine over the service's graph sharing the service cache.

        Engines are cheap (the graph fingerprint is memoised); the
        expensive state — sampled results and forked workers — lives in
        the shared cache and the shared pool, which is what a
        long-lived service actually amortises.

        The graph is snapshot **once**: a concurrent :meth:`update`
        swapping ``self.graph`` mid-call cannot hand this run a pool
        forked for one version and an engine over another.
        """
        graph = self.graph
        resolved = resolve_workers(
            self.workers if workers is None else workers
        )
        pool = None
        if resolved > 1 and not self._closed:
            pool = self._shared_pool(graph, resolved)
        return BatchEngine(
            graph,
            seed=seed,
            chunk_size=self.chunk_size if chunk_size is None else chunk_size,
            workers=resolved,
            kernels=self.kernels if kernels is None else kernels,
            pool=pool,
            cache=self._cache,
        )

    def _cache_report(self) -> Optional[Dict[str, int]]:
        return self._cache.statistics() if self.persistent else None

    # ------------------------------------------------------------------
    # estimate / estimate_batch
    # ------------------------------------------------------------------

    def estimate(self, request: EstimateRequest) -> EstimateResponse:
        """One s-t reliability estimate through one named estimator.

        The query substream is keyed by ``(seed, source, target)`` —
        exactly the CLI's historical protocol — so the same request
        against the same service always replays the same number.

        Index-backed estimators draw their index from the construction
        seed, not the query substream; when a request carries its own
        seed, serving it from the long-lived (service-seeded) index
        would ignore that seed while reporting it as provenance.  Such
        requests therefore get a fresh estimator seeded by the request
        (index rebuild included) — the answer really is a function of
        the reported seed.

        ``method="auto"`` resolves through the adaptive router first;
        the answer is then **bit-identical** to the same request naming
        the routed method directly (the substream depends on the seed
        and the pair, never on how the method was chosen), and the
        response reports the concrete method plus the routing decision.
        """
        fingerprint = graph_fingerprint(self.graph)
        routing = None
        if request.method == AUTO_METHOD:
            decision = self._route(
                fingerprint=fingerprint,
                samples=request.samples,
                max_hops=None,
            )
            request = dataclasses.replace(request, method=decision.method)
            routing = decision.to_dict()
        cls = self._estimator_class(request.method)
        self._check_node(request.source, "source")
        self._check_node(request.target, "target")
        self._check_positive(request.samples, "samples")
        seed = self._resolve_seed(request.seed)
        rng = stable_substream(seed, request.source, request.target)
        if cls.uses_index and seed != self.seed:
            # A request-seeded index estimator is private to this request
            # — nothing is shared, so it runs with no lock at all.  Not
            # telemetered: the wall clock includes a full index build,
            # which would poison the method's per-query cost buckets.
            estimator = self.create_estimator(request.method, seed=seed)
            value = estimator.estimate(
                request.source, request.target, request.samples, rng=rng
            )
        else:
            # The long-lived instance is stateful (scratch arrays, lift
            # LRU); its call lock serialises this method only — requests
            # for other methods, and every engine run, proceed alongside.
            estimator, call_lock = self._estimator_entry(request.method)
            started = time.perf_counter()
            with call_lock:
                value = estimator.estimate(
                    request.source, request.target, request.samples, rng=rng
                )
            self.telemetry.record(
                request.method,
                fingerprint=fingerprint,
                samples=request.samples,
                max_hops=None,
                seconds=time.perf_counter() - started,
                estimate=float(value),
            )
            self._mark_index_rebuilt(request.method)
        self._count("estimate")
        return EstimateResponse(
            source=request.source,
            target=request.target,
            samples=request.samples,
            method=request.method,
            method_display=cls.display_name,
            seed=seed,
            estimate=float(value),
            dataset=self.dataset_key,
            scale=self.scale,
            routing=routing,
        )

    def _validate_batch(
        self, request: BatchRequest, batch_path: str
    ) -> None:
        """Semantic guards shared by every transport (API-phrased)."""
        engine_backed = batch_path == "engine"
        has_fast_path = batch_path in FAST_BATCH_PATHS
        self._check_positive(request.workers, "workers")
        self._check_positive(request.chunk_size, "chunk_size")
        if request.sequential and request.method != "mc":
            raise InvalidQueryError(
                "sequential evaluation is the per-query engine oracle; "
                "it applies only to method 'mc'"
            )
        if request.chunk_size is not None and not engine_backed:
            raise InvalidQueryError(
                "chunk_size applies only to the engine-backed methods "
                "('mc', 'bfs_sharing'); other methods do not stream "
                "world chunks"
            )
        if request.workers is not None and not has_fast_path:
            raise InvalidQueryError(
                "workers rides on a batch fast path (method 'mc', "
                "'bfs_sharing', or 'prob_tree'); "
                f"method {request.method!r} uses the per-query loop"
            )
        if request.kernels is not None:
            if request.kernels not in KERNEL_MODES:
                raise InvalidQueryError(
                    f"unknown kernel mode {request.kernels!r}; "
                    f"known: {', '.join(KERNEL_MODES)}"
                )
            if not engine_backed:
                raise InvalidQueryError(
                    "kernels selects the engine's sweep implementation; "
                    "it applies only to the engine-backed methods "
                    "('mc', 'bfs_sharing')"
                )
        if request.sequential and self.persistent:
            raise InvalidQueryError(
                "the sequential oracle bypasses the result cache by "
                "design; this service persists results — submit the "
                "shared-world sweep instead"
            )
        if request.sequential and (request.workers or 1) > 1:
            raise InvalidQueryError(
                "the sequential oracle re-materialises worlds per query "
                "in-process; workers applies only to the shared-world "
                "sweep"
            )

    def estimate_batch(self, request: BatchRequest) -> BatchResponse:
        """Answer a workload, dispatched by the method's batch path.

        ``mc``/``bfs_sharing`` run on the shared-world engine (one world
        stream for the whole workload, served through the service's
        result cache); ``prob_tree`` groups by (s, t) bag pair on its
        long-lived index; everything else loops per query.  Estimates
        are deterministic in ``(graph, method, seed, query)`` — the
        transport cannot influence a single bit.

        ``method="auto"`` resolves through the router before any
        dispatch, so validation, the batch path, and every estimate are
        those of the routed method — bit-identical to naming it.
        """
        fingerprint = graph_fingerprint(self.graph)
        request, decision = self._resolve_auto_batch(request)
        routing = None if decision is None else decision.to_dict()
        batch_path = self.batch_path_of(request.method)
        self._validate_batch(request, batch_path)
        queries = self.resolve_queries(
            request.queries, request.samples, request.max_hops
        )
        engine_backed = batch_path == "engine"
        if not engine_backed and any(
            max_hops is not None for *_, max_hops in queries
        ):
            raise InvalidQueryError(
                "hop-bounded (max_hops) queries need the shared-world "
                "engine; use method 'mc' or 'bfs_sharing'"
            )
        seed = self._resolve_seed(request.seed)
        if engine_backed:
            # The parallel fast path: a fresh per-request engine, run
            # under no lock whatsoever.  Concurrent requests share only
            # the thread-safe result cache, and the determinism contract
            # makes the interleaving invisible in every estimate.
            chunk_size = (
                self.chunk_size
                if request.chunk_size is None
                else request.chunk_size
            )
            self._record_queries(queries, seed)
            engine = self._engine(
                seed, chunk_size, request.workers, request.kernels
            )
            result = (
                engine.run_sequential(queries)
                if request.sequential
                else engine.run(queries)
            )
            mode = "sequential" if request.sequential else "shared_worlds"
            report = self._engine_report(mode, result, chunk_size)
            rows = self._rows_from_result(result)
            # The engine reports one wall clock for the whole workload;
            # split it evenly — per-query attribution inside a shared
            # world sweep is meaningless anyway.
            per_query = result.seconds / max(len(rows), 1)
            for row in rows:
                self.telemetry.record(
                    request.method,
                    fingerprint=fingerprint,
                    samples=row.samples,
                    max_hops=row.max_hops,
                    seconds=per_query,
                    estimate=row.estimate,
                )
        else:
            estimator, call_lock = self._estimator_entry(request.method)
            started = time.perf_counter()
            with call_lock:
                if batch_path == "bag_grouped":
                    estimates = estimator.estimate_batch(
                        queries,
                        seed=seed,
                        workers=request.workers,
                        cache_dir=self.cache_dir,
                    )
                    mode = "bag_grouped"
                else:
                    estimates = estimator.estimate_batch(queries, seed=seed)
                    mode = "per_query_loop"
                # Instrumentation must be read before the lock drops, or
                # a neighbouring request could overwrite it.
                inner = estimator.last_batch_result
            per_query = (time.perf_counter() - started) / max(len(queries), 1)
            for (source, target, samples, max_hops), estimate in zip(
                queries, estimates
            ):
                self.telemetry.record(
                    request.method,
                    fingerprint=fingerprint,
                    samples=samples,
                    max_hops=max_hops,
                    seconds=per_query,
                    estimate=float(estimate),
                )
            self._mark_index_rebuilt(request.method)
            report = (
                EngineReport(mode=mode)
                if inner is None
                else self._engine_report(mode, inner, None)
            )
            rows = tuple(
                QueryResult(
                    source=source,
                    target=target,
                    samples=samples,
                    max_hops=max_hops,
                    estimate=float(estimate),
                )
                for (source, target, samples, max_hops), estimate in zip(
                    queries, estimates
                )
            )
        self._count("batch")
        return BatchResponse(
            method=request.method,
            seed=seed,
            engine=report,
            results=rows,
            dataset=self.dataset_key,
            scale=self.scale,
            routing=routing,
        )

    def _engine_report(
        self, mode: str, result: BatchResult, chunk_size: Optional[int]
    ) -> EngineReport:
        return EngineReport(
            mode=mode,
            workers=result.workers,
            worlds_sampled=result.worlds_sampled,
            sweeps=result.sweeps,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            seconds=round(result.seconds, 6),
            chunk_size=chunk_size,
            cache=self._cache_report(),
            fingerprint=result.fingerprint,
        )

    @staticmethod
    def _rows_from_result(result: BatchResult) -> Tuple[QueryResult, ...]:
        cached = result.from_cache
        return tuple(
            QueryResult(
                source=query.source,
                target=query.target,
                samples=query.samples,
                max_hops=query.max_hops,
                estimate=float(estimate),
                cached=None if cached is None else bool(cached[position]),
            )
            for position, (query, estimate) in enumerate(
                zip(result.queries, result.estimates)
            )
        )

    # ------------------------------------------------------------------
    # warm
    # ------------------------------------------------------------------

    def warm(self, request: WarmRequest) -> WarmResponse:
        """Evaluate popular (s, t) pairs into the result cache.

        Method-agnostic by design: the cache key carries no estimator,
        so one warm pass serves every engine-backed method afterwards.
        ``already_warm`` vs ``newly_written`` counts unique queries —
        the speculative-precomputation report of the ROADMAP's
        cache-warming item.
        """
        self._check_positive(request.workers, "workers")
        self._check_positive(request.chunk_size, "chunk_size")
        queries = self.resolve_queries(
            request.queries, request.samples, request.max_hops
        )
        seed = self._resolve_seed(request.seed)
        # Unlocked like every engine run; the engine writes the whole
        # warmed workload through the cache's batched ``put_many`` path —
        # one sidecar transaction however many queries were warmed.
        engine = self._engine(seed, request.chunk_size, request.workers)
        result = engine.run(queries)
        self._count("warm")
        return WarmResponse(
            query_count=len(queries),
            unique_queries=result.cache_hits + result.cache_misses,
            already_warm=result.cache_hits,
            newly_written=result.cache_misses,
            worlds_sampled=result.worlds_sampled,
            seconds=round(result.seconds, 6),
            seed=seed,
            persistent=self.persistent,
            cache=self._cache_report(),
        )

    # ------------------------------------------------------------------
    # shard_run (the distributed tier's worker-side primitive)
    # ------------------------------------------------------------------

    def shard_run(self, request: ShardRunRequest) -> ShardRunResponse:
        """Evaluate a world range for a coordinator (``POST /v1/shard/run``).

        The worker half of the shard protocol (:mod:`repro.distributed`):
        sweep worlds ``[start, stop)`` of the submitted workload and
        return integer hit counts.  The request's ``seed`` — not the
        service's — roots the world stream, so every shard of a tier
        draws the exact worlds the coordinator partitioned, and the
        request's ``fingerprint`` must match the graph this service
        currently serves: a mismatch (a shard that missed a
        ``/v1/update``, or a coordinator that applied one first) is a
        structured :class:`FingerprintMismatchError` (HTTP 409), never
        silently-wrong counts.

        The result cache is deliberately not involved: partial-range hit
        counts are not estimates and have no cache identity.  Caching
        happens once, at the coordinator, after the exact merge.
        """
        graph = self.graph
        fingerprint = graph_fingerprint(graph)
        if request.fingerprint != fingerprint:
            raise FingerprintMismatchError(
                f"this shard serves graph {fingerprint} (version "
                f"{int(getattr(graph, 'version', 0))}); the request "
                f"addresses {request.fingerprint} — re-sync the tier to "
                f"one graph version and retry"
            )
        if request.start < 0 or request.stop < request.start:
            raise InvalidQueryError(
                f"a shard range needs 0 <= start <= stop, "
                f"got [{request.start}, {request.stop})"
            )
        self._check_positive(request.chunk_size, "chunk_size")
        if request.kernels is not None and request.kernels not in KERNEL_MODES:
            raise InvalidQueryError(
                f"unknown kernel mode {request.kernels!r}; "
                f"known: {', '.join(KERNEL_MODES)}"
            )
        queries = self.resolve_queries(
            request.queries, request.samples, request.max_hops
        )
        # A private single-process engine over the snapshot this request
        # was fingerprint-checked against: range evaluation never touches
        # the shared cache or pool, so nothing is shared and no lock is
        # needed.
        engine = BatchEngine(
            graph,
            seed=int(request.seed),
            chunk_size=(
                self.chunk_size
                if request.chunk_size is None
                else request.chunk_size
            ),
            workers=1,
            kernels=(
                self.kernels if request.kernels is None else request.kernels
            ),
            cache_capacity=1,
        )
        result = engine.run_range(queries, request.start, request.stop)
        self._count("shard_run")
        return ShardRunResponse(
            hits=tuple(int(count) for count in result.hits),
            start=result.start,
            stop=result.stop,
            worlds_evaluated=result.worlds_evaluated,
            sweeps=result.sweeps,
            seed=result.seed,
            fingerprint=result.fingerprint,
            seconds=round(result.seconds, 6),
            query_count=len(queries),
        )

    # ------------------------------------------------------------------
    # update (live graph mutation) / re-warm
    # ------------------------------------------------------------------

    def update(self, request: UpdateRequest) -> UpdateResponse:
        """Apply a live mutation, publishing a new graph *version*.

        The mutation layer (:mod:`repro.core.mutation`) is copy-on-write:
        the current graph is never touched, a successor with
        ``version + 1`` is built instead.  Because every engine cache
        key embeds the graph fingerprint, invalidation is *exact* by
        construction — keys minted against the predecessor stop matching
        new requests the instant the swap lands, while entries for any
        untouched version keep serving warm hits (nothing is purged).

        In-flight requests finish against whichever version they
        snapshot; the estimator map is walked under the prepare lock so
        no request can build an index against a half-swapped service.
        Each already-built estimator chooses its cheapest survival mode
        (``incremental`` re-lift, full ``rebuilt``, lazy ``dropped``, or
        a plain ``repointed``), and a worker pool forked for the old
        version is retired — the next multi-worker run respawns one
        against the successor.
        """
        started = time.perf_counter()
        with self._update_lock:
            predecessor = self.graph
            previous_fingerprint = graph_fingerprint(predecessor)
            try:
                mutation = apply_update(
                    predecessor,
                    set_edges=request.set_edges,
                    remove_edges=request.remove_edges,
                )
            except ValueError as error:
                raise InvalidQueryError(str(error)) from None
            successor = mutation.graph
            modes: Dict[str, str] = {}
            with self._prepare_lock:
                # Swap + estimator maintenance are one atomic step under
                # the prepare lock: a lazy build started after this block
                # sees the successor, one finished before it is in the
                # map below and gets migrated.
                self.graph = successor
                for method, (estimator, call_lock) in sorted(
                    self._estimators.items()
                ):
                    with call_lock:
                        modes[method] = estimator.apply_update(
                            successor,
                            touched_edges=mutation.touched_edges,
                            structural=mutation.structural,
                        )
            with self._counts_lock:
                # The router must not route to an index a lazy "dropped"
                # survival mode left unbuilt; the flag clears the moment
                # any request serves the method again (index rebuilt).
                for method, mode in modes.items():
                    if mode == "dropped":
                        self._dropped_indexes.add(method)
                    else:
                        self._dropped_indexes.discard(method)
            stale = None
            with self._pool_lock:
                stale, self._pool = self._pool, None
            pool_action = "none"
            if stale is not None:
                # Workers hold the predecessor; close() cancels their
                # queued chunks (in-flight runs fall back per-run) and
                # the next multi-worker engine run forks a fresh pool
                # pinned to the successor's fingerprint.
                stale.close()
                pool_action = "respawned"
        self._count("update")
        return UpdateResponse(
            previous_fingerprint=previous_fingerprint,
            fingerprint=graph_fingerprint(successor),
            version=successor.version,
            node_count=int(successor.node_count),
            edge_count=int(successor.edge_count),
            edges_set=mutation.edges_set,
            edges_added=mutation.edges_added,
            edges_removed=mutation.edges_removed,
            structural=mutation.structural,
            estimators=modes,
            pool=pool_action,
            seconds=round(time.perf_counter() - started, 6),
        )

    def _record_queries(
        self, queries: List[ResolvedQuery], seed: int
    ) -> None:
        """Count engine-served keys for later :meth:`rewarm` replay.

        The key is the full cache identity *minus* the fingerprint —
        ``(source, target, samples, max_hops, seed)`` — so a replay
        against a new graph version warms exactly the entries clients
        have been asking for.  Bounded by :data:`QUERY_LOG_CAPACITY`.
        """
        with self._counts_lock:
            log = self._query_log
            for source, target, samples, max_hops in queries:
                key = (source, target, samples, max_hops, seed)
                count = log.get(key)
                if count is not None:
                    log[key] = count + 1
                elif len(log) < QUERY_LOG_CAPACITY:
                    log[key] = 1

    def top_queries(
        self, limit: int = DEFAULT_REWARM_TOP
    ) -> List[Dict[str, object]]:
        """The ``limit`` hottest engine-served query keys, hottest first.

        Ties break on the key itself so the ranking is deterministic.
        """
        self._check_positive(limit, "limit")
        with self._counts_lock:
            entries = sorted(
                self._query_log.items(), key=lambda item: (-item[1], item[0])
            )[: int(limit)]
        return [
            {
                "source": source,
                "target": target,
                "samples": samples,
                "max_hops": max_hops,
                "seed": seed,
                "count": count,
            }
            for (source, target, samples, max_hops, seed), count in entries
        ]

    def rewarm(self, limit: int = DEFAULT_REWARM_TOP) -> Dict[str, int]:
        """Replay the hottest logged keys into the (current) result cache.

        The background half of the update lifecycle: after a version
        swap the successor's cache starts cold, so ``repro serve`` calls
        this from a worker thread to re-evaluate the top ``limit``
        logged keys against the new graph.  Keys are grouped by seed —
        one :meth:`warm` pass per seed group — because the seed is part
        of the cache identity a replay must reproduce exactly.
        """
        top = self.top_queries(limit)
        by_seed: Dict[int, List[QuerySpec]] = {}
        for entry in top:
            by_seed.setdefault(int(entry["seed"]), []).append(
                QuerySpec(
                    source=int(entry["source"]),
                    target=int(entry["target"]),
                    samples=int(entry["samples"]),
                    max_hops=entry["max_hops"],
                )
            )
        for seed in sorted(by_seed):
            self.warm(WarmRequest(queries=tuple(by_seed[seed]), seed=seed))
        with self._counts_lock:
            self._rewarm_runs += 1
            self._rewarm_queries += len(top)
        return {"queries_rewarmed": len(top), "warm_passes": len(by_seed)}

    # ------------------------------------------------------------------
    # topk / bounds / recommend
    # ------------------------------------------------------------------

    def topk(self, request: TopKRequest) -> TopKResponse:
        """Top-k most reliable targets from one source (paper §2.3)."""
        if request.method not in ("bfs_sharing", "mc"):
            raise UnknownEstimatorError(
                f"unknown top-k method {request.method!r}; "
                f"use 'bfs_sharing' or 'mc'"
            )
        self._check_node(request.source, "source")
        self._check_positive(request.k, "k")
        self._check_positive(request.samples, "samples")
        seed = self._resolve_seed(request.seed)
        # Builds all of its state per call (its own estimator, its own
        # RNG), so it shares nothing and needs no lock.
        ranking = top_k_reliable_targets(
            self.graph,
            request.source,
            request.k,
            samples=request.samples,
            method=request.method,
            rng=seed,
        )
        self._count("topk")
        return TopKResponse(
            source=request.source,
            k=request.k,
            samples=request.samples,
            method=request.method,
            seed=seed,
            ranking=tuple(ranking),
        )

    def bounds(self, request: BoundsRequest) -> BoundsResponse:
        """Polynomial-time lower/upper bracket for one (source, target)."""
        self._check_node(request.source, "source")
        self._check_node(request.target, "target")
        lower, upper = reliability_bounds(  # pure per-call: no lock
            self.graph, request.source, request.target
        )
        self._count("bounds")
        return BoundsResponse(
            source=request.source,
            target=request.target,
            lower=float(lower),
            upper=float(upper),
        )

    @classmethod
    def recommend_static(cls, request: RecommendRequest) -> RecommendResponse:
        """Walk the paper's Fig. 18 decision tree.

        Graph-independent, hence a classmethod: callers (the ``repro
        recommend`` command among them) get a recommendation without
        loading any dataset — and without the measured evidence the
        instance-level :meth:`recommend` layers on top.
        """
        recommendation = recommend_estimator(
            memory_limited=request.memory_limited,
            want_lowest_variance=request.lowest_variance,
            want_fastest=not request.latency_tolerant,
            max_hops=request.max_hops,
        )
        return RecommendResponse(
            path=tuple(recommendation.path),
            estimators=tuple(recommendation.estimators),
            display_names=tuple(
                display_name(key) for key in recommendation.estimators
            ),
        )

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        """Recommend an estimator for this service's live graph.

        Routes exactly as ``estimator="auto"`` would for the request's
        query shape — measured scoring when the shape's telemetry
        buckets are warm, the paper's static tree otherwise — and the
        response carries the decision, its reason, and the telemetry
        evidence behind it.  The static ranking follows the router's
        pick as backups, demoted for any index a live update dropped.
        """
        fingerprint = graph_fingerprint(self.graph)
        decision = self._route(
            fingerprint=fingerprint,
            samples=request.samples,
            max_hops=request.max_hops,
            memory_limited=request.memory_limited,
        )
        recommendation = recommend_estimator(
            memory_limited=request.memory_limited,
            want_lowest_variance=request.lowest_variance,
            want_fastest=not request.latency_tolerant,
            max_hops=request.max_hops,
            unavailable=self._dropped_snapshot(),
        )
        estimators = (decision.method,) + tuple(
            key
            for key in recommendation.estimators
            if key != decision.method
        )
        self._count("recommend")
        return RecommendResponse(
            path=tuple(recommendation.path),
            estimators=estimators,
            display_names=tuple(display_name(key) for key in estimators),
            reason=decision.reason,
            decision=decision.to_dict(),
            telemetry=self.telemetry.snapshot(fingerprint),
        )

    # ------------------------------------------------------------------
    # study (the experiment harness behind the same facade)
    # ------------------------------------------------------------------

    def study(self, config):
        """Run a convergence study (Tables 3-14 shaped) on this service.

        The runner builds its estimators through
        :meth:`create_estimator`, so studies and request serving share
        one construction path.  The config must address this service's
        dataset — a service wraps exactly one graph.
        """
        if self.dataset is None:
            raise GraphLoadError(
                "this service wraps a raw graph; studies address a suite "
                "dataset — build the service with from_dataset()"
            )
        identity = (config.dataset, config.scale, config.seed)
        expected = (self.dataset_key, self.scale, self.seed)
        if identity != expected:
            raise InvalidQueryError(
                f"study config addresses {identity}, this service serves "
                f"{expected}"
            )
        from repro.experiments.runner import run_study

        result = run_study(config, service=self)
        self._count("study")
        return result

    # ------------------------------------------------------------------
    # health / stats
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Cheap liveness payload for the ``/v1/health`` endpoint."""
        return {
            "status": "closed" if self._closed else "ok",
            "dataset": self.dataset_key,
            "scale": self.scale,
            "seed": self.seed,
            "nodes": int(self.graph.node_count),
            "edges": int(self.graph.edge_count),
        }

    def stats(self) -> Dict[str, object]:
        """Service-lifetime counters for the ``/v1/stats`` endpoint.

        Takes no *service* lock: the counter dict never resizes (its key
        set is fixed at construction) and the estimator map is
        copy-on-write, so a snapshot never waits on a running request's
        estimator or engine.  The one lock it does touch is the cache's
        internal one for the statistics read, which can briefly wait out
        an in-flight write transaction (and, on a persistent cache,
        flushes pending recency ticks) — milliseconds under load, versus
        the old behaviour of queueing behind entire engine runs.
        """
        graph = self.graph
        return {
            "dataset": self.dataset_key,
            "scale": self.scale,
            "seed": self.seed,
            "nodes": int(graph.node_count),
            "edges": int(graph.edge_count),
            "graph": {
                "fingerprint": graph_fingerprint(graph),
                "version": int(getattr(graph, "version", 0)),
            },
            "uptime_seconds": round(time.time() - self._started, 3),
            "persistent": self.persistent,
            "requests": {
                endpoint: count
                # lint: ok[D103] key set is ENDPOINTS, fixed at construction
                for endpoint, count in self._request_counts.items()
                if count
            },
            "estimators_loaded": sorted(self._estimators),
            "top_queries": self.top_queries(),
            "rewarm": {
                "runs": self._rewarm_runs,
                "queries": self._rewarm_queries,
            },
            "cache": self._cache.statistics(),
            # None until the first multi-worker engine run builds the
            # shared pool; the pool's own counters are lock-free reads.
            "pool": (
                None if self._pool is None else self._pool.statistics()
            ),
            "routing": {
                # The live graph's view: other fingerprints' buckets
                # stay in the map but are not this snapshot's evidence.
                "telemetry": self.telemetry.snapshot(
                    graph_fingerprint(graph)
                ),
                "router": self.router.statistics(),
                "dropped_indexes": list(self._dropped_snapshot()),
            },
        }


__all__ = [
    "AUTO_METHOD",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_REWARM_TOP",
    "FAST_BATCH_PATHS",
    "KERNEL_MODES",
    "QUERY_LOG_CAPACITY",
    "ReliabilityService",
]
