"""Typed request/response objects of the public API.

These dataclasses are the *wire format* of the facade: every transport —
the ``repro`` CLI, the :mod:`repro.serve` HTTP server, a future gRPC or
async layer — builds a request object, hands it to
:class:`~repro.api.service.ReliabilityService`, and serialises the
response with ``to_dict()``.  The JSON produced by ``to_dict`` is the
compatibility contract: ``repro batch`` has printed this exact shape
since the batch engine landed, and the HTTP endpoints return the same
documents, so a client cannot tell (nor needs to know) which transport
answered it.

Parsing is strict: ``from_dict`` rejects unknown keys and wrong types
with :class:`~repro.api.errors.InvalidQueryError`, so a malformed HTTP
body becomes a structured 400 instead of a deep ``TypeError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.errors import InvalidQueryError

#: A fully resolved workload entry: ``(source, target, samples, max_hops)``.
ResolvedQuery = Tuple[int, int, int, Optional[int]]


def _require_int(value: Any, name: str) -> int:
    """Coerce a JSON scalar to int, rejecting floats/strings/None."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidQueryError(
            f"{name} must be an integer, got {value!r}"
        )
    return int(value)


def _optional_int(value: Any, name: str) -> Optional[int]:
    return None if value is None else _require_int(value, name)


def _require_mapping(payload: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise InvalidQueryError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _reject_unknown_keys(
    payload: Mapping[str, Any], known: Sequence[str], what: str
) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise InvalidQueryError(
            f"{what} does not accept key(s) {', '.join(map(repr, unknown))}; "
            f"known keys: {', '.join(known)}"
        )


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuerySpec:
    """One s-t query as submitted by a client.

    ``samples``/``max_hops`` left as ``None`` inherit the request-level
    defaults when the service resolves the workload (mirroring how the
    query-file format lets entries omit their budget).
    """

    source: int
    target: int
    samples: Optional[int] = None
    max_hops: Optional[int] = None

    @classmethod
    def coerce(cls, entry: Any, position: int) -> "QuerySpec":
        """Coerce one workload entry: a [s, t(, K(, d))] list or an object.

        This is the single shared reader behind the ``--queries`` file
        format and the HTTP ``queries`` array, so both transports accept
        (and reject) exactly the same entries, with the same
        ``entry {position}`` context in errors.
        """
        context = f"entry {position}"
        if isinstance(entry, Mapping):
            _reject_unknown_keys(
                entry, ("source", "target", "samples", "max_hops"), context
            )
            if "source" not in entry or "target" not in entry:
                raise InvalidQueryError(
                    f"{context}: query objects need 'source' and 'target' "
                    f"keys, got {dict(entry)!r}"
                )
            return cls(
                source=_require_int(entry["source"], f"{context}: source"),
                target=_require_int(entry["target"], f"{context}: target"),
                samples=_optional_int(
                    entry.get("samples"), f"{context}: samples"
                ),
                max_hops=_optional_int(
                    entry.get("max_hops"), f"{context}: max_hops"
                ),
            )
        if isinstance(entry, (list, tuple)):
            parts = list(entry)
            if len(parts) not in (2, 3, 4):
                raise InvalidQueryError(
                    f"{context}: expected [source, target(, samples"
                    f"(, max_hops))] or a query object, got {entry!r}"
                )
            try:
                head = [int(part) for part in parts[:3]]
                # A trailing null mirrors the object form's
                # "max_hops": null — an explicit "no bound".
                tail = parts[3] if len(parts) == 4 else None
                max_hops = None if tail is None else int(tail)
            except (TypeError, ValueError):
                raise InvalidQueryError(
                    f"{context}: non-numeric value in {entry!r}"
                ) from None
            return cls(
                source=head[0],
                target=head[1],
                samples=head[2] if len(head) >= 3 else None,
                max_hops=max_hops,
            )
        raise InvalidQueryError(
            f"{context}: expected [source, target(, samples(, max_hops))] "
            f"or a query object, got {entry!r}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "samples": self.samples,
            "max_hops": self.max_hops,
        }


def coerce_query_specs(entries: Any, what: str = "queries") -> Tuple[QuerySpec, ...]:
    """Coerce a JSON array (or a single object) into query specs."""
    if isinstance(entries, Mapping):
        entries = [entries]  # a single unwrapped query object
    if not isinstance(entries, (list, tuple)):
        raise InvalidQueryError(
            f"{what} must be a list of [source, target(, samples"
            f"(, max_hops))] entries or query objects"
        )
    return tuple(
        QuerySpec.coerce(entry, position)
        for position, entry in enumerate(entries)
    )


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EstimateRequest:
    """One s-t reliability estimate through one named estimator."""

    source: int
    target: int
    samples: int = 1_000
    method: str = "mc"
    seed: Optional[int] = None  # None = the service's seed

    _KEYS = ("source", "target", "samples", "method", "seed")

    @classmethod
    def from_dict(cls, payload: Any) -> "EstimateRequest":
        payload = _require_mapping(payload, "an estimate request")
        _reject_unknown_keys(payload, cls._KEYS, "an estimate request")
        if "source" not in payload or "target" not in payload:
            raise InvalidQueryError(
                "an estimate request needs 'source' and 'target'"
            )
        method = payload.get("method", "mc")
        if not isinstance(method, str):
            raise InvalidQueryError(
                f"method must be a string, got {method!r}"
            )
        return cls(
            source=_require_int(payload["source"], "source"),
            target=_require_int(payload["target"], "target"),
            samples=_require_int(payload.get("samples", 1_000), "samples"),
            method=method,
            seed=_optional_int(payload.get("seed"), "seed"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "samples": self.samples,
            "method": self.method,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class BatchRequest:
    """A workload of s-t queries, answered in one engine pass.

    ``samples``/``max_hops`` are the workload-level defaults applied to
    entries that do not carry their own; ``seed=None`` inherits the
    service's seed so a request replayed against the same service is
    exactly cacheable.
    """

    queries: Tuple[QuerySpec, ...]
    method: str = "mc"
    samples: int = 1_000
    seed: Optional[int] = None
    max_hops: Optional[int] = None
    chunk_size: Optional[int] = None
    workers: Optional[int] = None
    kernels: Optional[str] = None
    sequential: bool = False

    _KEYS = (
        "queries", "method", "samples", "seed", "max_hops",
        "chunk_size", "workers", "kernels", "sequential",
    )

    @classmethod
    def from_dict(cls, payload: Any) -> "BatchRequest":
        payload = _require_mapping(payload, "a batch request")
        _reject_unknown_keys(payload, cls._KEYS, "a batch request")
        if "queries" not in payload:
            raise InvalidQueryError("a batch request needs 'queries'")
        method = payload.get("method", "mc")
        if not isinstance(method, str):
            raise InvalidQueryError(
                f"method must be a string, got {method!r}"
            )
        sequential = payload.get("sequential", False)
        if not isinstance(sequential, bool):
            raise InvalidQueryError(
                f"sequential must be a boolean, got {sequential!r}"
            )
        kernels = payload.get("kernels")
        if kernels is not None and not isinstance(kernels, str):
            raise InvalidQueryError(
                f"kernels must be a string, got {kernels!r}"
            )
        return cls(
            queries=coerce_query_specs(payload["queries"]),
            method=method,
            samples=_require_int(payload.get("samples", 1_000), "samples"),
            seed=_optional_int(payload.get("seed"), "seed"),
            max_hops=_optional_int(payload.get("max_hops"), "max_hops"),
            chunk_size=_optional_int(payload.get("chunk_size"), "chunk_size"),
            workers=_optional_int(payload.get("workers"), "workers"),
            kernels=kernels,
            sequential=sequential,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "queries": [query.to_dict() for query in self.queries],
            "method": self.method,
            "samples": self.samples,
            "seed": self.seed,
            "max_hops": self.max_hops,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "kernels": self.kernels,
            "sequential": self.sequential,
        }


@dataclass(frozen=True)
class WarmRequest:
    """Speculatively evaluate popular (s, t) pairs into the result cache.

    Warming is method-agnostic on purpose: the engine's cache key is
    ``(graph fingerprint, s, t, K, seed, max_hops)`` — no estimator in
    it — so one warm pass serves every engine-backed method afterwards.
    """

    queries: Tuple[QuerySpec, ...]
    samples: int = 1_000
    seed: Optional[int] = None
    max_hops: Optional[int] = None
    chunk_size: Optional[int] = None
    workers: Optional[int] = None

    _KEYS = (
        "queries", "samples", "seed", "max_hops", "chunk_size", "workers",
    )

    @classmethod
    def from_dict(cls, payload: Any) -> "WarmRequest":
        payload = _require_mapping(payload, "a warm request")
        _reject_unknown_keys(payload, cls._KEYS, "a warm request")
        if "queries" not in payload:
            raise InvalidQueryError("a warm request needs 'queries'")
        return cls(
            queries=coerce_query_specs(payload["queries"]),
            samples=_require_int(payload.get("samples", 1_000), "samples"),
            seed=_optional_int(payload.get("seed"), "seed"),
            max_hops=_optional_int(payload.get("max_hops"), "max_hops"),
            chunk_size=_optional_int(payload.get("chunk_size"), "chunk_size"),
            workers=_optional_int(payload.get("workers"), "workers"),
        )


@dataclass(frozen=True)
class TopKRequest:
    """Top-k most reliable targets from one source (paper §2.3 origin)."""

    source: int
    k: int = 10
    samples: int = 500
    method: str = "bfs_sharing"
    seed: Optional[int] = None

    _KEYS = ("source", "k", "samples", "method", "seed")

    @classmethod
    def from_dict(cls, payload: Any) -> "TopKRequest":
        payload = _require_mapping(payload, "a topk request")
        _reject_unknown_keys(payload, cls._KEYS, "a topk request")
        if "source" not in payload:
            raise InvalidQueryError("a topk request needs 'source'")
        method = payload.get("method", "bfs_sharing")
        if not isinstance(method, str):
            raise InvalidQueryError(
                f"method must be a string, got {method!r}"
            )
        return cls(
            source=_require_int(payload["source"], "source"),
            k=_require_int(payload.get("k", 10), "k"),
            samples=_require_int(payload.get("samples", 500), "samples"),
            method=method,
            seed=_optional_int(payload.get("seed"), "seed"),
        )


@dataclass(frozen=True)
class BoundsRequest:
    """Polynomial-time lower/upper reliability bracket for one pair."""

    source: int
    target: int

    @classmethod
    def from_dict(cls, payload: Any) -> "BoundsRequest":
        payload = _require_mapping(payload, "a bounds request")
        _reject_unknown_keys(payload, ("source", "target"), "a bounds request")
        if "source" not in payload or "target" not in payload:
            raise InvalidQueryError(
                "a bounds request needs 'source' and 'target'"
            )
        return cls(
            source=_require_int(payload["source"], "source"),
            target=_require_int(payload["target"], "target"),
        )


@dataclass(frozen=True)
class UpdateRequest:
    """A live mutation of the served graph (probabilities and topology).

    ``set_edges`` entries are ``[source, target, probability]`` exact
    assignments — setting an existing edge rewrites its probability,
    setting a new pair adds the edge.  ``remove_edges`` entries are
    ``[source, target]`` pairs that must currently exist.  At least one
    operation is required; duplicate or conflicting operations on the
    same pair are rejected so an update is order-independent.
    """

    set_edges: Tuple[Tuple[int, int, float], ...] = ()
    remove_edges: Tuple[Tuple[int, int], ...] = ()

    _KEYS = ("set_edges", "remove_edges")

    @classmethod
    def from_dict(cls, payload: Any) -> "UpdateRequest":
        payload = _require_mapping(payload, "an update request")
        _reject_unknown_keys(payload, cls._KEYS, "an update request")
        set_edges = []
        entries = payload.get("set_edges", [])
        if not isinstance(entries, (list, tuple)):
            raise InvalidQueryError(
                "set_edges must be a list of [source, target, probability] "
                f"entries, got {entries!r}"
            )
        for position, entry in enumerate(entries):
            context = f"set_edges entry {position}"
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise InvalidQueryError(
                    f"{context}: expected [source, target, probability], "
                    f"got {entry!r}"
                )
            source = _require_int(entry[0], f"{context}: source")
            target = _require_int(entry[1], f"{context}: target")
            probability = entry[2]
            if isinstance(probability, bool) or not isinstance(
                probability, (int, float)
            ):
                raise InvalidQueryError(
                    f"{context}: probability must be a number, "
                    f"got {probability!r}"
                )
            set_edges.append((source, target, float(probability)))
        remove_edges = []
        entries = payload.get("remove_edges", [])
        if not isinstance(entries, (list, tuple)):
            raise InvalidQueryError(
                "remove_edges must be a list of [source, target] entries, "
                f"got {entries!r}"
            )
        for position, entry in enumerate(entries):
            context = f"remove_edges entry {position}"
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise InvalidQueryError(
                    f"{context}: expected [source, target], got {entry!r}"
                )
            remove_edges.append(
                (
                    _require_int(entry[0], f"{context}: source"),
                    _require_int(entry[1], f"{context}: target"),
                )
            )
        if not set_edges and not remove_edges:
            raise InvalidQueryError(
                "an update request needs at least one set_edges or "
                "remove_edges entry"
            )
        return cls(
            set_edges=tuple(set_edges), remove_edges=tuple(remove_edges)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "set_edges": [list(entry) for entry in self.set_edges],
            "remove_edges": [list(entry) for entry in self.remove_edges],
        }


@dataclass(frozen=True)
class ShardRunRequest:
    """One world-range evaluation dispatched to a shard worker.

    The shard protocol's request half (``POST /v1/shard/run``): evaluate
    worlds ``[start, stop)`` of the given workload and return integer
    hit counts.  ``seed`` and ``fingerprint`` are **required** — the
    coordinator pins both so every shard draws from the same world
    stream over the same graph version; a worker serving a different
    fingerprint rejects with a structured 409
    (:class:`~repro.api.errors.FingerprintMismatchError`).

    ``chunk_size`` should match the coordinator's partitioning grain so
    chunk boundaries (and hence the merged ``sweeps`` counter) line up
    with a single-process run; hit counts are bit-identical regardless.
    """

    queries: Tuple[QuerySpec, ...]
    start: int
    stop: int
    seed: int
    fingerprint: str
    samples: int = 1_000
    max_hops: Optional[int] = None
    chunk_size: Optional[int] = None
    kernels: Optional[str] = None

    _KEYS = (
        "queries", "start", "stop", "seed", "fingerprint", "samples",
        "max_hops", "chunk_size", "kernels",
    )

    @classmethod
    def from_dict(cls, payload: Any) -> "ShardRunRequest":
        payload = _require_mapping(payload, "a shard run request")
        _reject_unknown_keys(payload, cls._KEYS, "a shard run request")
        for key in ("queries", "start", "stop", "seed", "fingerprint"):
            if key not in payload:
                raise InvalidQueryError(
                    f"a shard run request needs {key!r}"
                )
        fingerprint = payload["fingerprint"]
        if not isinstance(fingerprint, str) or not fingerprint:
            raise InvalidQueryError(
                f"fingerprint must be a non-empty string, "
                f"got {fingerprint!r}"
            )
        kernels = payload.get("kernels")
        if kernels is not None and not isinstance(kernels, str):
            raise InvalidQueryError(
                f"kernels must be a string, got {kernels!r}"
            )
        return cls(
            queries=coerce_query_specs(payload["queries"]),
            start=_require_int(payload["start"], "start"),
            stop=_require_int(payload["stop"], "stop"),
            seed=_require_int(payload["seed"], "seed"),
            fingerprint=fingerprint,
            samples=_require_int(payload.get("samples", 1_000), "samples"),
            max_hops=_optional_int(payload.get("max_hops"), "max_hops"),
            chunk_size=_optional_int(payload.get("chunk_size"), "chunk_size"),
            kernels=kernels,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "queries": [query.to_dict() for query in self.queries],
            "start": self.start,
            "stop": self.stop,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "samples": self.samples,
            "max_hops": self.max_hops,
            "chunk_size": self.chunk_size,
            "kernels": self.kernels,
        }


@dataclass(frozen=True)
class RecommendRequest:
    """Inputs to an estimator recommendation.

    The three booleans are the paper's Fig. 18 decision-tree questions.
    ``samples`` and ``max_hops`` describe the *query shape* the caller
    intends to serve: a service instance uses them to consult its
    adaptive router's telemetry bucket (and to constrain the static tree
    to hop-capable methods); the graph-free static walk uses ``max_hops``
    only.
    """

    memory_limited: bool = False
    lowest_variance: bool = False
    latency_tolerant: bool = False
    samples: int = 1_000
    max_hops: Optional[int] = None

    _BOOL_KEYS = ("memory_limited", "lowest_variance", "latency_tolerant")
    _KEYS = _BOOL_KEYS + ("samples", "max_hops")

    @classmethod
    def from_dict(cls, payload: Any) -> "RecommendRequest":
        payload = _require_mapping(payload, "a recommend request")
        _reject_unknown_keys(payload, cls._KEYS, "a recommend request")
        values: Dict[str, Any] = {}
        for key in cls._BOOL_KEYS:
            value = payload.get(key, False)
            if not isinstance(value, bool):
                raise InvalidQueryError(
                    f"{key} must be a boolean, got {value!r}"
                )
            values[key] = value
        return cls(
            samples=_require_int(payload.get("samples", 1_000), "samples"),
            max_hops=_optional_int(payload.get("max_hops"), "max_hops"),
            **values,
        )


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryResult:
    """Per-query stats of one answered workload entry.

    ``cached`` is the per-query cache provenance: ``True`` when the
    estimate was replayed from the result cache (memory or sidecar)
    without sampling, ``False`` when it was evaluated in this pass, and
    ``None`` on paths with no exact cache key (the per-query loop).
    """

    source: int
    target: int
    samples: int
    max_hops: Optional[int]
    estimate: float
    cached: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "source": self.source,
            "target": self.target,
            "samples": self.samples,
            "max_hops": self.max_hops,
            "estimate": self.estimate,
        }
        if self.cached is not None:
            row["cached"] = self.cached
        return row


@dataclass(frozen=True)
class EngineReport:
    """How a workload was served: dispatch mode plus engine counters.

    ``mode`` is always present; the counters appear when the shared-world
    engine (or an estimator fast path exposing its
    :class:`~repro.engine.batch.BatchResult`) answered the workload, and
    ``cache`` carries the result-cache statistics — including the
    ``persistent`` flag and ``disk_hits``, the cache-provenance summary —
    when the service owns a persistent sidecar.
    """

    mode: str
    workers: Optional[int] = None
    worlds_sampled: Optional[int] = None
    sweeps: Optional[int] = None
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    seconds: Optional[float] = None
    chunk_size: Optional[int] = None
    cache: Optional[Dict[str, int]] = None
    fingerprint: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        report: Dict[str, Any] = {"mode": self.mode}
        for key in (
            "workers", "worlds_sampled", "sweeps", "cache_hits",
            "cache_misses", "seconds", "chunk_size", "cache",
            "fingerprint",
        ):
            value = getattr(self, key)
            if value is not None:
                report[key] = value
        return report


@dataclass(frozen=True)
class EstimateResponse:
    """One answered estimate, with its full provenance.

    ``routing`` appears only on ``method="auto"`` requests: the router's
    decision record (picked method, reason, scores, evidence), with
    ``method`` itself reporting the *concrete* estimator that answered —
    the document a client replays against a named-method request to
    verify bit-identity.
    """

    source: int
    target: int
    samples: int
    method: str
    method_display: str
    seed: int
    estimate: float
    dataset: Optional[str] = None
    scale: Optional[str] = None
    routing: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "dataset": self.dataset,
            "scale": self.scale,
            "method": self.method,
            "method_display": self.method_display,
            "seed": self.seed,
            "source": self.source,
            "target": self.target,
            "samples": self.samples,
            "estimate": self.estimate,
        }
        if self.routing is not None:
            payload["routing"] = self.routing
        return payload


@dataclass(frozen=True)
class BatchResponse:
    """An answered workload: per-query stats plus the engine report.

    ``to_dict()`` keeps the document shape ``repro batch`` has always
    printed (dataset, scale, method, seed, query_count, engine,
    results) with one *additive* change: engine-served rows now carry a
    ``cached`` provenance flag.  Scripts that parsed the CLI keep
    working against the HTTP endpoint unchanged — existing keys mean
    exactly what they did.
    """

    method: str
    seed: int
    engine: EngineReport
    results: Tuple[QueryResult, ...]
    dataset: Optional[str] = None
    scale: Optional[str] = None
    #: The router's decision record; present only on ``method="auto"``
    #: requests (``method`` then reports the concrete routed estimator).
    routing: Optional[Dict[str, Any]] = None

    @property
    def estimates(self) -> List[float]:
        return [result.estimate for result in self.results]

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "dataset": self.dataset,
            "scale": self.scale,
            "method": self.method,
            "seed": self.seed,
            "query_count": len(self.results),
            "engine": self.engine.to_dict(),
            "results": [result.to_dict() for result in self.results],
        }
        if self.routing is not None:
            payload["routing"] = self.routing
        return payload


@dataclass(frozen=True)
class WarmResponse:
    """Outcome of one cache-warming pass.

    ``already_warm`` counts unique queries served from the cache without
    sampling; ``newly_written`` counts the ones evaluated (and written)
    by this pass.  Their sum is ``unique_queries`` — duplicates in the
    submitted workload collapse before warming.
    """

    query_count: int
    unique_queries: int
    already_warm: int
    newly_written: int
    worlds_sampled: int
    seconds: float
    seed: int
    persistent: bool
    cache: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "query_count": self.query_count,
            "unique_queries": self.unique_queries,
            "already_warm": self.already_warm,
            "newly_written": self.newly_written,
            "worlds_sampled": self.worlds_sampled,
            "seconds": self.seconds,
            "seed": self.seed,
            "persistent": self.persistent,
        }
        if self.cache is not None:
            payload["cache"] = self.cache
        return payload


@dataclass(frozen=True)
class UpdateResponse:
    """Outcome of one live graph update.

    ``previous_fingerprint`` → ``fingerprint`` is the cache-visible
    version transition: every engine cache key embeds the fingerprint,
    so keys minted against the predecessor stay valid *for that
    version* while the successor starts cold.  ``estimators`` maps each
    already-built estimator to how its index survived the update
    (``repointed`` / ``rebuilt`` / ``dropped`` / ``incremental``), and
    ``pool`` records whether a fingerprint-pinned worker pool had to be
    respawned.
    """

    previous_fingerprint: str
    fingerprint: str
    version: int
    node_count: int
    edge_count: int
    edges_set: int
    edges_added: int
    edges_removed: int
    structural: bool
    estimators: Dict[str, str]
    pool: str
    seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "previous_fingerprint": self.previous_fingerprint,
            "fingerprint": self.fingerprint,
            "version": self.version,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "edges_set": self.edges_set,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "structural": self.structural,
            "estimators": dict(self.estimators),
            "pool": self.pool,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class ShardRunResponse:
    """A shard's answer to one world-range evaluation.

    ``hits[i]`` is the integer number of worlds in ``[start, stop)``
    (clipped by the query's own budget) in which query ``i`` of the
    submitted workload succeeded.  ``fingerprint`` and ``seed`` echo the
    provenance the counts were drawn under, so a coordinator can verify
    a reply belongs to the stream it dispatched before merging it.

    Unlike the other responses this one is parsed back (by the
    coordinator's shard client), so it carries a strict ``from_dict``
    mirroring the request types: a malformed reply from a confused host
    becomes a structured dispatch failure, never a deep ``TypeError``
    inside the merge.
    """

    hits: Tuple[int, ...]
    start: int
    stop: int
    worlds_evaluated: int
    sweeps: int
    seed: int
    fingerprint: str
    seconds: float
    query_count: int

    _KEYS = (
        "hits", "start", "stop", "worlds_evaluated", "sweeps", "seed",
        "fingerprint", "seconds", "query_count",
    )

    @classmethod
    def from_dict(cls, payload: Any) -> "ShardRunResponse":
        payload = _require_mapping(payload, "a shard run response")
        _reject_unknown_keys(payload, cls._KEYS, "a shard run response")
        for key in cls._KEYS:
            if key not in payload:
                raise InvalidQueryError(
                    f"a shard run response needs {key!r}"
                )
        hits = payload["hits"]
        if not isinstance(hits, (list, tuple)):
            raise InvalidQueryError(
                f"hits must be a list of integers, got {hits!r}"
            )
        fingerprint = payload["fingerprint"]
        if not isinstance(fingerprint, str) or not fingerprint:
            raise InvalidQueryError(
                f"fingerprint must be a non-empty string, "
                f"got {fingerprint!r}"
            )
        seconds = payload["seconds"]
        if isinstance(seconds, bool) or not isinstance(
            seconds, (int, float)
        ):
            raise InvalidQueryError(
                f"seconds must be a number, got {seconds!r}"
            )
        return cls(
            hits=tuple(
                _require_int(value, f"hits[{position}]")
                for position, value in enumerate(hits)
            ),
            start=_require_int(payload["start"], "start"),
            stop=_require_int(payload["stop"], "stop"),
            worlds_evaluated=_require_int(
                payload["worlds_evaluated"], "worlds_evaluated"
            ),
            sweeps=_require_int(payload["sweeps"], "sweeps"),
            seed=_require_int(payload["seed"], "seed"),
            fingerprint=fingerprint,
            seconds=float(seconds),
            query_count=_require_int(payload["query_count"], "query_count"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": list(self.hits),
            "start": self.start,
            "stop": self.stop,
            "worlds_evaluated": self.worlds_evaluated,
            "sweeps": self.sweeps,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "seconds": self.seconds,
            "query_count": self.query_count,
        }


@dataclass(frozen=True)
class TopKResponse:
    """Ranked (node, reliability) rows for one top-k query."""

    source: int
    k: int
    samples: int
    method: str
    seed: int
    ranking: Tuple[Tuple[int, float], ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "k": self.k,
            "samples": self.samples,
            "method": self.method,
            "seed": self.seed,
            "ranking": [
                {"rank": rank, "node": node, "reliability": reliability}
                for rank, (node, reliability) in enumerate(
                    self.ranking, start=1
                )
            ],
        }


@dataclass(frozen=True)
class BoundsResponse:
    """Polynomial-time reliability bracket for one (source, target)."""

    source: int
    target: int
    lower: float
    upper: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "lower": self.lower,
            "upper": self.upper,
        }


@dataclass(frozen=True)
class RecommendResponse:
    """An estimator recommendation, static or routed.

    The original three fields are the Fig. 18 decision-tree walk and
    keep their exact shape.  A service instance additionally reports how
    its adaptive router would route the described query shape:
    ``reason`` (``measured`` / ``exploration`` / ``cold_start``),
    ``decision`` (the full routing record with scores and per-bucket
    evidence), and ``telemetry`` (the live graph's aggregated
    observations).  All three are omitted on the graph-free static walk.
    """

    path: Tuple[str, ...]
    estimators: Tuple[str, ...]
    display_names: Tuple[str, ...] = field(default=())
    reason: Optional[str] = None
    decision: Optional[Dict[str, Any]] = None
    telemetry: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "path": list(self.path),
            "estimators": list(self.estimators),
            "display_names": list(self.display_names),
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.decision is not None:
            payload["decision"] = self.decision
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload


__all__ = [
    "ResolvedQuery",
    "QuerySpec",
    "coerce_query_specs",
    "EstimateRequest",
    "BatchRequest",
    "WarmRequest",
    "TopKRequest",
    "BoundsRequest",
    "UpdateRequest",
    "ShardRunRequest",
    "RecommendRequest",
    "QueryResult",
    "EngineReport",
    "EstimateResponse",
    "BatchResponse",
    "WarmResponse",
    "UpdateResponse",
    "ShardRunResponse",
    "TopKResponse",
    "BoundsResponse",
    "RecommendResponse",
]
