"""Importance sampling "IS" with calibrated per-edge occurrence counts.

Plain MC draws each edge with its own probability ``p_e``, so rarely-present
edges on the only s-t paths make hits rare and the hit-rate estimator noisy.
This estimator samples worlds from a *proposal* distribution that tilts
load-bearing edges upward and reweights each world by its exact likelihood
ratio, which keeps the estimator unbiased for **any** proposal with
``q_e < 1`` wherever ``p_e < 1`` (the proposal dominates the target).

The tilt comes from the occurrence-count recipe of the GraphSAINT sampler
family (Zeng et al., ICLR'20 — see SNIPPETS.md): pre-generate ``N``
calibration worlds, count per-edge occurrences ``C_{u,v}`` and per-node
occurrences ``C_v`` (worlds in which any edge incident to ``v`` is present),
and read ``alpha_{u,v} = C_{u,v} / C_v`` as the normalised importance of the
edge to its head node.  Edges whose occurrence share exceeds their marginal
probability are exactly the ones whose presence correlates with connectivity,
so the proposal is ``q_e = p_e + tilt * (alpha_e - p_e)`` clamped to
``[p_e, ceiling]`` — *tilt-only-upward*, which bounds every present-edge
likelihood factor ``p_e / q_e`` by 1 and keeps weights numerically tame.

Calibration worlds come from the batch engine's deterministic world stream
(:meth:`repro.engine.batch.BatchEngine.world_masks`), so the cached counts
are pure in ``(graph, calibration seed)`` and rebuild identically after a
live update repoints the estimator.

The weighted mean ``(1/K) * sum_i w_i * I_i`` is exactly unbiased, but a
finite-K realisation can exceed 1.0 (absent-edge factors ``(1-p)/(1-q)``
are >= 1 under an upward tilt); the estimate is clipped to 1.0 on return,
trading a sliver of bias in the extreme-reliability regime for the
estimator contract's hard ``[0, 1]`` range — the oracle conformance suite
bounds the effect.
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.graph import UncertainGraph
from repro.core.possible_world import ReachabilitySampler, forced_from_mask
from repro.util.rng import SeedLike
from repro.util.validation import check_positive

#: Default number of calibration worlds N.  Enough for occurrence shares to
#: stabilise (binomial noise ~ 1/sqrt(N) ≈ 7%) while keeping the one-off
#: calibration pass well under a single serving query's budget.
DEFAULT_CALIBRATION_WORLDS = 192

#: Default tilt strength: how far q moves from p toward alpha.
DEFAULT_TILT = 0.5

#: Proposal probabilities are clamped below this (unless p itself is
#: higher), keeping absent-edge likelihood factors (1-p)/(1-q) bounded.
PROPOSAL_CEILING = 0.98

#: Worlds are drawn in blocks of this many rows, bounding resident memory
#: at O(block * edge_count) bools however large K grows.
_SAMPLE_BLOCK = 128


class ImportanceSamplingEstimator(Estimator):
    """IS: occurrence-calibrated proposal sampling with exact reweighting."""

    key = "importance"
    display_name = "IS"
    uses_index = False
    batch_path = "fallback"

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        calibration_worlds: int = DEFAULT_CALIBRATION_WORLDS,
        tilt: float = DEFAULT_TILT,
        calibration_seed: int = 0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        self.calibration_worlds = check_positive(
            calibration_worlds, "calibration_worlds"
        )
        self.tilt = float(tilt)
        if not 0.0 <= self.tilt <= 1.0:
            raise ValueError(f"tilt must be in [0, 1], got {tilt}")
        #: Root of the calibration world stream.  Fixed (not drawn from the
        #: estimator's rng) so that re-calibration after ``apply_update``
        #: reproduces exactly what a fresh construction would build.
        self.calibration_seed = int(calibration_seed)
        self._sampler = ReachabilitySampler(graph)
        self._target_buffer = np.empty(1, dtype=np.int64)
        self._proposal: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self.edge_occurrences: Optional[np.ndarray] = None
        self.node_occurrences: Optional[np.ndarray] = None

    def _rebind_graph(self, graph: UncertainGraph) -> None:
        self._sampler = ReachabilitySampler(graph)
        self._proposal = None
        self.edge_occurrences = None
        self.node_occurrences = None

    # ------------------------------------------------------------------
    # Calibration (the offline-ish phase; cheap, but cached like an index)
    # ------------------------------------------------------------------

    @property
    def prepared(self) -> bool:
        """Whether the occurrence counts and proposal are built."""
        return self._proposal is not None

    def prepare(self) -> None:
        """Run the calibration pass and derive the proposal distribution.

        Pure in ``(graph content, calibration_worlds, tilt,
        calibration_seed)`` — no state from previous calibrations or
        queries leaks in, so a post-update rebuild equals a fresh build.
        """
        graph = self.graph
        edge_count = graph.edge_count
        counts = np.zeros(edge_count, dtype=np.int64)
        node_counts = np.zeros(graph.node_count, dtype=np.int64)
        if edge_count:
            # Core may reach up into engine at call time (the MC fast-path
            # precedent); the engine world stream makes calibration worlds
            # identical to what an engine run with this seed would sweep.
            from repro.engine.batch import BatchEngine

            engine = BatchEngine(graph, seed=self.calibration_seed)
            masks = engine.world_masks(0, self.calibration_worlds)
            counts = masks.sum(axis=0, dtype=np.int64)
            sources = graph.edge_sources
            targets = graph.targets
            for row in masks:
                present = np.flatnonzero(row)
                if present.size == 0:
                    continue
                touched = np.unique(
                    np.concatenate((sources[present], targets[present]))
                )
                node_counts[touched] += 1
        self.edge_occurrences = counts
        self.node_occurrences = node_counts

        probs = graph.probs
        if edge_count:
            # alpha_{u,v} = C_{u,v} / C_v with v the edge head; a present
            # edge always touches its head, so alpha <= 1 by construction.
            heads = graph.targets
            alpha = counts / np.maximum(node_counts[heads], 1)
        else:
            alpha = np.zeros(0, dtype=np.float64)
        ceiling = np.maximum(probs, PROPOSAL_CEILING)
        proposal = np.maximum(
            probs, np.minimum(probs + self.tilt * (alpha - probs), ceiling)
        )
        # Likelihood-ratio log factors.  q >= p keeps log_present <= 0; the
        # absent factor is 0 where p == 1 (then q == 1 and absence has
        # probability zero under both distributions).
        log_present = np.log(probs) - np.log(proposal)
        with np.errstate(divide="ignore", invalid="ignore"):
            log_absent = np.log1p(-probs) - np.log1p(-proposal)
        log_absent = np.where(probs >= 1.0, 0.0, log_absent)
        self._proposal = (proposal, log_present, log_absent)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        self.ensure_prepared()
        proposal, log_present, log_absent = self._proposal
        edge_count = self.graph.edge_count
        if edge_count == 0:
            return 0.0
        # Per-world log weight = sum_present log(p/q) + sum_absent
        # log((1-p)/(1-q)); rearranged to one matmul per block plus the
        # constant all-absent baseline.
        base_absent = float(log_absent.sum())
        log_delta = log_present - log_absent
        target_buffer = self._target_buffer
        target_buffer[0] = target
        sampler = self._sampler
        total = 0.0
        edges_probed = 0
        remaining = samples
        while remaining:
            count = min(_SAMPLE_BLOCK, remaining)
            masks = rng.random((count, edge_count)) < proposal
            log_weights = masks @ log_delta + base_absent
            for row, log_weight in zip(masks, log_weights):
                hit = sampler.reach_targets(
                    source, target_buffer, rng=None, forced=forced_from_mask(row)
                )
                if hit[0]:
                    total += math.exp(log_weight)
            edges_probed += count * edge_count
            remaining -= count
        self.last_query_statistics.edges_probed = edges_probed
        # The raw weighted mean is exactly unbiased but can exceed 1.0 for
        # a finite K (see module docstring); the contract range wins.
        return min(total / samples, 1.0)

    def memory_bytes(self) -> int:
        # Graph + the three cached proposal arrays + occurrence counts +
        # the visited-epoch array; calibration mask blocks are transient.
        visited_bytes = self.graph.node_count * np.dtype(np.int64).itemsize
        cached = 0
        if self._proposal is not None:
            cached += sum(int(array.nbytes) for array in self._proposal)
        if self.edge_occurrences is not None:
            cached += int(self.edge_occurrences.nbytes)
        if self.node_occurrences is not None:
            cached += int(self.node_occurrences.nbytes)
        block_bytes = _SAMPLE_BLOCK * max(self.graph.edge_count, 1)
        return super().memory_bytes() + visited_bytes + cached + block_bytes


__all__ = [
    "ImportanceSamplingEstimator",
    "DEFAULT_CALIBRATION_WORLDS",
    "DEFAULT_TILT",
    "PROPOSAL_CEILING",
]
