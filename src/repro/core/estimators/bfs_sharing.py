"""BFS Sharing: offline possible worlds in a bit-vector index (paper §2.3).

Zhu et al. (ICDM'15) pre-sample ``L`` possible worlds *offline* and store them
compactly: one L-bit vector per edge whose k-th bit says "this edge exists in
world k" (paper Fig. 3).  An online query runs a *single* BFS over the compact
structure — equivalent to K parallel BFS traversals — ORing/ANDing K-bit
reachability vectors per node (Algorithms 2-3).

Two behaviours the paper establishes are reproduced faithfully:

* **No early termination.** Reaching the target does not stop the traversal,
  because cascading updates (Alg. 3) may still add worlds to ``I_t``.  The
  traversal always runs to the dataflow fixpoint over the visited set.
* **Corrected complexity.** The original paper claimed query time independent
  of K; Ke et al. correct this to ``O(K(m+n))`` — bits arrive at a node in
  waves, so each edge is relaxed up to ``O(K)`` times.  Our worklist
  implementation has exactly that behaviour: a node re-enters the worklist
  whenever its reachability vector gains bits, so measured query time grows
  with K (paper Tables 10/12/13/14).

Implementation note: Algorithms 2-3 interleave a BFS with per-update cascades
and "updated" marks.  We implement the equivalent *monotone dataflow
fixpoint*: ``I_v = OR over in-edges (u,v) of (I_u AND bits(u,v))`` seeded with
``I_s = 1...1``, driven by a FIFO worklist.  The fixpoint is unique and equals
per-world BFS reachability (verified against plain MC in the tests); the
paper's cascade is one particular scheduling of the same fixpoint.
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.estimators.base import Estimator, run_engine_batch
from repro.core.graph import UncertainGraph
from repro.util import bitset
from repro.util.rng import SeedLike, ensure_generator
from repro.util.validation import check_positive

DEFAULT_CAPACITY = 1500  # the paper's "safe bound" L on pre-sampled worlds


def shared_reachability_fixpoint(
    graph: UncertainGraph,
    edge_bits: np.ndarray,
    source: int,
    bit_count: int,
    max_hops: Optional[int] = None,
) -> tuple:
    """The shared-BFS dataflow fixpoint (Algs. 2-3) over given edge bits.

    Seeds ``I_source`` with the first ``bit_count`` worlds and propagates
    ``I_v = OR over in-edges (u, v) of (I_u AND bits(u, v))`` via a FIFO
    worklist to the unique monotone fixpoint.  Returns
    ``(node_bits, edges_probed)`` where ``node_bits[v]``'s bit ``k`` says
    "``v`` is reachable from ``source`` in world ``k``".

    With ``max_hops`` the propagation runs *level-synchronously* for at
    most ``max_hops`` rounds, so bit ``k`` of ``node_bits[v]`` says
    "``v`` is within ``max_hops`` edges of ``source`` in world ``k``" —
    the distance-constrained indicator of §2.9, evaluated for all worlds
    of the chunk at once.  Each round propagates from a snapshot of the
    frontier's vectors, so a bit advances exactly one edge per round
    (per-world BFS levels, bitwise in parallel).

    Factored out of :class:`BFSSharingEstimator` so the batch engine
    (:mod:`repro.engine.batch`) can run the same kernel over *chunks* of
    its deterministic world stream — one fixpoint answers up to 64 worlds
    per word for every target of a source at once.
    """
    words = edge_bits.shape[1]
    if bitset.packed_words(bit_count) != words:
        raise ValueError(
            f"bit_count {bit_count} needs {bitset.packed_words(bit_count)} "
            f"words, edge bits carry {words}"
        )
    node_bits = np.zeros((graph.node_count, words), dtype=np.uint64)
    node_bits[source] = bitset.full_row(bit_count)
    indptr, targets = graph.indptr, graph.targets
    edges_probed = 0

    if max_hops is not None:
        frontier = np.asarray([source], dtype=np.int64)
        for _ in range(max_hops):
            if frontier.size == 0:
                break
            # Snapshot the frontier's vectors: bits must travel exactly one
            # edge per round, even when a frontier node's row grows while
            # the round is still being applied.
            frontier_bits = node_bits[frontier].copy()
            in_next = np.zeros(graph.node_count, dtype=bool)
            for position, node in enumerate(frontier):
                start, stop = indptr[node], indptr[node + 1]
                if start == stop:
                    continue
                edges_probed += stop - start
                contribution = (
                    edge_bits[start:stop] & frontier_bits[position][None, :]
                )
                neighbors = targets[start:stop]
                updated = node_bits[neighbors] | contribution
                changed = (updated != node_bits[neighbors]).any(axis=1)
                if not changed.any():
                    continue
                node_bits[neighbors[changed]] = updated[changed]
                in_next[neighbors[changed]] = True
            frontier = np.nonzero(in_next)[0]
        return node_bits, int(edges_probed)

    in_worklist = np.zeros(graph.node_count, dtype=bool)
    in_worklist[source] = True
    worklist = deque([source])
    while worklist:
        node = worklist.popleft()
        in_worklist[node] = False
        start, stop = indptr[node], indptr[node + 1]
        if start == stop:
            continue
        edges_probed += stop - start
        # Worlds in which each out-edge carries node's reachability onward.
        contribution = edge_bits[start:stop] & node_bits[node][None, :]
        neighbors = targets[start:stop]
        updated = node_bits[neighbors] | contribution
        changed = (updated != node_bits[neighbors]).any(axis=1)
        if not changed.any():
            continue
        changed_nodes = neighbors[changed]
        node_bits[changed_nodes] = updated[changed]
        for neighbor in changed_nodes:
            if not in_worklist[neighbor]:
                in_worklist[neighbor] = True
                worklist.append(int(neighbor))
    return node_bits, int(edges_probed)


class BFSSharingIndex:
    """The offline part: ``capacity`` pre-sampled worlds as edge bit-vectors.

    Index size is ``O(K m)`` bits — linear in the sample budget, unlike
    ProbTree (paper §3.7, Fig. 13b).
    """

    def __init__(
        self,
        graph: UncertainGraph,
        capacity: int = DEFAULT_CAPACITY,
        rng: SeedLike = None,
    ) -> None:
        self.graph = graph
        self.capacity = check_positive(capacity, "capacity")
        self.edge_bits = bitset.sample_bit_matrix(
            graph.probs, self.capacity, ensure_generator(rng)
        )

    def refresh(self, rng: SeedLike = None) -> None:
        """Re-sample all worlds.

        The paper's Table 15 measures exactly this: the index must be
        re-sampled between successive queries to keep their answers
        statistically independent.
        """
        self.edge_bits = bitset.sample_bit_matrix(
            self.graph.probs, self.capacity, ensure_generator(rng)
        )

    def size_bytes(self) -> int:
        """Resident size of the edge bit-vectors (paper Fig. 13b)."""
        return int(self.edge_bits.nbytes)

    def save(self, path: Union[str, Path]) -> None:
        """Persist the sampled worlds (enables the Fig. 13c load benchmark)."""
        np.savez_compressed(
            Path(path), capacity=np.int64(self.capacity), edge_bits=self.edge_bits
        )

    @classmethod
    def load(cls, path: Union[str, Path], graph: UncertainGraph) -> "BFSSharingIndex":
        """Load an index previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            index = cls.__new__(cls)
            index.graph = graph
            index.capacity = int(data["capacity"])
            index.edge_bits = np.ascontiguousarray(data["edge_bits"])
        if index.edge_bits.shape[0] != graph.edge_count:
            raise ValueError(
                f"index has {index.edge_bits.shape[0]} edges, graph has "
                f"{graph.edge_count}; wrong graph for this index"
            )
        return index


class BFSSharingEstimator(Estimator):
    """Online s-t reliability over a :class:`BFSSharingIndex` (Algs. 2-3)."""

    key = "bfs_sharing"
    display_name = "BFSSharing"
    uses_index = True
    batch_path = "engine"

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        capacity: int = DEFAULT_CAPACITY,
        refresh_per_query: bool = False,
        seed: SeedLike = None,
    ) -> None:
        """
        Parameters
        ----------
        capacity:
            Number of offline worlds L (paper default 1500).  A query may use
            any ``samples <= capacity``; asking for more grows the index.
        refresh_per_query:
            Re-sample the index before every query, making successive query
            answers independent (the cost the paper isolates in Table 15).
            The experiment runner passes per-repeat RNGs and enables this.
        """
        super().__init__(graph, seed=seed)
        self.capacity = check_positive(capacity, "capacity")
        self.refresh_per_query = refresh_per_query
        self._index: Optional[BFSSharingIndex] = None
        self._node_bits: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    @property
    def index(self) -> BFSSharingIndex:
        """The offline index, built on first access."""
        if self._index is None:
            self.prepare()
        assert self._index is not None
        return self._index

    @property
    def prepared(self) -> bool:
        return self._index is not None

    def prepare(self) -> None:
        """Build the offline index (O(K m) sampling, paper Fig. 13a)."""
        self._index = BFSSharingIndex(self.graph, self.capacity, self._rng)

    def attach_index(self, index: BFSSharingIndex) -> None:
        """Use an externally built/loaded index (e.g. from disk)."""
        if index.graph is not self.graph:
            raise ValueError("index was built for a different graph instance")
        self._index = index
        self.capacity = index.capacity

    def apply_update(self, graph, *, touched_edges=(), structural=False):
        """Drop the offline index and let it rebuild lazily.

        The batch fast path never consults the monolithic index — it
        streams the engine's world chunks, and the successor graph's new
        fingerprint already re-keys that stream — so the only stale state
        is the pre-sampled :class:`BFSSharingIndex` (its edge bit rows
        are positional in the old CSR).  Rebuilding it eagerly would pay
        the full ``O(Km)`` re-sampling (the paper's Table 15 cost) even
        for graphs only ever served through the engine; dropping it
        defers that cost to the first per-query access, which rebuilds
        via :meth:`prepare` exactly as cold construction would.
        """
        had_index = self._index is not None
        self.graph = graph
        self._batch_engine = None
        self.last_batch_result = None
        self._index = None
        self._node_bits = None
        return "dropped" if had_index else "repointed"

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def reachability_bits(
        self,
        source: int,
        samples: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Shared BFS from ``source``: per-node K-bit reachability vectors.

        Runs Algorithms 2-3 to their fixpoint and returns the full
        ``(n, words)`` matrix ``I`` — bit k of row v set iff ``v`` is
        reachable from ``source`` in pre-sampled world k.  This is the
        primitive behind the s-t query *and* the top-k / reliable-set
        queries BFS Sharing was originally designed for (paper §2.3).
        """
        if self._index is None or samples > self.capacity:
            self.capacity = max(self.capacity, samples)
            self.prepare()
        index = self._index
        assert index is not None
        if self.refresh_per_query and rng is not None:
            index.refresh(rng)

        words = bitset.packed_words(samples)
        # Node reachability vectors I_v; allocated per query like the paper
        # (the O(Kn) online-only memory its corrected analysis points out).
        node_bits, edges_probed = shared_reachability_fixpoint(
            self.graph, index.edge_bits[:, :words], source, samples
        )
        self._node_bits = node_bits
        self.last_query_statistics.edges_probed = edges_probed
        return node_bits

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        self._batch_engine = None  # last query was per-query, not batched
        node_bits = self.reachability_bits(source, samples, rng)
        return bitset.popcount(node_bits[target]) / samples

    def estimate_batch(
        self,
        queries: Iterable[Sequence[int]],
        *,
        seed: Optional[int] = None,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
        kernels: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ) -> np.ndarray:
        """Shared-world fast path: the packed index built from engine chunks.

        A BFS-Sharing index *is* a transposed batch-engine world chunk:
        bit ``k`` of edge row ``e`` says "``e`` exists in world ``k``" in
        both.  So instead of pre-sampling a private monolithic index
        (``O(Km)`` resident memory) and walking it once per query, the
        batch path streams the engine's deterministic world chunks, packs
        each chunk into this module's edge bit-matrix layout
        (``bitset.pack_bool_matrix``), and runs this module's
        :func:`shared_reachability_fixpoint` **once per distinct source
        per chunk** — one pack resolving every (target, world) pair of
        that source's queries at once, with per-query budgets applied as
        prefix masks.  That is Algorithms 2-3 at workload granularity:
        one online traversal now answers all of a source's queries, not
        just all of one query's worlds, and resident memory stays
        ``O(chunk_size * m)`` bits however large K grows.

        Because the worlds come from the engine's index-keyed stream, the
        estimates are **bit-identical** to ``mc``'s engine path and to the
        engine's sequential oracle at equal seed — and exactly cacheable,
        so ``cache_dir`` warm-starts repeat workloads across processes.
        Unlike the per-query path, hop-bounded queries (§2.9) are served
        too (the fixpoint's level-synchronous mode), and ``workers`` fans
        chunks out over processes without changing a bit.

        The private offline index (:class:`BFSSharingIndex`) is neither
        consulted nor built, and ``refresh_per_query`` is deliberately
        **not consulted** here: like ``mc``'s batch path, the batch is
        *defined* over one shared world stream (each estimate's marginal
        distribution is unchanged; only cross-query correlation differs),
        so Table 15's per-query refresh has nothing to refresh.  Callers
        that need refreshed-index independence per query should use the
        per-query :meth:`~Estimator.estimate` loop, which honours the
        flag.
        """
        return run_engine_batch(
            self, queries, seed=seed, chunk_size=chunk_size,
            workers=workers, kernels=kernels, cache_dir=cache_dir,
        )

    def memory_bytes(self) -> int:
        if self._batch_engine is not None:
            # The last query ran through the engine: its chunk working
            # set — not the (unbuilt) monolithic index — was resident.
            return self._batch_engine.memory_bytes()
        total = super().memory_bytes()
        if self._index is not None:
            total += self._index.size_bytes()
        if self._node_bits is not None:
            total += int(self._node_bits.nbytes)
        return total


__all__ = [
    "BFSSharingIndex",
    "BFSSharingEstimator",
    "DEFAULT_CAPACITY",
    "shared_reachability_fixpoint",
]
