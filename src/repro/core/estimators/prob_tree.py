"""ProbTree: FWD (fixed-width tree decomposition) index (paper §2.7, §3.8).

Maniu et al. (TODS'17) decompose the uncertain graph into a tree of *bags*
and pre-compute, per bag, the reliability between the bag's boundary nodes.
An s-t query then assembles a much smaller *equivalent* graph from the index
(root bag + the lifted chains containing ``s`` and ``t``) and runs any
sampling estimator on it.  We implement the FWD variant with width ``w = 2``,
which the paper selects because (a) building/query cost is linear and (b) the
index is *lossless* for ``w <= 2`` — the query graph's reliability equals the
original graph's, exactly.

**Index construction (Alg. 7)** repeatedly eliminates a node ``v`` of
undirected degree ``<= w``.  A new bag absorbs ``v``, its neighbors, and all
not-yet-absorbed directed edges among them; eliminating ``v`` with boundary
``{a, b}`` inserts *derived* edges ``a -> b`` / ``b -> a`` whose probability
OR-combines the absorbed direct edge with the two-hop path through ``v``
(``p(a->v) p(v->b)``).  This is the paper's "our adaptation in complexity":
for ``w = 2`` the at-most-two parallel derivations aggregate as
``1 - (1 - p1)(1 - p2)`` in O(w^2), with no distance distributions.  It is
lossless because the two derivations are edge-disjoint, hence independent,
and the absorbed edges appear nowhere else.  Remaining nodes and edges form
the root.  Each bag's parent is the bag (or root) that later absorbs its
derived edges — equivalently, the first later bag containing its boundary
(Alg. 7 lines 18-25).

**Query (Alg. 8)** lifts the bag covering ``s`` (and ``t``) into its parent,
replacing the parent's derived edges *sourced from that bag* with the bag's
raw content, and repeats up to the root; the assembled root graph is handed
to the coupled estimator.  Coupling defaults to MC, as in the original
paper, but accepts any estimator factory — reproducing §3.8 (ProbTree+LP+/
RHH/RSS) and extending it to every registered estimator.
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.estimators.base import (
    Estimator,
    QueryStatistics,
    coerce_batch_queries,
)
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.graph import UncertainGraph, or_combine
from repro.util.rng import SeedLike

DEFAULT_WIDTH = 2  # the paper's lossless setting

#: Default bound on cached lifted query graphs.  Lift keys are (bag,
#: bag) pairs, which real workloads reuse heavily (hot sources/targets
#: share covering bags); a few dozen assembled graphs cover them while
#: keeping the resident overhead far below the index itself.
DEFAULT_LIFT_CACHE_CAPACITY = 32

#: Namespace key for the batch path's per-bag-pair inner seeds, so they
#: cannot collide with the engine's world stream (0x57) or the base
#: fallback's per-query substreams (0x42) under one root seed.
_BAG_STREAM = 0x50

ROOT_BAG = -1  # sentinel parent id for bags hanging off the root

#: One directed probabilistic edge held by a bag or the root:
#: ``(source_node, target_node, probability, origin_bag_id)`` where
#: ``origin_bag_id`` is ``None`` for original edges and the creating bag's id
#: for derived edges (needed to "delete the reliability resulting from B"
#: during a lift, Alg. 8 line 7).
BagEdge = Tuple[int, int, float, Optional[int]]

EstimatorFactory = Callable[[UncertainGraph], Estimator]

#: One lift-cache value: ``(assembled query graph, node renumbering)``.
LiftedEntry = Tuple[UncertainGraph, Dict[int, int]]


@dataclass
class Bag:
    """One bag of the FWD decomposition."""

    bag_id: int
    covered: int  # the eliminated node
    nodes: Tuple[int, ...]  # covered + boundary
    boundary: Tuple[int, ...]  # <= width nodes shared with the parent
    edges: List[BagEdge] = field(default_factory=list)
    parent: int = ROOT_BAG  # bag id, or ROOT_BAG

    def edge_count(self) -> int:
        return len(self.edges)


class FWDProbTreeIndex:
    """The offline FWD index: bags, parent links, and the root graph."""

    def __init__(self, graph: UncertainGraph, width: int = DEFAULT_WIDTH) -> None:
        if width < 1 or width > 2:
            raise ValueError(
                f"width must be 1 or 2 (lossless range per the paper), got {width}"
            )
        self.graph = graph
        self.width = width
        self.bags: List[Bag] = []
        self.bag_of_covered: Dict[int, int] = {}
        self.root_nodes: Set[int] = set()
        self.root_edges: List[BagEdge] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction (Alg. 7)
    # ------------------------------------------------------------------

    def _build(self) -> None:
        graph = self.graph
        # Undirected skeleton and the directed probabilistic edge pool.
        skeleton: Dict[int, Set[int]] = {v: set() for v in range(graph.node_count)}
        pool: Dict[Tuple[int, int], Tuple[float, Optional[int]]] = {}
        for u, v, p in graph.iter_edges():
            skeleton[u].add(v)
            skeleton[v].add(u)
            pool[(u, v)] = (p, None)

        alive = np.ones(graph.node_count, dtype=bool)
        # Lazy min-degree candidate queue: nodes enter whenever their degree
        # drops to <= width; stale entries are re-checked on pop.
        candidates = [
            v for v in range(graph.node_count) if 1 <= len(skeleton[v]) <= self.width
        ]
        head = 0
        while head < len(candidates):
            v = candidates[head]
            head += 1
            if not alive[v]:
                continue
            degree = len(skeleton[v])
            if degree == 0 or degree > self.width:
                continue
            self._eliminate(v, skeleton, pool, alive, candidates)

        self.root_nodes = {v for v in range(graph.node_count) if alive[v]}
        self.root_edges = [
            (u, w, p, origin) for (u, w), (p, origin) in sorted(pool.items())
        ]
        self._assign_parents()

    def _eliminate(
        self,
        v: int,
        skeleton: Dict[int, Set[int]],
        pool: Dict[Tuple[int, int], Tuple[float, Optional[int]]],
        alive: np.ndarray,
        candidates: List[int],
    ) -> None:
        """Create the bag covering ``v`` and splice derived edges in."""
        neighbors = sorted(skeleton[v])
        bag_id = len(self.bags)
        bag_nodes = tuple([v] + neighbors)

        # Absorb every pool edge among the bag's nodes (Alg. 7 lines 7-9).
        bag_edges: List[BagEdge] = []
        for a in bag_nodes:
            for b in bag_nodes:
                if a == b:
                    continue
                entry = pool.pop((a, b), None)
                if entry is not None:
                    bag_edges.append((a, b, entry[0], entry[1]))

        bag = Bag(
            bag_id=bag_id,
            covered=v,
            nodes=bag_nodes,
            boundary=tuple(neighbors),
            edges=bag_edges,
        )
        self.bags.append(bag)
        self.bag_of_covered[v] = bag_id

        # Derived edges between the (at most two) boundary nodes.
        if len(neighbors) == 2:
            absorbed = {(a, b): p for a, b, p, _ in bag_edges}
            a, b = neighbors
            for x, y in ((a, b), (b, a)):
                through = 0.0
                if (x, v) in absorbed and (v, y) in absorbed:
                    through = absorbed[(x, v)] * absorbed[(v, y)]
                direct = absorbed.get((x, y), 0.0)
                combined = or_combine(direct, through) if direct else through
                if combined > 0.0:
                    # Fresh insert: any previous (x, y) edge was absorbed above.
                    pool[(x, y)] = (combined, bag_id)

        # Update the skeleton: remove v, clique its neighbors (Alg. 7 line 11).
        for u in neighbors:
            skeleton[u].discard(v)
        if len(neighbors) == 2:
            a, b = neighbors
            skeleton[a].add(b)
            skeleton[b].add(a)
        del skeleton[v]
        alive[v] = False
        for u in neighbors:
            if 1 <= len(skeleton[u]) <= self.width:
                candidates.append(u)

    def _assign_parents(self) -> None:
        """Parent = the bag that absorbed this bag's derived edges.

        Derived edges record their origin, so scanning every bag's (and the
        root's) edge list identifies each origin's absorber directly; bags
        whose derived edges were never re-absorbed, or that created none
        (boundary size < 2), fall back to the first later bag containing
        their boundary, then to the root — Alg. 7 lines 18-25.
        """
        parent: Dict[int, int] = {}
        for bag in self.bags:
            for _, _, _, origin in bag.edges:
                if origin is not None and origin not in parent:
                    parent[origin] = bag.bag_id
        for _, _, _, origin in self.root_edges:
            if origin is not None and origin not in parent:
                parent[origin] = ROOT_BAG

        # Fallback for bags without derived edges: first later bag whose
        # node set contains the boundary.
        containing: Dict[int, List[int]] = {}
        for bag in self.bags:
            for node in bag.nodes:
                containing.setdefault(node, []).append(bag.bag_id)
        for bag in self.bags:
            if bag.bag_id in parent:
                continue
            choice = ROOT_BAG
            if bag.boundary:
                candidate_lists = [
                    [c for c in containing.get(node, []) if c > bag.bag_id]
                    for node in bag.boundary
                ]
                common = set(candidate_lists[0])
                for lst in candidate_lists[1:]:
                    common &= set(lst)
                if common:
                    choice = min(common)
            parent[bag.bag_id] = choice
        for bag in self.bags:
            bag.parent = parent[bag.bag_id]

    # ------------------------------------------------------------------
    # Query-graph assembly (Alg. 8)
    # ------------------------------------------------------------------

    def _chain_from_bag(self, bag_id: int) -> List[int]:
        """Bag ids from ``bag_id`` up to the root (root exclusive)."""
        chain: List[int] = []
        while bag_id != ROOT_BAG:
            chain.append(bag_id)
            bag_id = self.bags[bag_id].parent
        return chain

    def _lift_chain(self, node: int) -> List[int]:
        """Bag ids from the bag covering ``node`` up to the root (exclusive)."""
        return self._chain_from_bag(self.bag_of_covered.get(node, ROOT_BAG))

    def lift_key(self, source: int, target: int) -> Tuple[int, int]:
        """The (covering bag of ``source``, covering bag of ``target``) pair.

        The assembled query graph depends on ``(source, target)`` *only*
        through this pair: the lift set is the union of the two bags'
        parent chains, and every node is a member of its covering bag (or
        of the root), so two queries sharing a lift key share one
        equivalent graph — the reuse the batch fast path exploits.
        ``ROOT_BAG`` stands for "not covered by any bag".
        """
        return (
            self.bag_of_covered.get(source, ROOT_BAG),
            self.bag_of_covered.get(target, ROOT_BAG),
        )

    def lifted_graph(
        self, key: Tuple[int, int]
    ) -> Tuple[UncertainGraph, Dict[int, int]]:
        """Assemble the equivalent graph for a :meth:`lift_key` pair.

        Returns ``(graph, node_map)`` where ``node_map`` sends original
        node ids (of every lifted bag plus the root) to query-graph ids.
        This is Alg. 8 keyed by bag pair instead of node pair: batched
        queries sharing a key call this **once** and reuse the graph.
        """
        bag_s, bag_t = key
        lift_set = set(self._chain_from_bag(bag_s)) | set(
            self._chain_from_bag(bag_t)
        )
        effective: Dict[int, List[BagEdge]] = {}

        def edges_of(container: int) -> List[BagEdge]:
            if container in effective:
                return effective[container]
            if container == ROOT_BAG:
                return list(self.root_edges)
            return list(self.bags[container].edges)

        # Children are always created before parents, so ascending bag id is
        # bottom-up lift order (Alg. 8's height loop).
        for bag_id in sorted(lift_set):
            bag = self.bags[bag_id]
            lifted = edges_of(bag_id)
            parent_edges = [
                e for e in edges_of(bag.parent) if e[3] != bag_id
            ]
            parent_edges.extend(lifted)
            effective[bag.parent] = parent_edges
            effective[bag_id] = []

        final_edges = effective.get(ROOT_BAG, self.root_edges)
        query_nodes: Set[int] = set(self.root_nodes)
        for bag_id in lift_set:
            query_nodes.update(self.bags[bag_id].nodes)

        node_map = {node: i for i, node in enumerate(sorted(query_nodes))}
        triples = [
            (node_map[u], node_map[w], p) for u, w, p, _ in final_edges
        ]
        graph = UncertainGraph(len(node_map), triples)
        return graph, node_map

    def query_graph(
        self, source: int, target: int
    ) -> Tuple[UncertainGraph, int, int, Dict[int, int]]:
        """Assemble the equivalent query graph for ``(source, target)``.

        Returns ``(graph, mapped_source, mapped_target, node_map)`` where
        ``node_map`` sends original node ids to query-graph ids.  Every
        node is either covered by a bag (and that bag is on the lift
        chain) or alive in the root, so ``source`` and ``target`` are
        always present in the assembled graph.
        """
        graph, node_map = self.lifted_graph(self.lift_key(source, target))
        return graph, node_map[source], node_map[target], node_map

    # ------------------------------------------------------------------
    # Incremental maintenance (probability-only updates)
    # ------------------------------------------------------------------

    def update_probabilities(
        self, changes: Dict[Tuple[int, int], float]
    ) -> int:
        """Re-lift only the bags affected by edge-probability changes.

        ``changes`` maps existing ``(source, target)`` edges to their new
        probabilities; the edge *set* must be unchanged (structural
        updates rebuild instead — the elimination order is a function of
        the degree skeleton alone, which is why probability-only updates
        can keep every bag, boundary, and parent link).

        Each original directed edge is absorbed by exactly one container
        (a bag or the root), and each bag's derived boundary edges are a
        pure function of that bag's absorbed edges — so the update walks
        containers bottom-up (ascending bag id, children strictly before
        parents, root last), rewrites touched original edges, recomputes
        the derived edges of every dirtied bag with the exact
        :meth:`_eliminate` formula, and splices the new values into the
        parent, dirtying it in turn.  The result is **bit-identical** to
        a fresh build over the updated graph (pinned by the update
        conformance suite); bags nowhere on a touched edge's lift chain
        are never visited.

        Returns the number of bags re-lifted (the Table 15 maintenance
        unit the live-update benchmark reports).
        """
        pending = {
            (int(u), int(v)): float(p) for (u, v), p in changes.items()
        }
        #: Recomputed derived-edge values per dirty origin bag,
        #: keyed ``(x, y)``.
        derived_new: Dict[int, Dict[Tuple[int, int], float]] = {}
        relifted = 0

        def refresh(edges: List[BagEdge]) -> bool:
            changed = False
            for position, (u, v, p, origin) in enumerate(edges):
                if origin is None:
                    new_p = pending.get((u, v))
                else:
                    new_p = derived_new.get(origin, {}).get((u, v))
                if new_p is not None and new_p != p:
                    edges[position] = (u, v, new_p, origin)
                    changed = True
            return changed

        for bag in self.bags:  # ascending id == bottom-up
            if not refresh(bag.edges):
                continue
            relifted += 1
            if len(bag.boundary) == 2:
                # The exact derivation of _eliminate over the updated
                # absorbed edges: OR of the direct edge and the two-hop
                # path through the covered node.
                absorbed = {(a, b): p for a, b, p, _ in bag.edges}
                a, b = bag.boundary
                values: Dict[Tuple[int, int], float] = {}
                for x, y in ((a, b), (b, a)):
                    through = 0.0
                    if (x, bag.covered) in absorbed and (
                        bag.covered,
                        y,
                    ) in absorbed:
                        through = (
                            absorbed[(x, bag.covered)]
                            * absorbed[(bag.covered, y)]
                        )
                    direct = absorbed.get((x, y), 0.0)
                    combined = (
                        or_combine(direct, through) if direct else through
                    )
                    if combined > 0.0:
                        values[(x, y)] = combined
                derived_new[bag.bag_id] = values
        refresh(self.root_edges)
        return relifted

    # ------------------------------------------------------------------
    # Accounting / persistence
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Approximate resident index size (paper Fig. 13b).

        Counts each bag edge as (two ints, a float, an origin ref) plus
        per-bag bookkeeping — the quantities the paper's ProbTree stores.
        """
        edge_bytes = 40
        total = 0
        for bag in self.bags:
            total += 96 + len(bag.nodes) * 8 + bag.edge_count() * edge_bytes
        total += len(self.root_edges) * edge_bytes + len(self.root_nodes) * 8
        return total

    def statistics(self) -> Dict[str, float]:
        """Structural summary used by the benchmarks and examples."""
        # Parents always have larger ids, so one descending pass computes
        # every depth iteratively (chains can be thousands of bags long).
        depths: Dict[int, int] = {ROOT_BAG: 0}
        for bag in reversed(self.bags):
            depths[bag.bag_id] = 1 + depths[bag.parent]
        height = max(
            (depths[bag.bag_id] for bag in self.bags), default=0
        )
        return {
            "bags": len(self.bags),
            "height": height,
            "root_nodes": len(self.root_nodes),
            "root_edges": len(self.root_edges),
            "covered_fraction": len(self.bags) / max(1, self.graph.node_count),
        }

    def save(self, path: Union[str, Path]) -> None:
        """Persist the index (enables the Fig. 13c load benchmark)."""
        payload = {
            "width": self.width,
            "bags": [
                (b.bag_id, b.covered, b.nodes, b.boundary, b.edges, b.parent)
                for b in self.bags
            ],
            "root_nodes": self.root_nodes,
            "root_edges": self.root_edges,
        }
        with open(Path(path), "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: Union[str, Path], graph: UncertainGraph) -> "FWDProbTreeIndex":
        with open(Path(path), "rb") as handle:
            payload = pickle.load(handle)
        index = cls.__new__(cls)
        index.graph = graph
        index.width = payload["width"]
        index.bags = [
            Bag(bag_id, covered, nodes, boundary, edges, parent)
            for bag_id, covered, nodes, boundary, edges, parent in payload["bags"]
        ]
        index.bag_of_covered = {bag.covered: bag.bag_id for bag in index.bags}
        index.root_nodes = payload["root_nodes"]
        index.root_edges = payload["root_edges"]
        return index


def _group_seed(seed: int, key: Tuple[int, int]) -> int:
    """Derive one bag-pair group's inner batch seed from the root seed.

    Stable in ``(seed, key)`` and independent across keys, so duplicate
    queries agree whatever workload they arrive in.  ``ROOT_BAG`` (-1) is
    shifted up because ``SeedSequence`` entropy must be non-negative.
    """
    sequence = np.random.SeedSequence(
        (int(seed), _BAG_STREAM, int(key[0]) + 1, int(key[1]) + 1)
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


class ProbTreeEstimator(Estimator):
    """s-t reliability through the FWD ProbTree index (Alg. 8).

    ``estimator_factory`` chooses the sampler run on the assembled query
    graph: MC by default (as in the original paper), or LP+/RHH/RSS/... for
    the coupling experiment (paper Table 16).
    """

    key = "prob_tree"
    display_name = "ProbTree"
    uses_index = True
    batch_path = "bag_grouped"

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        width: int = DEFAULT_WIDTH,
        estimator_factory: Optional[EstimatorFactory] = None,
        lift_cache_capacity: int = DEFAULT_LIFT_CACHE_CAPACITY,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        self.width = width
        self.estimator_factory = estimator_factory or MonteCarloEstimator
        self._index: Optional[FWDProbTreeIndex] = None
        self._last_query_graph: Optional[UncertainGraph] = None
        if lift_cache_capacity < 0:
            raise ValueError(
                f"lift_cache_capacity must be >= 0 (0 disables the "
                f"cache), got {lift_cache_capacity}"
            )
        self.lift_cache_capacity = lift_cache_capacity
        #: Bounded LRU of assembled lifted graphs keyed by
        #: :meth:`FWDProbTreeIndex.lift_key` — the assembled graph is a
        #: pure function of the (immutable) index and the key, so reuse
        #: is exact.  Shared by the per-query and batch paths; cleared
        #: whenever the index is (re)built.
        self._lift_cache: "OrderedDict[Tuple[int, int], LiftedEntry]" = (
            OrderedDict()
        )
        self.lift_cache_hits = 0
        self.lift_cache_misses = 0

    @property
    def index(self) -> FWDProbTreeIndex:
        if self._index is None:
            self.prepare()
        assert self._index is not None
        return self._index

    @property
    def prepared(self) -> bool:
        return self._index is not None

    def prepare(self) -> None:
        """Build the FWD index (linear-time offline phase, Fig. 13a)."""
        self._index = FWDProbTreeIndex(self.graph, self.width)
        self._lift_cache.clear()

    def attach_index(self, index: FWDProbTreeIndex) -> None:
        """Use an externally built/loaded index."""
        if index.graph is not self.graph:
            raise ValueError("index was built for a different graph instance")
        self._index = index
        self.width = index.width
        self._lift_cache.clear()

    def apply_update(self, graph, *, touched_edges=(), structural=False):
        """Maintain the FWD index incrementally where the update allows.

        Probability-only updates keep the decomposition (bags,
        boundaries, parents are functions of the degree skeleton alone)
        and re-lift just the bags holding touched edges via
        :meth:`FWDProbTreeIndex.update_probabilities` — bit-identical to
        a fresh build, at touched-chain cost instead of whole-graph
        cost.  Structural updates (edge add/remove) can change the
        elimination order itself, so they rebuild.  The lift cache is
        cleared either way: assembled query graphs embed the old
        probabilities.
        """
        had_index = self._index is not None
        self.graph = graph
        self._batch_engine = None
        self.last_batch_result = None
        self._last_query_graph = None
        self._lift_cache.clear()
        if not had_index:
            return "repointed"
        if structural:
            self.prepare()
            return "rebuilt"
        changes = {
            (u, v): graph.edge_probability(u, v)
            for u, v in touched_edges
        }
        assert self._index is not None
        self._index.update_probabilities(changes)
        self._index.graph = graph
        return "incremental"

    def lifted_graph(
        self, key: Tuple[int, int]
    ) -> Tuple[UncertainGraph, Dict[int, int]]:
        """The assembled query graph for a lift key, LRU-cached.

        Both query paths go through here: the per-query Alg. 8 walk and
        the bag-grouped batch path previously re-assembled the bag-pair
        graph on every call; now a hot (s, t) bag pair lifts **once**
        per index lifetime (up to eviction).  Reuse is exact — the
        assembly is deterministic in ``(index, key)`` — and it compounds
        with the persistent result cache, because a reused graph keeps
        its memoised fingerprint, so downstream cache keys need no
        re-hashing either.
        """
        cached = self._lift_cache.get(key)
        if cached is not None:
            self._lift_cache.move_to_end(key)
            self.lift_cache_hits += 1
            return cached
        self.lift_cache_misses += 1
        assembled = self.index.lifted_graph(key)
        if self.lift_cache_capacity > 0:
            self._lift_cache[key] = assembled
            while len(self._lift_cache) > self.lift_cache_capacity:
                self._lift_cache.popitem(last=False)
        return assembled

    def estimate_batch(
        self,
        queries: Iterable[Sequence[int]],
        *,
        seed: Optional[int] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> np.ndarray:
        """Bag-grouped fast path: one lifted query graph per (s, t) bag pair.

        The per-query path re-runs Alg. 8 for every query, but the
        assembled equivalent graph depends on ``(s, t)`` only through the
        pair of covering bags (:meth:`FWDProbTreeIndex.lift_key`).  The
        batch path therefore groups the workload by that key, lifts each
        group's query graph **once**, and submits the whole group to the
        coupled estimator as one inner ``estimate_batch`` — so with the
        default MC coupling, a group's queries additionally share one
        engine world stream over the lifted graph (and, via
        ``cache_dir``, a persistent result cache keyed by the lifted
        graph's own fingerprint).

        Determinism: each group's inner seed is derived from ``(seed,
        bag pair)``, and inner batches deduplicate, so results depend on
        neither workload order nor duplication — like the base fallback,
        but not bit-identical to it (grouping changes which substream
        answers which query; both are unbiased over the same lossless
        lifted graphs, so agreement is statistical, within the
        conformance suite's CI tolerance).

        Hop-bounded queries are rejected: a derived bag edge collapses a
        multi-edge detour into one hop, so the lifted graph does not
        preserve §2.9 hop counts.
        """
        workload = coerce_batch_queries(
            queries,
            estimator_name=type(self).__name__,
            allow_hops=False,
            hops_reason=(
                "its derived bag edges collapse multi-hop detours into "
                "single edges, so the lifted query graph does not "
                "preserve §2.9 hop counts — use the 'mc' or "
                "'bfs_sharing' estimator for d-hop workloads"
            ),
        )
        if seed is None:
            seed = int(self._rng.integers(2**63))
        self.last_batch_result = None
        self.last_query_statistics = QueryStatistics(
            samples_requested=sum(entry[2] for entry in workload)
        )
        index = self.index
        groups: Dict[Tuple[int, int], List[int]] = {}
        for position, (source, target, _, _) in enumerate(workload):
            key = index.lift_key(source, target)
            groups.setdefault(key, []).append(position)

        results = np.empty(len(workload), dtype=np.float64)
        for key in sorted(groups):  # deterministic group order
            members = groups[key]
            lifted, node_map = self.lifted_graph(key)
            self._last_query_graph = lifted
            inner = self.estimator_factory(lifted)
            inner_queries = [
                (
                    node_map[workload[position][0]],
                    node_map[workload[position][1]],
                    workload[position][2],
                )
                for position in members
            ]
            estimates = inner.estimate_batch(
                inner_queries,
                seed=_group_seed(seed, key),
                workers=workers,
                cache_dir=cache_dir,
            )
            results[np.asarray(members, dtype=np.int64)] = estimates
        return results

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        # Through the estimator-level LRU, not index.query_graph: two
        # queries sharing a (bag, bag) lift key share one assembly.
        query_graph, node_map = self.lifted_graph(
            self.index.lift_key(source, target)
        )
        mapped_source, mapped_target = node_map[source], node_map[target]
        self._last_query_graph = query_graph
        inner = self.estimator_factory(query_graph)
        estimate = inner.estimate(mapped_source, mapped_target, samples, rng=rng)
        outer = self.last_query_statistics
        inner_stats = inner.last_query_statistics
        outer.edges_probed += inner_stats.edges_probed
        outer.nodes_expanded += inner_stats.nodes_expanded
        outer.recursion_depth = max(
            outer.recursion_depth, inner_stats.recursion_depth
        )
        outer.fallback_calls += inner_stats.fallback_calls
        return estimate

    def memory_bytes(self) -> int:
        total = super().memory_bytes()
        if self._index is not None:
            total += self._index.size_bytes()
        for graph, _ in self._lift_cache.values():
            total += graph.memory_bytes()
        if (
            self._last_query_graph is not None
            and not any(
                graph is self._last_query_graph
                for graph, _ in self._lift_cache.values()
            )
        ):
            total += self._last_query_graph.memory_bytes()
        return total

    def lift_cache_statistics(self) -> Dict[str, int]:
        """Counters for reports: size, capacity, hits, misses."""
        return {
            "size": len(self._lift_cache),
            "capacity": self.lift_cache_capacity,
            "hits": self.lift_cache_hits,
            "misses": self.lift_cache_misses,
        }


__all__ = [
    "Bag",
    "BagEdge",
    "FWDProbTreeIndex",
    "ProbTreeEstimator",
    "DEFAULT_LIFT_CACHE_CAPACITY",
    "DEFAULT_WIDTH",
    "ROOT_BAG",
]
