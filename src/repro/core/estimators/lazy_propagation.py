"""Lazy propagation sampling, LP and the corrected LP+ (paper §2.6, Alg. 6).

Li et al. (SIGMOD'17) avoid re-probing low-probability edges in every sampled
world.  Each visited node ``v`` keeps a counter ``c_v`` of how many worlds
have *expanded* ``v``; every out-edge is scheduled to next exist at a future
expansion number, the gap drawn from a geometric distribution with the edge's
probability.  By memorylessness this is statistically identical to a fresh
Bernoulli draw per expansion, while touching each edge ``~1/p(e)`` times less
often.

**The correction (LP vs LP+).**  After an edge fires at expansion ``c_v``,
the original paper reschedules it at ``X' + c_v`` (Alg. 6 line 24).  Ke et
al. show this is wrong: a fresh skip count ``X'`` counts failures *starting
from the next expansion*, so the correct key is ``X' + c_v + 1``.  The
original key makes edges fire one expansion early — and refire immediately
when ``X' = 0`` — which nets out as systematic *over*-estimation (paper
Fig. 5, Example 1).  Both variants are implemented (``corrected=False``
gives LP).

**Engines.**  Two implementations with identical scheduling semantics:

* ``engine="heap"`` — the paper's literal data structure: a per-node min-heap
  of ``(next_expansion, neighbor)`` entries, popped while due.  Faithful, but
  per-pop Python cost dominates on dense graphs.
* ``engine="array"`` (default) — a per-edge ``next_fire`` array; a whole BFS
  level's due-edges are found, fired, and rescheduled with a handful of
  vectorised NumPy operations.  Same geometric schedule, orders of magnitude
  faster in Python.  (In the C++ substrate of the paper the heap's
  probe-skipping is the whole speedup; in a NumPy substrate, scanning a
  frontier's edge block is a single vector op, so LP+'s advantage over MC is
  structurally smaller here — see EXPERIMENTS.md.)

Heap-engine details that keep the schedule exact: on early termination,
still-due entries are drained and rescheduled before the counter advances
(otherwise their keys fall behind ``c_v`` and silently stop firing); in
buggy-LP mode a probability-1 edge would refire in the same expansion forever
(``X'`` always 0), so a per-expansion pop cap breaks the loop — the original
authors' datasets had no probability-1 edges, so the published algorithm
never hit this.
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.graph import UncertainGraph
from repro.util.bitset import concatenate_ranges
from repro.util.rng import SeedLike

# Heap entries: (fire_at_expansion, neighbor, edge_id).
_HeapEntry = Tuple[int, int, int]

_LP_POP_CAP_FACTOR = 64  # safety net for the buggy-LP probability-1 loop

ENGINES = ("array", "heap")


class LazyPropagationEstimator(Estimator):
    """LP+ (default) or the original, faulty LP (``corrected=False``)."""

    key = "lp_plus"
    display_name = "LP+"
    uses_index = False

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        corrected: bool = True,
        engine: str = "array",
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.corrected = corrected
        self.engine = engine
        if not corrected:
            self.key = "lp"
            self.display_name = "LP"
        self._visited_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._epoch = 0
        # Inverse-CDF geometric sampling: skip = floor(ln U / ln(1 - p)).
        # Probability-1 edges get -inf, making every skip 0.
        with np.errstate(divide="ignore"):
            self._log_survival = np.log1p(-graph.probs)
        # Heap-engine state (per query).
        self._heaps: Dict[int, List[_HeapEntry]] = {}
        self._counters: Dict[int, int] = {}
        self._uniform_buffer = np.empty(0)
        self._uniform_position = 0
        # Array-engine state (per query).
        self._next_fire = np.zeros(0, dtype=np.int64)
        self._node_counters = np.zeros(0, dtype=np.int64)

    def _rebind_graph(self, graph: UncertainGraph) -> None:
        self._visited_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._epoch = 0
        with np.errstate(divide="ignore"):
            self._log_survival = np.log1p(-graph.probs)
        self._heaps = {}
        self._counters = {}
        self._uniform_buffer = np.empty(0)
        self._uniform_position = 0
        self._next_fire = np.zeros(0, dtype=np.int64)
        self._node_counters = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Shared dispatch
    # ------------------------------------------------------------------

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        if self.engine == "array":
            return self._estimate_array(source, target, samples, rng)
        return self._estimate_heap(source, target, samples, rng)

    # ------------------------------------------------------------------
    # Array engine: level-batched geometric schedules
    # ------------------------------------------------------------------

    def _geometric_skips(
        self, rng: np.random.Generator, edge_ids: np.ndarray
    ) -> np.ndarray:
        """Vectorised skips (Geometric(p) - 1) for the given edges."""
        uniforms = rng.random(edge_ids.size)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.log(uniforms) / self._log_survival[edge_ids]
        # p == 1 edges: log_survival is -inf, ratio is -0.0 -> skip 0.
        return np.nan_to_num(ratio, posinf=0.0, neginf=0.0).astype(np.int64)

    def _estimate_array(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        graph = self.graph
        indptr, targets = graph.indptr, graph.targets
        # Fresh schedule per query: first existence of each edge at the
        # source node's expansion #X, X ~ Geometric(p) - 1 (lazy init done
        # eagerly — identical distribution, one vector op).
        self._next_fire = self._geometric_skips(
            rng, np.arange(graph.edge_count, dtype=np.int64)
        )
        self._node_counters = np.zeros(graph.node_count, dtype=np.int64)
        next_fire, counters = self._next_fire, self._node_counters
        visited = self._visited_epoch
        fire_offset = 1 if self.corrected else 0

        hits = 0
        probes = 0
        for _ in range(samples):
            self._epoch += 1
            epoch = self._epoch
            visited[source] = epoch
            frontier = np.array([source], dtype=np.int64)
            while frontier.size:
                edge_ids = concatenate_ranges(
                    indptr[frontier], indptr[frontier + 1]
                )
                counters[frontier] += 1
                if edge_ids.size == 0:
                    break
                degrees = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
                owner_counter = np.repeat(counters[frontier] - 1, degrees)
                due = next_fire[edge_ids] <= owner_counter
                fired = edge_ids[due]
                probes += int(fired.size)
                if fired.size == 0:
                    break
                next_fire[fired] = (
                    owner_counter[due]
                    + fire_offset
                    + self._geometric_skips(rng, fired)
                )
                candidates = targets[fired]
                fresh = candidates[visited[candidates] != epoch]
                if fresh.size == 0:
                    break
                fresh = np.unique(fresh)
                visited[fresh] = epoch
                if visited[target] == epoch:
                    hits += 1
                    break
                frontier = fresh
        self.last_query_statistics.edges_probed = probes
        return hits / samples

    # ------------------------------------------------------------------
    # Heap engine: the paper's literal Algorithm 6
    # ------------------------------------------------------------------

    def _next_uniform(self, rng: np.random.Generator) -> float:
        """One U(0,1) draw from a refillable block buffer."""
        if self._uniform_position >= self._uniform_buffer.shape[0]:
            self._uniform_buffer = rng.random(4096)
            self._uniform_position = 0
        value = self._uniform_buffer[self._uniform_position]
        self._uniform_position += 1
        return float(value)

    def _skip(self, rng: np.random.Generator, edge_id: int) -> int:
        """One skip count (Geometric(p) - 1) for a single edge."""
        log_survival = self._log_survival[edge_id]
        if log_survival == -np.inf or log_survival == 0.0:
            return 0  # probability-1 edge always exists
        uniform = self._next_uniform(rng)
        if uniform <= 0.0:
            return 0
        return int(np.log(uniform) / log_survival)

    def _initialize_node(
        self, node: int, rng: np.random.Generator
    ) -> List[_HeapEntry]:
        """Alg. 6 lines 12-18: first visit schedules every out-neighbor."""
        start, stop = self.graph.indptr[node], self.graph.indptr[node + 1]
        probs = self.graph.probs[start:stop]
        neighbors = self.graph.targets[start:stop]
        if probs.size:
            skips = rng.geometric(np.minimum(probs, 1.0)).astype(np.int64) - 1
        else:
            skips = np.zeros(0, dtype=np.int64)
        heap = [
            (int(skips[i]), int(neighbors[i]), int(start + i))
            for i in range(probs.size)
        ]
        heapq.heapify(heap)
        self._heaps[node] = heap
        self._counters[node] = 0
        return heap

    def _expand(
        self,
        node: int,
        target: int,
        frontier: List[int],
        rng: np.random.Generator,
    ) -> bool:
        """Expand ``node`` in the current world; True iff target was reached.

        Fires every out-edge scheduled for the node's current expansion
        counter, rescheduling each with a fresh geometric skip (Alg. 6
        lines 19-29), then advances the counter (line 30).
        """
        heap = self._heaps.get(node)
        if heap is None:
            heap = self._initialize_node(node, rng)
        counter = self._counters[node]
        epoch = self._epoch
        visited = self._visited_epoch
        reached_target = False
        pops = 0
        pop_cap = _LP_POP_CAP_FACTOR * max(1, len(heap))
        reschedule_base = counter + 1 if self.corrected else counter
        while heap and heap[0][0] <= counter and pops < pop_cap:
            pops += 1
            _, neighbor, edge_id = heapq.heappop(heap)
            skip = self._skip(rng, edge_id)
            heapq.heappush(heap, (reschedule_base + skip, neighbor, edge_id))
            if visited[neighbor] != epoch:
                visited[neighbor] = epoch
                frontier.append(neighbor)
                if neighbor == target:
                    reached_target = True
                    # Keep draining due entries so their keys do not fall
                    # behind the counter (see module docstring).
                    continue
        self._counters[node] = counter + 1
        self.last_query_statistics.edges_probed += pops
        return reached_target

    def _estimate_heap(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        # Fresh lazy state per query: schedules and buffered draws must not
        # leak across queries (each query is an independent batch of K
        # worlds, possibly under a different RNG stream).
        self._heaps = {}
        self._counters = {}
        self._uniform_buffer = np.empty(0)
        self._uniform_position = 0
        hits = 0
        for _ in range(samples):
            self._epoch += 1
            self._visited_epoch[source] = self._epoch
            frontier = [source]
            position = 0
            while position < len(frontier):
                node = frontier[position]
                position += 1
                if self._expand(node, target, frontier, rng):
                    hits += 1
                    break
        return hits / samples

    def memory_bytes(self) -> int:
        # Graph + per-node counters and per-edge geometric schedules (paper
        # §2.8: "a global counter for each node and a geometric random
        # instance heap for its neighbors").
        total = super().memory_bytes() + int(self._visited_epoch.nbytes)
        total += int(self._log_survival.nbytes)
        if self.engine == "array":
            total += int(self._next_fire.nbytes) + int(self._node_counters.nbytes)
        else:
            entry_bytes = 88  # tuple of three small ints, CPython estimate
            total += sum(
                64 + entry_bytes * len(heap) for heap in self._heaps.values()
            )
            total += 64 * len(self._counters)
        return total


class LazyPropagationOriginal(LazyPropagationEstimator):
    """The uncorrected LP of Li et al. — kept for the Fig. 5 experiment."""

    key = "lp"
    display_name = "LP"

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        engine: str = "array",
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, corrected=False, engine=engine, seed=seed)


__all__ = ["LazyPropagationEstimator", "LazyPropagationOriginal", "ENGINES"]
