"""Basic Monte Carlo sampling with BFS early termination (paper §2.2, Alg. 1).

The estimator draws ``K`` possible worlds lazily: an edge is sampled only
when the BFS frontier reaches its source node, and each world's BFS stops as
soon as the target is visited.  The estimate is the hit rate (Eq. 3); its
variance is Binomial, ``R(1-R)/K`` (Eq. 4).
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.estimators.base import Estimator, run_engine_batch
from repro.core.graph import UncertainGraph
from repro.core.possible_world import ReachabilitySampler
from repro.util.rng import SeedLike


class MonteCarloEstimator(Estimator):
    """Hit-and-miss MC sampling (Fishman '86), the baseline of the study."""

    key = "mc"
    display_name = "MC"
    uses_index = False
    batch_path = "engine"

    def __init__(self, graph: UncertainGraph, *, seed: SeedLike = None) -> None:
        super().__init__(graph, seed=seed)
        self._sampler = ReachabilitySampler(graph)

    def _rebind_graph(self, graph: UncertainGraph) -> None:
        self._sampler = ReachabilitySampler(graph)

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        self._batch_engine = None  # last query was per-query, not batched
        return self._sampler.estimate(source, target, samples, rng)

    def estimate_batch(
        self,
        queries: Iterable[Sequence[int]],
        *,
        seed: Optional[int] = None,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
        kernels: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ) -> np.ndarray:
        """Shared-world fast path via the batch engine (paper §2.2/§3.7).

        Every possible world is sampled once and swept for all pending
        queries, instead of the base class's K-samples-per-query loop.
        MC's estimate is a pure hit rate over worlds, so evaluating many
        queries against one world stream keeps each estimate's marginal
        distribution identical to a per-query run over that stream.  With
        ``seed=None`` the world-stream root is drawn from the estimator's
        own generator, matching the base class's fallback to the
        constructor seed (reproducible iff the estimator was seeded).

        Unlike the base fallback, this path also serves hop-bounded
        ``(source, target, samples, max_hops)`` queries (§2.9), accepts
        ``workers`` for multiprocess chunk evaluation and ``kernels``
        for the vectorized sweep implementation, and warm-starts from
        the persistent result cache under ``cache_dir`` — none of which
        can change an estimate (the engine's determinism contract).
        """
        return run_engine_batch(
            self, queries, seed=seed, chunk_size=chunk_size,
            workers=workers, kernels=kernels, cache_dir=cache_dir,
        )

    def memory_bytes(self) -> int:
        # Graph + the reusable visited-epoch array + the frontier queue;
        # MC keeps nothing else alive between samples (paper §2.8).  When
        # the last query ran through the batch engine, its chunk working
        # set is what was actually resident — report that instead.
        visited_bytes = self.graph.node_count * np.dtype(np.int64).itemsize
        if self._batch_engine is not None:
            return self._batch_engine.memory_bytes() + visited_bytes
        return super().memory_bytes() + visited_bytes


__all__ = ["MonteCarloEstimator"]
