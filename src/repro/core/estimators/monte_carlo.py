"""Basic Monte Carlo sampling with BFS early termination (paper §2.2, Alg. 1).

The estimator draws ``K`` possible worlds lazily: an edge is sampled only
when the BFS frontier reaches its source node, and each world's BFS stops as
soon as the target is visited.  The estimate is the hit rate (Eq. 3); its
variance is Binomial, ``R(1-R)/K`` (Eq. 4).
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.graph import UncertainGraph
from repro.core.possible_world import ReachabilitySampler
from repro.util.rng import SeedLike


class MonteCarloEstimator(Estimator):
    """Hit-and-miss MC sampling (Fishman '86), the baseline of the study."""

    key = "mc"
    display_name = "MC"
    uses_index = False

    def __init__(self, graph: UncertainGraph, *, seed: SeedLike = None) -> None:
        super().__init__(graph, seed=seed)
        self._sampler = ReachabilitySampler(graph)

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        return self._sampler.estimate(source, target, samples, rng)

    def memory_bytes(self) -> int:
        # Graph + the reusable visited-epoch array + the frontier queue;
        # MC keeps nothing else alive between samples (paper §2.8).
        visited_bytes = self.graph.node_count * np.dtype(np.int64).itemsize
        return super().memory_bytes() + visited_bytes


__all__ = ["MonteCarloEstimator"]
