"""Recursive sampling "RHH" (paper §2.4, Algorithm 4; Jin et al., PVLDB'11).

Divide and conquer over *prefix groups* ``G(E1, E2)``: the possible worlds
containing every edge in ``E1`` and no edge in ``E2``.  At each step the
method picks the next *expandable* edge ``e`` (an out-edge of a node already
reached from ``s`` through ``E1``) in DFS order, and splits the sample budget
between the include/exclude branches **deterministically and proportionally**
to ``P(e)`` — removing the Bernoulli uncertainty of that edge from the
estimator and provably reducing variance below plain MC (Theorem 2 of Jin et
al.).  Branches terminate when:

* the included edge reaches ``t`` — ``E1`` contains an s-t path, reliability 1;
* no expandable edge remains — ``E2`` contains an s-t cut, reliability 0;
* the budget falls to ``threshold`` — fall back to non-recursive MC sampling
  conditioned on ``(E1, E2)`` (Alg. 4 lines 1-2; paper default threshold 5).

Two pruning rules mirror the paper's motivation bullets: edges into
already-reached nodes are never sampled (they cannot change reachability
given ``E1``), and the shared DFS prefix lets all worlds in a group share the
reachability work done so far.

Allocation detail: Alg. 4 writes ``K1 = floor(K * P(e))`` with weights
``P(e)``/``1 - P(e)``, leaving the ``K1 = 0`` case (small ``P(e) * K``)
undefined — the pseudocode would recurse with zero samples.  We resolve it
the way the paper's Hansen-Hurwitz reference suggests: *stochastically
rounded* allocation ``K1 = floor(P(e) K + U)``, ``U ~ Uniform(0,1)``, with
weights ``K1/K`` and ``K2/K``.  ``E[K1]/K = P(e)`` keeps the estimator
unbiased for any edge probability, a zero-sample branch simply drops out
(weight 0), and whenever ``P(e) K >= 1`` the split is the paper's
deterministic one up to the fractional sample.
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.graph import UncertainGraph
from repro.core.possible_world import (
    EDGE_ABSENT,
    EDGE_FREE,
    EDGE_PRESENT,
    ReachabilitySampler,
)
from repro.util.recursion import recursion_limit
from repro.util.rng import SeedLike
from repro.util.validation import check_positive

DEFAULT_THRESHOLD = 5  # paper §3.1.3: recursion-stop sample size


ALLOCATIONS = ("proportional", "binomial")


class RecursiveSamplingEstimator(Estimator):
    """RHH: recursive sampling with proportional budget allocation.

    ``allocation="binomial"`` gives the *unreduced* recursive estimator —
    each sample picks its branch by an independent coin flip, i.e.
    ``K1 ~ Binomial(K, P(e))`` — which is Zhu et al.'s Dynamic MC sampling
    (BMC, DASFAA'11), the "very similar algorithm" the paper mentions in
    §2.4.  It shares MC's variance; the default proportional split is the
    variance-reduced RHH (Theorem 2 of Jin et al.).
    """

    key = "rhh"
    display_name = "RHH"
    uses_index = False

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        threshold: int = DEFAULT_THRESHOLD,
        allocation: str = "proportional",
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        self.threshold = check_positive(threshold, "threshold")
        if allocation not in ALLOCATIONS:
            raise ValueError(
                f"allocation must be one of {ALLOCATIONS}, got {allocation!r}"
            )
        self.allocation = allocation
        self._sampler = ReachabilitySampler(graph)
        # Mutable recursion state, reset per query.  ``_forced`` holds the
        # (E1, E2) conditioning; ``_reached`` the nodes connected to s via E1;
        # ``_stack`` the DFS cursor that orders expandable edges.
        self._forced = np.zeros(graph.edge_count, dtype=np.int8)
        self._reached = np.zeros(graph.node_count, dtype=bool)
        self._stack: List[List[int]] = []
        self._dirty_edges: List[int] = []
        self._max_depth_seen = 0
        self._source = 0

    def _rebind_graph(self, graph: UncertainGraph) -> None:
        self._sampler = ReachabilitySampler(graph)
        self._forced = np.zeros(graph.edge_count, dtype=np.int8)
        self._reached = np.zeros(graph.node_count, dtype=bool)
        self._stack = []
        self._dirty_edges = []

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------

    def _recurse(
        self,
        target: int,
        samples: int,
        depth: int,
        rng: np.random.Generator,
    ) -> float:
        """Estimate reliability of the current prefix group with ``samples``.

        The exclude branch is unrolled into a loop (it only advances the DFS
        cursor), so Python recursion depth tracks the *include* chain — the
        DFS path depth, bounded by the longest simple path explored.
        """
        graph = self.graph
        indptr, targets, probs = graph.indptr, graph.targets, graph.probs
        forced, reached, stack = self._forced, self._reached, self._stack
        self._max_depth_seen = max(self._max_depth_seen, depth)

        result = 0.0
        weight = 1.0  # probability weight accumulated along the exclude chain
        trail: List[Tuple[str, object]] = []
        while True:
            # --- Find the next expandable edge in DFS order. ---------------
            edge_id = -1
            while stack:
                node, offset = stack[-1]
                if offset >= indptr[node + 1]:
                    trail.append(("pop", stack.pop()))
                    continue
                neighbor = int(targets[offset])
                if reached[neighbor]:
                    # Irrelevant edge: cannot change reachability given E1.
                    stack[-1][1] += 1
                    trail.append(("advance", stack[-1]))
                    continue
                edge_id = offset
                break
            if edge_id < 0:
                break  # E2 contains an s-t cut: this chain contributes 0.

            if samples <= self.threshold:
                # Non-recursive fallback conditioned on (E1, E2).
                self.last_query_statistics.fallback_calls += 1
                source = self._source
                result += weight * self._sampler.estimate(
                    source, target, samples, rng, forced
                )
                break

            frame = stack[-1]
            neighbor = int(targets[edge_id])
            probability = float(probs[edge_id])
            if self.allocation == "proportional":
                # Stochastically rounded proportional split (RHH).
                include_samples = int(probability * samples + rng.random())
            else:
                # Per-sample coin flips (Dynamic MC / BMC).
                include_samples = int(rng.binomial(samples, probability))
            exclude_samples = samples - include_samples

            if include_samples > 0:
                include_weight = include_samples / samples
                if neighbor == target:
                    include_value = 1.0  # E1 now contains an s-t path
                else:
                    forced[edge_id] = EDGE_PRESENT
                    self._dirty_edges.append(edge_id)
                    reached[neighbor] = True
                    frame[1] += 1
                    stack.append([neighbor, int(indptr[neighbor])])
                    include_value = self._recurse(
                        target, include_samples, depth + 1, rng
                    )
                    stack.pop()
                    frame[1] -= 1
                    reached[neighbor] = False
                    forced[edge_id] = EDGE_FREE
                result += weight * include_weight * include_value

            if exclude_samples <= 0:
                break
            # Exclude branch: continue this chain with the reduced budget.
            weight *= exclude_samples / samples
            samples = exclude_samples
            forced[edge_id] = EDGE_ABSENT
            self._dirty_edges.append(edge_id)
            trail.append(("exclude", edge_id))
            frame[1] += 1
            trail.append(("advance", frame))

        # --- Backtrack every state change made by this invocation. --------
        for kind, payload in reversed(trail):
            if kind == "pop":
                stack.append(payload)  # type: ignore[arg-type]
            elif kind == "advance":
                payload[1] -= 1  # type: ignore[index]
            else:  # "exclude"
                forced[payload] = EDGE_FREE  # type: ignore[index]
        return result

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        graph = self.graph
        for edge_id in self._dirty_edges:
            self._forced[edge_id] = EDGE_FREE
        self._dirty_edges = []
        self._reached.fill(False)
        self._reached[source] = True
        self._stack = [[source, int(graph.indptr[source])]]
        self._source = source
        self._max_depth_seen = 0

        # Include chains can be as deep as the DFS path; give CPython head
        # room instead of crashing mid-query on chain-shaped graphs.
        with recursion_limit(graph.node_count + 2000):
            estimate = self._recurse(target, samples, 0, rng)
        self.last_query_statistics.recursion_depth = self._max_depth_seen
        return estimate

    def memory_bytes(self) -> int:
        # Graph + conditioning array + reached set + DFS/recursion stack —
        # the "whole recursive stack and simplified graph instances" cost the
        # paper highlights for recursive estimators (§2.8, §3.6).
        frame_bytes = 120  # per-frame CPython estimate (list of two ints)
        stack_bytes = frame_bytes * max(len(self._stack), 1)
        recursion_bytes = 400 * max(self._max_depth_seen, 1)
        state_bytes = int(self._forced.nbytes) + int(self._reached.nbytes)
        visited_bytes = self.graph.node_count * np.dtype(np.int64).itemsize
        return (
            super().memory_bytes()
            + state_bytes
            + stack_bytes
            + recursion_bytes
            + visited_bytes
        )


class DynamicMCEstimator(RecursiveSamplingEstimator):
    """Dynamic MC sampling (BMC; Zhu et al., DASFAA'11) — paper §2.4.

    The divide-and-conquer structure of RHH with *sampled* branch
    allocation: statistically equivalent to plain MC (same variance) while
    still sharing reachability work across worlds with a common prefix.
    Registered as ``dynamic_mc``; not part of the paper's six compared
    methods, but included since the paper credits it as RHH's twin.
    """

    key = "dynamic_mc"
    display_name = "DynamicMC"

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        threshold: int = DEFAULT_THRESHOLD,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            graph, threshold=threshold, allocation="binomial", seed=seed
        )


__all__ = [
    "RecursiveSamplingEstimator",
    "DynamicMCEstimator",
    "ALLOCATIONS",
    "DEFAULT_THRESHOLD",
]
