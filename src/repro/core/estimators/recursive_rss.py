"""Recursive stratified sampling "RSS" (paper §2.5, Algorithm 5, Table 1).

Li et al. (TKDE'16) partition the probability space over ``r`` selected edges
into ``r + 1`` disjoint strata (Table 1): stratum 0 forces all ``r`` edges
absent; stratum ``i >= 1`` forces edges ``1..i-1`` absent, edge ``i`` present
and leaves the rest undetermined.  The stratum probabilities

``pi_0 = prod(1 - p_j)``,  ``pi_i = p_i * prod_{j<i}(1 - p_j)``

telescope to 1, so assigning each stratum a budget proportional to ``pi_i``
and recursing removes the Bernoulli noise of the selected edges from the
estimator — variance strictly below MC (Theorems 4.2/4.3 of Li et al.).
RHH is the special case ``r = 1`` (paper §3.2 point 1).

Per the paper's setup (§3.1.3), the ``r`` edges are chosen by BFS from the
source over the currently possible graph (forced-absent edges removed,
forced-present traversed for free), and recursion falls back to conditioned
MC when the stratum budget drops under ``threshold`` or fewer than ``r``
probabilistic edges are reachable.  Budgets use the same stochastically
rounded allocation as our RHH (weights ``K_i / K`` with ``E[K_i] = pi_i K``),
which keeps the estimator unbiased when ``pi_i K < 1`` — a case Alg. 5
leaves undefined.

Two exact short-circuits mirror Li et al.'s graph simplification: a stratum
in which ``t`` is already reachable through forced-present edges returns 1
without sampling, and one where ``t`` is unreachable even using every
undetermined edge returns 0.
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

from typing import List

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.graph import UncertainGraph
from repro.core.possible_world import (
    EDGE_ABSENT,
    EDGE_FREE,
    EDGE_PRESENT,
    ReachabilitySampler,
)
from repro.util.bitset import concatenate_ranges
from repro.util.recursion import recursion_limit
from repro.util.rng import SeedLike
from repro.util.validation import check_positive

DEFAULT_STRATUM_EDGES = 50  # paper §3.1.3: r = 50
DEFAULT_THRESHOLD = 5  # paper §3.10: same stop threshold as RHH


class RecursiveStratifiedEstimator(Estimator):
    """RSS: recursive stratified sampling over r BFS-selected edges."""

    key = "rss"
    display_name = "RSS"
    uses_index = False

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        stratum_edges: int = DEFAULT_STRATUM_EDGES,
        threshold: int = DEFAULT_THRESHOLD,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        self.stratum_edges = check_positive(stratum_edges, "stratum_edges")
        self.threshold = check_positive(threshold, "threshold")
        self._sampler = ReachabilitySampler(graph)
        self._forced = np.zeros(graph.edge_count, dtype=np.int8)
        self._certain_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._possible_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._epoch = 0
        self._max_depth_seen = 0
        self._source = 0

    def _rebind_graph(self, graph: UncertainGraph) -> None:
        self._sampler = ReachabilitySampler(graph)
        self._forced = np.zeros(graph.edge_count, dtype=np.int8)
        self._certain_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._possible_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._epoch = 0

    # ------------------------------------------------------------------
    # Stratum machinery
    # ------------------------------------------------------------------

    def _scan_reachability(self, target: int) -> tuple:
        """One BFS pass over the conditioned graph (Alg. 5 line 9).

        Returns ``(certain_hit, possible_hit, selected_edges)`` where
        *certain* traverses only forced-present edges, *possible* also
        traverses undetermined ones, and ``selected_edges`` are the first
        ``r`` undetermined edge ids in possible-BFS discovery order.
        """
        graph = self.graph
        indptr, targets = graph.indptr, graph.targets
        forced = self._forced
        self._epoch += 1
        epoch = self._epoch
        source = self._source

        # Certain reachability: forced-present edges only (level-batched).
        certain = self._certain_epoch
        certain[source] = epoch
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            edge_ids = concatenate_ranges(indptr[frontier], indptr[frontier + 1])
            if edge_ids.size == 0:
                break
            present = edge_ids[forced[edge_ids] == EDGE_PRESENT]
            neighbors = targets[present]
            fresh = np.unique(neighbors[certain[neighbors] != epoch])
            if fresh.size == 0:
                break
            certain[fresh] = epoch
            if certain[target] == epoch:
                return True, True, []
            frontier = fresh

        # Possible reachability + selection of the first r free edges, in
        # BFS level order from the source.
        possible = self._possible_epoch
        possible[source] = epoch
        frontier = np.array([source], dtype=np.int64)
        possible_hit = False
        selected: List[int] = []
        want = self.stratum_edges
        while frontier.size:
            edge_ids = concatenate_ranges(indptr[frontier], indptr[frontier + 1])
            if edge_ids.size == 0:
                break
            states = forced[edge_ids]
            if len(selected) < want:
                free_ids = edge_ids[states == EDGE_FREE]
                selected.extend(free_ids[: want - len(selected)].tolist())
            neighbors = targets[edge_ids[states != EDGE_ABSENT]]
            fresh = np.unique(neighbors[possible[neighbors] != epoch])
            if fresh.size == 0:
                break
            possible[fresh] = epoch
            if possible[target] == epoch:
                possible_hit = True
            frontier = fresh
        return False, possible_hit, selected

    def _recurse(
        self,
        target: int,
        samples: int,
        depth: int,
        rng: np.random.Generator,
    ) -> float:
        graph = self.graph
        forced = self._forced
        self._max_depth_seen = max(self._max_depth_seen, depth)

        certain_hit, possible_hit, selected = self._scan_reachability(target)
        if certain_hit:
            return 1.0
        if not possible_hit:
            return 0.0
        if samples < self.threshold or len(selected) < self.stratum_edges:
            self.last_query_statistics.fallback_calls += 1
            return self._sampler.estimate(
                self._source, target, samples, rng, forced
            )

        probabilities = graph.probs[selected]
        # Stratum masses per Table 1 (telescoping partition of unity).
        absent_prefix = np.concatenate(([1.0], np.cumprod(1.0 - probabilities)))
        masses = np.empty(len(selected) + 1, dtype=np.float64)
        masses[0] = absent_prefix[-1]
        masses[1:] = probabilities * absent_prefix[:-1]

        # Stochastically rounded proportional allocation (see module doc).
        raw = masses * samples
        budgets = np.floor(raw + rng.random(raw.shape)).astype(np.int64)

        estimate = 0.0
        for stratum, budget in enumerate(budgets):
            if budget == 0:
                continue
            # Force the stratum's status vector X_i onto the selected edges.
            if stratum == 0:
                forced_span = selected
                forced[selected] = EDGE_ABSENT
            else:
                forced_span = selected[:stratum]
                forced[selected[: stratum - 1]] = EDGE_ABSENT
                forced[selected[stratum - 1]] = EDGE_PRESENT
            value = self._recurse(target, int(budget), depth + 1, rng)
            forced[forced_span] = EDGE_FREE
            estimate += (budget / samples) * value
        return estimate

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        self._forced.fill(EDGE_FREE)
        self._source = source
        self._max_depth_seen = 0
        with recursion_limit(self.graph.edge_count + 2000):
            estimate = self._recurse(target, samples, 0, rng)
        self.last_query_statistics.recursion_depth = self._max_depth_seen
        return estimate

    def memory_bytes(self) -> int:
        # Graph + status vectors + the two BFS epoch arrays + recursion
        # stack with per-level selected-edge lists (paper §3.6: RSS/RHH are
        # the most memory-hungry online methods).
        per_level = 64 + 8 * self.stratum_edges + 400
        recursion_bytes = per_level * max(self._max_depth_seen, 1)
        state_bytes = (
            int(self._forced.nbytes)
            + int(self._certain_epoch.nbytes)
            + int(self._possible_epoch.nbytes)
        )
        visited_bytes = self.graph.node_count * np.dtype(np.int64).itemsize
        return super().memory_bytes() + state_bytes + recursion_bytes + visited_bytes


__all__ = [
    "RecursiveStratifiedEstimator",
    "DEFAULT_STRATUM_EDGES",
    "DEFAULT_THRESHOLD",
]
