"""Estimator interface shared by all six algorithms.

Every estimator answers the fundamental s-t reliability query of the paper:
*given* ``(s, t)`` *and a sample budget* ``K``, *return an unbiased estimate
of* ``R(s, t)``.  Index-based methods (BFS Sharing, ProbTree) additionally
expose an offline :meth:`Estimator.prepare` phase whose cost the experiment
harness reports separately (paper §3.7).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.rng import SeedLike, ensure_generator, stable_substream
from repro.util.validation import check_node, check_positive

#: Namespace key for the batch fallback's per-query substreams, so keys
#: like ``(seed, source, target, samples)`` cannot collide with other
#: substream users of the same root seed (e.g. the experiment runner's
#: ``(seed, pair, repeat, K)`` cells, or the engine's world stream).
_BATCH_STREAM = 0x42

#: A coerced workload entry: ``(source, target, samples, max_hops)``.
WorkloadEntry = Tuple[int, int, int, Optional[int]]


def coerce_batch_queries(
    queries: Iterable[Sequence[int]],
    *,
    estimator_name: str,
    allow_hops: bool,
    hops_reason: Optional[str] = None,
) -> List[WorkloadEntry]:
    """Normalise a raw workload into ``(source, target, K, max_hops)``.

    Shared by every ``estimate_batch`` implementation so they agree on
    what a query *is*.  Coerced here rather than via
    ``repro.engine.plan.as_query``: core must not import upward into
    engine (see ``docs/architecture.md``).  Estimators without a
    hop-bounded sweep reject ``max_hops`` outright (``allow_hops=False``)
    instead of silently answering the unbounded query; ``hops_reason``
    lets them explain *why* in the error.
    """
    workload: List[WorkloadEntry] = []
    for query in queries:
        parts = tuple(query)
        if len(parts) == 3:
            max_hops: Optional[int] = None
        elif len(parts) == 4:
            max_hops = parts[3]
        else:
            raise ValueError(
                f"a query is (source, target, samples[, max_hops]), "
                f"got {query!r}"
            )
        if max_hops is not None and not allow_hops:
            raise NotImplementedError(
                f"{estimator_name} has no d-hop batch fast path; "
                + (
                    hops_reason
                    or "hop-bounded (max_hops) workloads are served by the "
                    "shared-world engine — use the 'mc' or 'bfs_sharing' "
                    "estimator, or repro.engine.BatchEngine directly"
                )
            )
        workload.append(
            (
                int(parts[0]),
                int(parts[1]),
                int(parts[2]),
                None if max_hops is None else int(max_hops),
            )
        )
    return workload


def run_engine_batch(
    estimator: "Estimator",
    queries: Iterable[Sequence[int]],
    *,
    seed: Optional[int] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    kernels: Optional[str] = None,
    cache_dir: Optional[str] = None,
) -> np.ndarray:
    """Serve a workload through the shared-world batch engine.

    The common body behind the ``estimate_batch`` fast paths of MC and
    BFS Sharing: build a :class:`~repro.engine.batch.BatchEngine` over the
    estimator's graph, run the workload, stash the engine and its
    :class:`~repro.engine.batch.BatchResult` on the estimator (for
    ``memory_bytes`` and for callers that want the instrumentation —
    ``estimator.last_batch_result``), and return the estimates.

    With ``seed=None`` the world-stream root is drawn from the
    estimator's own generator, matching the base fallback's behaviour
    (reproducible iff the estimator was seeded).  ``cache_dir`` opens the
    persistent result-cache sidecar, so repeated workloads — even across
    processes — are answered without sampling a single world.
    """
    # Imported lazily: core must not import upward into engine at module
    # scope (docs/architecture.md), but a fast path may reach up at call
    # time the way MC has since the engine landed.
    from repro.engine.batch import DEFAULT_CHUNK_SIZE, BatchEngine

    if seed is None:
        seed = int(estimator._rng.integers(2**63))
    engine = BatchEngine(
        estimator.graph,
        seed=seed,
        chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
        workers=workers,
        kernels=kernels,
        cache_dir=cache_dir,
    )
    result = engine.run(queries)
    estimator._batch_engine = engine  # memory_bytes() reflects the run
    estimator.last_batch_result = result
    return result.estimates


@dataclass
class QueryStatistics:
    """Per-query instrumentation collected by estimators.

    The harness reads these to reproduce the paper's per-sample cost and
    memory discussions without re-instrumenting each algorithm externally.
    """

    samples_requested: int = 0
    edges_probed: int = 0
    nodes_expanded: int = 0
    recursion_depth: int = 0
    fallback_calls: int = 0

    def merge(self, other: "QueryStatistics") -> None:
        self.samples_requested += other.samples_requested
        self.edges_probed += other.edges_probed
        self.nodes_expanded += other.nodes_expanded
        self.recursion_depth = max(self.recursion_depth, other.recursion_depth)
        self.fallback_calls += other.fallback_calls


class Estimator(abc.ABC):
    """Abstract s-t reliability estimator over one uncertain graph.

    Subclasses implement :meth:`_estimate`; this base class handles argument
    validation, RNG coercion, and the trivial ``s == t`` case (reliability 1,
    paper Alg. 1 lines 6-9) so all estimators agree on edge cases.
    """

    #: Registry key and display name, e.g. ``"mc"`` / ``"MC"``.
    key: ClassVar[str] = ""
    display_name: ClassVar[str] = ""
    #: Whether the method has an offline index phase (paper Fig. 13).
    uses_index: ClassVar[bool] = False
    #: How ``estimate_batch`` is served — the fast-path dispatch tag the
    #: CLI and docs key off:  ``"fallback"`` (per-query loop),
    #: ``"engine"`` (shared-world batch engine: one world stream for the
    #: whole workload, d-hop capable, ``workers``/``cache_dir`` honoured),
    #: or ``"bag_grouped"`` (ProbTree: one lifted query graph per (s, t)
    #: bag pair, inner batches per group).
    batch_path: ClassVar[str] = "fallback"

    def __init__(self, graph: UncertainGraph, *, seed: SeedLike = None) -> None:
        self.graph = graph
        self._rng = ensure_generator(seed)
        self.last_query_statistics = QueryStatistics()
        #: The :class:`~repro.engine.batch.BatchResult` of the last
        #: engine-served batch (``None`` when the last call took another
        #: path) — instrumentation for callers, e.g. ``repro batch``.
        self.last_batch_result = None
        self._batch_engine = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def estimate(
        self,
        source: int,
        target: int,
        samples: int,
        *,
        rng: SeedLike = None,
    ) -> float:
        """Estimate ``R(source, target)`` from ``samples`` samples.

        ``rng`` overrides the estimator's own stream for this query — the
        experiment runner passes independent substreams per (pair, repeat)
        so repeated queries are statistically independent.
        """
        source = check_node(source, self.graph.node_count, "source")
        target = check_node(target, self.graph.node_count, "target")
        samples = check_positive(samples, "samples")
        generator = self._rng if rng is None else ensure_generator(rng)
        self.last_query_statistics = QueryStatistics(samples_requested=samples)
        self.last_batch_result = None  # this query is per-query, not batched
        if source == target:
            return 1.0
        estimate = self._estimate(source, target, samples, generator)
        if not 0.0 <= estimate <= 1.0 + 1e-12:
            raise AssertionError(
                f"{self.display_name} produced out-of-range estimate {estimate}"
            )
        return min(estimate, 1.0)

    def estimate_batch(
        self,
        queries: Iterable[Sequence[int]],
        *,
        seed: Optional[int] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> np.ndarray:
        """Estimate a workload of ``(source, target, samples[, max_hops])``.

        Default implementation: the per-query loop — one :meth:`estimate`
        per triple, each on a substream keyed by ``(seed, source, target,
        samples)`` so duplicate queries agree and results are independent
        of workload order.  Subclasses with a shared-work fast path
        override this (see :attr:`batch_path`): MC and BFS Sharing route
        through the batch engine (:mod:`repro.engine`), which samples
        each possible world once for the whole workload (paper
        §2.2/§3.7); ProbTree groups the batch by (s, t) bag pair and
        lifts each group's query graph once.

        ``workers`` (engine parallelism) and ``cache_dir`` (persistent
        result cache) are knobs for those fast paths; the per-query
        fallback has nothing to fan out and no exact cache key — every
        call draws fresh samples — so it ignores both.  Hop-bounded
        queries (§2.9 d-hop reliability) need a shared-world sweep, which
        a generic estimator does not have — the fallback rejects them
        rather than silently answering the unbounded query.

        Returns estimates aligned with the input order.
        """
        workload = coerce_batch_queries(
            queries, estimator_name=type(self).__name__, allow_hops=False
        )
        self.last_batch_result = None
        results = np.empty(len(workload), dtype=np.float64)
        for index, (source, target, samples, _) in enumerate(workload):
            rng = (
                None
                if seed is None
                else stable_substream(
                    seed, _BATCH_STREAM, source, target, samples
                )
            )
            results[index] = self.estimate(source, target, samples, rng=rng)
        return results

    def prepare(self) -> None:
        """(Re)build any offline index.  Default: nothing to do.

        Calling ``prepare`` on an already-prepared estimator rebuilds the
        index (index estimators draw it from their RNG, so a rebuild may
        differ); callers that only need the index to *exist* — e.g. a
        service lazily preparing under a lock — use
        :meth:`ensure_prepared` instead.
        """

    @property
    def prepared(self) -> bool:
        """Whether the offline phase has run.

        Index estimators override this to report whether their index is
        built; it is the guard :meth:`ensure_prepared` keys off, so
        double-checked preparation never rebuilds (and re-randomises) a
        live index.  The base class cannot tell — a subclass may
        override :meth:`prepare` without overriding this property — so
        it answers ``False``, the fail-safe direction: the worst case is
        a redundant ``prepare()`` call (a no-op without an offline
        phase), never a skipped build.
        """
        return False

    def ensure_prepared(self) -> None:
        """Run :meth:`prepare` unless the index is known to be built."""
        if not self.prepared:
            self.prepare()

    def apply_update(
        self,
        graph: UncertainGraph,
        *,
        touched_edges: Sequence[Tuple[int, int]] = (),
        structural: bool = False,
    ) -> str:
        """Repoint the estimator at a mutated successor ``graph``.

        Called by the service after a live update
        (:mod:`repro.core.mutation`): ``graph`` is the copy-on-write
        successor, ``touched_edges`` the ``(source, target)`` pairs whose
        probability or existence changed, and ``structural`` whether the
        edge *set* changed.  Returns a maintenance-mode tag for
        reporting:

        * ``"repointed"`` — no index existed; the estimator now reads the
          new graph and nothing else was needed;
        * ``"rebuilt"`` — an index existed and was rebuilt from scratch
          (the safe default for any index this base class knows nothing
          about);
        * subclasses may return richer tags (``"dropped"``,
          ``"incremental"``) when they can do better than a rebuild —
          see :class:`~repro.core.estimators.bfs_sharing.
          BFSSharingEstimator` and :class:`~repro.core.estimators.
          prob_tree.ProbTreeEstimator`.

        Whatever the tag, the post-condition is identical: every
        subsequent query answers against ``graph`` exactly as a freshly
        constructed estimator would (the update conformance suite pins
        this against the exact oracle).
        """
        had_index = self.prepared
        self.graph = graph
        self._batch_engine = None
        self.last_batch_result = None
        self._rebind_graph(graph)
        if had_index:
            self.prepare()
            return "rebuilt"
        return "repointed"

    def _rebind_graph(self, graph: UncertainGraph) -> None:
        """Refresh graph-derived working state after :meth:`apply_update`.

        Subclasses that size scratch arrays (or precompute per-edge data)
        from the graph in ``__init__`` override this to rebuild them —
        ``self.graph`` has already been repointed when it runs.  The
        default does nothing.
        """

    def memory_bytes(self) -> int:
        """Approximate online working-set size in bytes (paper §3.6).

        Includes the graph plus estimator-owned auxiliary state; subclasses
        add their index/stack/heap footprints.
        """
        return self.graph.memory_bytes()

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        """Estimate reliability for validated ``source != target``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self.graph!r})"


__all__ = [
    "Estimator",
    "QueryStatistics",
    "WorkloadEntry",
    "coerce_batch_queries",
    "run_engine_batch",
]
