"""The six s-t reliability estimators of the paper (plus uncorrected LP
and the post-paper variance-reduction sampler family)."""

from repro.core.estimators.base import Estimator, QueryStatistics
from repro.core.estimators.bfs_sharing import BFSSharingEstimator, BFSSharingIndex
from repro.core.estimators.importance import ImportanceSamplingEstimator
from repro.core.estimators.lazy_propagation import (
    LazyPropagationEstimator,
    LazyPropagationOriginal,
)
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.estimators.prob_tree import FWDProbTreeIndex, ProbTreeEstimator
from repro.core.estimators.recursive_rhh import RecursiveSamplingEstimator
from repro.core.estimators.recursive_rss import RecursiveStratifiedEstimator
from repro.core.estimators.strata import BFSStratifiedEstimator

__all__ = [
    "Estimator",
    "QueryStatistics",
    "MonteCarloEstimator",
    "BFSSharingEstimator",
    "BFSSharingIndex",
    "ImportanceSamplingEstimator",
    "LazyPropagationEstimator",
    "LazyPropagationOriginal",
    "ProbTreeEstimator",
    "FWDProbTreeIndex",
    "RecursiveSamplingEstimator",
    "RecursiveStratifiedEstimator",
    "BFSStratifiedEstimator",
]
