"""BFS-stratified sampling "BSS": single-level distance strata.

A single-level cousin of RSS (paper §2.5) following the BFS-order
stratification idea of Sasaki et al., "Efficient Network Reliability
Computation in Uncertain Graphs": order the graph's edges by the BFS
distance of their source node from the query source — the edges a
reliability walk meets earliest — and stratify the possible-world space
over the first ``r`` such edges using the telescoping partition of Table 1:

``pi_0 = prod(1 - p_j)``,  ``pi_i = p_i * prod_{j<i}(1 - p_j)``

(stratum 0 forces all ``r`` edges absent; stratum ``i >= 1`` forces edges
``1..i-1`` absent and edge ``i`` present).  The masses sum to 1 exactly, so
giving each stratum a budget proportional to ``pi_i`` and running
conditioned MC inside it removes the selected edges' Bernoulli noise from
the top level — variance at or below plain MC for the same budget (Li et
al., TKDE'16, Thm. 4.2), at one conditioned BFS per sample like MC.

Where RSS recurses (re-selecting edges inside every stratum, with recursion
bookkeeping and depth-dependent memory), BSS stratifies **once** against the
all-edges-available BFS distances and hands every stratum to the shared
conditioned-MC kernel.  That makes it the cheap member of the
variance-reduction family: no recursion, no per-level state, distance
ordering computed per query in one :meth:`UncertainGraph.bfs_distances`
pass.  Budgets use the stochastically rounded allocation shared with
RHH/RSS (``E[K_i] = pi_i * K``), which keeps the estimator unbiased when
``pi_i * K < 1``.
Guide with accuracy/speed/memory trade-offs: ``docs/estimators.md``.
"""
from __future__ import annotations

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.graph import UncertainGraph
from repro.core.possible_world import (
    EDGE_ABSENT,
    EDGE_FREE,
    EDGE_PRESENT,
    ReachabilitySampler,
)
from repro.util.rng import SeedLike
from repro.util.validation import check_positive

#: Default stratum width r.  Narrower than RSS's 50: with a single level
#: the tail strata get tiny masses, and 16 keeps every stratum's expected
#: budget meaningful at serving-size K.
DEFAULT_STRATUM_EDGES = 16


class BFSStratifiedEstimator(Estimator):
    """BSS: one-shot stratification over the first r BFS-ordered edges."""

    key = "strata"
    display_name = "BSS"
    uses_index = False
    batch_path = "fallback"

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        stratum_edges: int = DEFAULT_STRATUM_EDGES,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        self.stratum_edges = check_positive(stratum_edges, "stratum_edges")
        self._sampler = ReachabilitySampler(graph)
        self._forced = np.zeros(graph.edge_count, dtype=np.int8)

    def _rebind_graph(self, graph: UncertainGraph) -> None:
        self._sampler = ReachabilitySampler(graph)
        self._forced = np.zeros(graph.edge_count, dtype=np.int8)

    def _select_edges(self, source: int, target: int):
        """First ``r`` edge ids in BFS-distance order from ``source``.

        Orders edges by the distance of their *source* node over the
        all-edges-available graph (ties broken by CSR edge id, which is
        itself BFS discovery order within a level), dropping edges whose
        source the walk can never reach.  Returns ``None`` when ``target``
        is disconnected from ``source`` even with every edge present —
        the exact 0 short-circuit.
        """
        graph = self.graph
        distances = graph.bfs_distances(source)
        if distances[target] < 0:
            return None
        edge_distance = distances[graph.edge_sources]
        candidates = np.flatnonzero(edge_distance >= 0)
        order = np.argsort(edge_distance[candidates], kind="stable")
        return candidates[order][: self.stratum_edges]

    def _estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
    ) -> float:
        selected = self._select_edges(source, target)
        if selected is None:
            return 0.0
        if selected.size == 0:
            # target reachable but no outgoing edges at all: impossible
            # unless target == source, which the base class already
            # handled — defensive 0.
            return 0.0
        self.last_query_statistics.nodes_expanded = self.graph.node_count

        probabilities = self.graph.probs[selected]
        # Stratum masses per Table 1 (telescoping partition of unity).
        absent_prefix = np.concatenate(([1.0], np.cumprod(1.0 - probabilities)))
        masses = np.empty(selected.size + 1, dtype=np.float64)
        masses[0] = absent_prefix[-1]
        masses[1:] = probabilities * absent_prefix[:-1]

        # Stochastically rounded proportional allocation (see module doc).
        raw = masses * samples
        budgets = np.floor(raw + rng.random(raw.shape)).astype(np.int64)

        forced = self._forced
        forced.fill(EDGE_FREE)
        estimate = 0.0
        for stratum, budget in enumerate(budgets):
            if budget == 0:
                continue
            if stratum == 0:
                span = selected
                forced[selected] = EDGE_ABSENT
            else:
                span = selected[:stratum]
                forced[selected[: stratum - 1]] = EDGE_ABSENT
                forced[selected[stratum - 1]] = EDGE_PRESENT
            value = self._sampler.estimate(
                source, target, int(budget), rng, forced
            )
            forced[span] = EDGE_FREE
            estimate += (budget / samples) * value
        # Budget rounding can push sum(budgets) a hair over K; the weighted
        # sum stays unbiased but a realisation may graze past 1.0.
        return min(estimate, 1.0)

    def memory_bytes(self) -> int:
        # Graph + forced-status vector + the BFS distance array computed
        # per query + the sampler's visited-epoch array.
        int64 = np.dtype(np.int64).itemsize
        distance_bytes = self.graph.node_count * int64
        visited_bytes = self.graph.node_count * int64
        return (
            super().memory_bytes()
            + int(self._forced.nbytes)
            + distance_bytes
            + visited_bytes
        )


__all__ = ["BFSStratifiedEstimator", "DEFAULT_STRATUM_EDGES"]
