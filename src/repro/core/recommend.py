"""Estimator recommendation: the paper's Table 17 and Figure 18 as an API.

The paper closes with a star-rating summary (Table 17) and a decision tree
(Fig. 18) that walks a practitioner from resource constraints to a suitable
estimator.  :func:`recommend_estimator` implements that decision tree
literally; :data:`STAR_RATINGS` encodes Table 17 so benchmarks can print it
and compare against measured rankings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Dict, List, Optional, Tuple

#: Table 17 (online query processing), 1-4 stars per metric.
STAR_RATINGS: Dict[str, Dict[str, int]] = {
    "mc": {"variance": 1, "accuracy": 3, "running_time": 2, "memory": 4},
    "bfs_sharing": {"variance": 1, "accuracy": 3, "running_time": 1, "memory": 2},
    "prob_tree": {"variance": 1, "accuracy": 3, "running_time": 3, "memory": 3},
    "lp_plus": {"variance": 1, "accuracy": 3, "running_time": 3, "memory": 4},
    "rhh": {"variance": 4, "accuracy": 4, "running_time": 4, "memory": 1},
    "rss": {"variance": 4, "accuracy": 4, "running_time": 4, "memory": 1},
}

#: Table 17 (index-related), 1-4 stars.
INDEX_STAR_RATINGS: Dict[str, Dict[str, int]] = {
    "bfs_sharing": {
        "build_time": 4,
        "load_time": 3,
        "update_time": 1,
        "size": 3,
    },
    "prob_tree": {
        "build_time": 3,
        "load_time": 4,
        "update_time": 4,
        "size": 4,
    },
}


@dataclass(frozen=True)
class Recommendation:
    """Outcome of walking the Fig. 18 decision tree."""

    estimators: Tuple[str, ...]
    path: Tuple[str, ...]  # human-readable branch decisions, in order

    def __str__(self) -> str:
        steps = " -> ".join(self.path)
        names = ", ".join(self.estimators)
        return f"{steps} => {names}"


#: Estimators whose batch path is the shared-world engine — the only ones
#: able to serve distance-constrained (d-hop) reliability (paper §2.9).
HOP_CAPABLE_ESTIMATORS: Tuple[str, ...] = ("mc", "bfs_sharing")


def _finalise(
    estimators: Tuple[str, ...],
    path: List[str],
    unavailable: Collection[str],
) -> Recommendation:
    """Demote estimators a live update made unavailable (dropped index).

    ``mc`` is the universal fallback: it is index-free, hop-capable, and
    can never be dropped — an empty post-filter pick would only mean the
    caller blacklisted everything, and recommending nothing helps nobody.
    """
    dropped = tuple(key for key in estimators if key in unavailable)
    if dropped:
        path.append(
            "index unavailable after live update: " + ", ".join(dropped)
        )
        estimators = tuple(
            key for key in estimators if key not in unavailable
        )
    if not estimators:
        path.append("fallback: mc (index-free, always servable)")
        estimators = ("mc",)
    return Recommendation(estimators, tuple(path))


def recommend_estimator(
    *,
    memory_limited: bool,
    want_lowest_variance: bool = False,
    want_fastest: bool = True,
    max_hops: Optional[int] = None,
    unavailable: Collection[str] = (),
) -> Recommendation:
    """Walk the paper's Fig. 18 decision tree.

    Parameters
    ----------
    memory_limited:
        ``True`` follows the "Memory: Smaller" branch (MC / LP+ / ProbTree);
        ``False`` allows the memory-hungry methods (BFS Sharing, RHH, RSS).
    want_lowest_variance:
        On the large-memory branch, prefer the variance-reduced recursive
        estimators over BFS Sharing.
    want_fastest:
        On the small-memory branch, prefer the faster LP+/ProbTree over
        plain MC; among those two, ProbTree wins overall (the paper's final
        recommendation) but requires an index, so both are returned in
        preference order.
    max_hops:
        A d-hop bound on the query (§2.9).  The decision tree predates
        hop-bounded workloads: only the engine-served estimators
        (:data:`HOP_CAPABLE_ESTIMATORS`) have a hop-bounded sweep, so a
        bound short-circuits the tree to them instead of recommending a
        method that would reject the query outright.
    unavailable:
        Estimator keys that cannot currently serve — typically an
        index-backed method whose index a live ``/v1/update`` dropped and
        has not yet rebuilt.  They are demoted from the recommendation
        (noted in the path) rather than silently recommended.
    """
    path: List[str] = []
    if max_hops is not None:
        path.append(
            f"d-hop bound ({int(max_hops)}): engine-served methods only"
        )
        if memory_limited:
            path.append("Memory: smaller")
            return _finalise(("mc",), path, unavailable)
        path.append("Memory: larger")
        return _finalise(("bfs_sharing", "mc"), path, unavailable)

    if memory_limited:
        path.append("Memory: smaller")
        if want_fastest:
            path.append("Running time: faster")
            # ProbTree first: the paper's overall recommendation (its root-to-
            # leaf path in Fig. 18 is all red ticks).
            return _finalise(("prob_tree", "lp_plus"), path, unavailable)
        path.append("Running time: slower acceptable")
        return _finalise(("mc",), path, unavailable)

    path.append("Memory: larger")
    if want_lowest_variance:
        path.append("Variance: lower")
        return _finalise(("rss", "rhh"), path, unavailable)
    path.append("Variance: higher acceptable")
    return _finalise(("bfs_sharing",), path, unavailable)


def overall_recommendation() -> str:
    """The paper's single overall pick (§4): ProbTree."""
    return "prob_tree"


__all__ = [
    "STAR_RATINGS",
    "INDEX_STAR_RATINGS",
    "HOP_CAPABLE_ESTIMATORS",
    "Recommendation",
    "recommend_estimator",
    "overall_recommendation",
]
