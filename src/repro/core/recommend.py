"""Estimator recommendation: the paper's Table 17 and Figure 18 as an API.

The paper closes with a star-rating summary (Table 17) and a decision tree
(Fig. 18) that walks a practitioner from resource constraints to a suitable
estimator.  :func:`recommend_estimator` implements that decision tree
literally; :data:`STAR_RATINGS` encodes Table 17 so benchmarks can print it
and compare against measured rankings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Table 17 (online query processing), 1-4 stars per metric.
STAR_RATINGS: Dict[str, Dict[str, int]] = {
    "mc": {"variance": 1, "accuracy": 3, "running_time": 2, "memory": 4},
    "bfs_sharing": {"variance": 1, "accuracy": 3, "running_time": 1, "memory": 2},
    "prob_tree": {"variance": 1, "accuracy": 3, "running_time": 3, "memory": 3},
    "lp_plus": {"variance": 1, "accuracy": 3, "running_time": 3, "memory": 4},
    "rhh": {"variance": 4, "accuracy": 4, "running_time": 4, "memory": 1},
    "rss": {"variance": 4, "accuracy": 4, "running_time": 4, "memory": 1},
}

#: Table 17 (index-related), 1-4 stars.
INDEX_STAR_RATINGS: Dict[str, Dict[str, int]] = {
    "bfs_sharing": {
        "build_time": 4,
        "load_time": 3,
        "update_time": 1,
        "size": 3,
    },
    "prob_tree": {
        "build_time": 3,
        "load_time": 4,
        "update_time": 4,
        "size": 4,
    },
}


@dataclass(frozen=True)
class Recommendation:
    """Outcome of walking the Fig. 18 decision tree."""

    estimators: Tuple[str, ...]
    path: Tuple[str, ...]  # human-readable branch decisions, in order

    def __str__(self) -> str:
        steps = " -> ".join(self.path)
        names = ", ".join(self.estimators)
        return f"{steps} => {names}"


def recommend_estimator(
    *,
    memory_limited: bool,
    want_lowest_variance: bool = False,
    want_fastest: bool = True,
) -> Recommendation:
    """Walk the paper's Fig. 18 decision tree.

    Parameters
    ----------
    memory_limited:
        ``True`` follows the "Memory: Smaller" branch (MC / LP+ / ProbTree);
        ``False`` allows the memory-hungry methods (BFS Sharing, RHH, RSS).
    want_lowest_variance:
        On the large-memory branch, prefer the variance-reduced recursive
        estimators over BFS Sharing.
    want_fastest:
        On the small-memory branch, prefer the faster LP+/ProbTree over
        plain MC; among those two, ProbTree wins overall (the paper's final
        recommendation) but requires an index, so both are returned in
        preference order.
    """
    path: List[str] = []
    if memory_limited:
        path.append("Memory: smaller")
        if want_fastest:
            path.append("Running time: faster")
            # ProbTree first: the paper's overall recommendation (its root-to-
            # leaf path in Fig. 18 is all red ticks).
            return Recommendation(("prob_tree", "lp_plus"), tuple(path))
        path.append("Running time: slower acceptable")
        return Recommendation(("mc",), tuple(path))

    path.append("Memory: larger")
    if want_lowest_variance:
        path.append("Variance: lower")
        return Recommendation(("rss", "rhh"), tuple(path))
    path.append("Variance: higher acceptable")
    return Recommendation(("bfs_sharing",), tuple(path))


def overall_recommendation() -> str:
    """The paper's single overall pick (§4): ProbTree."""
    return "prob_tree"


__all__ = [
    "STAR_RATINGS",
    "INDEX_STAR_RATINGS",
    "Recommendation",
    "recommend_estimator",
    "overall_recommendation",
]
