"""Core: uncertain graphs, possible worlds, estimators, and recommendations."""

from repro.core.graph import GraphBuilder, UncertainGraph
from repro.core.possible_world import (
    ReachabilitySampler,
    reachable_in_world,
    sample_world,
    world_probability,
)
from repro.core.exact import (
    reliability_by_enumeration,
    reliability_by_factoring,
    reliability_exact,
)
from repro.core.preprocess import (
    certain_edge_fraction,
    contract_certain_edges,
)
from repro.core.registry import (
    PAPER_ESTIMATORS,
    create_estimator,
    estimator_class,
    estimator_keys,
    register_estimator,
)
from repro.core.recommend import recommend_estimator

__all__ = [
    "GraphBuilder",
    "UncertainGraph",
    "ReachabilitySampler",
    "reachable_in_world",
    "sample_world",
    "world_probability",
    "reliability_by_enumeration",
    "reliability_by_factoring",
    "reliability_exact",
    "certain_edge_fraction",
    "contract_certain_edges",
    "PAPER_ESTIMATORS",
    "create_estimator",
    "estimator_class",
    "estimator_keys",
    "register_estimator",
    "recommend_estimator",
]
