"""Exact s-t reliability for small graphs.

s-t reliability is #P-complete (Valiant '79; Ball '86), so these routines are
exponential-time *oracles*: they exist to validate the six estimators in the
test suite and to let examples show ground truth on toy graphs.

Two independent algorithms are provided and cross-checked in the tests:

* :func:`reliability_by_enumeration` — literal Eq. 2: sum ``I_G(s,t) Pr(G)``
  over all ``2^m`` worlds.  The gold standard; feasible to ``m ~ 20``.
* :func:`reliability_by_factoring` — edge factoring (conditioning), the exact
  analogue of the recursive estimators' divide-and-conquer (Eq. 9 with exact
  recursion instead of sampling).  Uses the same reached-set/DFS state
  machine as RHH, terminating branches on s-t paths in ``E1`` and cuts in
  ``E2``.  Typically handles a few hundred edges on sparse toy graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.graph import UncertainGraph
from repro.core.possible_world import reachable_in_world

MAX_ENUMERATION_EDGES = 24


def reliability_by_enumeration(
    graph: UncertainGraph, source: int, target: int
) -> float:
    """Exact ``R(s, t)`` by summing over all ``2^m`` possible worlds (Eq. 2)."""
    if source == target:
        return 1.0
    m = graph.edge_count
    if m > MAX_ENUMERATION_EDGES:
        raise ValueError(
            f"enumeration over 2^{m} worlds refused (max {MAX_ENUMERATION_EDGES} "
            "edges); use reliability_by_factoring instead"
        )
    probs = graph.probs
    total = 0.0
    mask = np.zeros(m, dtype=bool)
    for world_bits in range(1 << m):
        for edge in range(m):
            mask[edge] = (world_bits >> edge) & 1
        if reachable_in_world(graph, mask, source, target):
            present = probs[mask]
            absent = probs[~mask]
            total += float(np.prod(present) * np.prod(1.0 - absent))
    return total


def reliability_by_factoring(
    graph: UncertainGraph,
    source: int,
    target: int,
    max_depth: Optional[int] = None,
) -> float:
    """Exact ``R(s, t)`` by edge factoring.

    Recursively conditions on one *expandable* edge at a time (an edge out of
    a node already known reachable from ``source``), following Eq. 9 of the
    paper with exact recursion:

    ``R = P(e) * R[e present] + (1 - P(e)) * R[e absent]``

    Branches terminate when ``target`` joins the reached set (reliability 1)
    or no expandable edge remains (the excluded edges form a cut;
    reliability 0).  Edges into already-reached nodes are skipped outright —
    they cannot change reachability — which is the same pruning the RHH
    estimator exploits.

    ``max_depth`` guards against accidental use on large graphs; ``None``
    means unbounded.
    """
    if source == target:
        return 1.0
    indptr, targets, probs = graph.indptr, graph.targets, graph.probs
    reached = np.zeros(graph.node_count, dtype=bool)
    reached[source] = True
    # DFS stack of [node, next-out-edge-offset] drives expandable-edge order.
    stack = [[source, int(indptr[source])]]

    def recurse(depth: int) -> float:
        if max_depth is not None and depth > max_depth:
            raise RecursionError(
                f"factoring exceeded max_depth={max_depth}; graph too large"
            )
        # Find the next expandable edge in DFS order, recording state to undo.
        trail = []  # (kind, payload) operations for backtracking
        edge_id = -1
        while stack:
            node, offset = stack[-1]
            if offset >= indptr[node + 1]:
                trail.append(("pop", stack.pop()))
                continue
            neighbor = int(targets[offset])
            if reached[neighbor]:
                stack[-1][1] += 1
                trail.append(("advance", stack[-1]))
                continue
            edge_id = offset
            break

        if edge_id < 0:
            result = 0.0  # no expandable edge: E2 contains an s-t cut
        else:
            frame = stack[-1]
            neighbor = int(targets[edge_id])
            probability = float(probs[edge_id])
            frame[1] += 1  # both branches move past this edge on this frame

            # Branch 1: edge present -> neighbor becomes reached.
            if neighbor == target:
                include = 1.0
            else:
                reached[neighbor] = True
                stack.append([neighbor, int(indptr[neighbor])])
                include = recurse(depth + 1)
                stack.pop()
                reached[neighbor] = False

            # Branch 2: edge absent -> frame already advanced past it.
            exclude = recurse(depth + 1)

            frame[1] -= 1
            result = probability * include + (1.0 - probability) * exclude

        # Undo the expandable-edge scan.
        for kind, payload in reversed(trail):
            if kind == "pop":
                stack.append(payload)
            else:
                payload[1] -= 1
        return result

    return recurse(0)


def reliability_exact(
    graph: UncertainGraph, source: int, target: int
) -> float:
    """Exact reliability via the fastest applicable exact method."""
    if graph.edge_count <= 16:
        return reliability_by_enumeration(graph, source, target)
    return reliability_by_factoring(graph, source, target)


__all__ = [
    "MAX_ENUMERATION_EDGES",
    "reliability_by_enumeration",
    "reliability_by_factoring",
    "reliability_exact",
]
