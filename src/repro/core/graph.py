"""Uncertain graph data structure.

An :class:`UncertainGraph` is the triple ``(V, E, P)`` of the paper (§2.1): a
set of ``n`` dense integer nodes, ``m`` directed edges, and a probability
``P(e) in (0, 1]`` per edge.  The structure is *frozen* after construction and
stored in CSR (compressed sparse row) form so that the sampling estimators can
expand a node's out-edges with NumPy slices instead of Python loops.

Construction notes
------------------
* Parallel edges ``(u, v)`` are merged with the probability-OR
  ``1 - (1 - p1)(1 - p2)``: under independent possible-world semantics, two
  parallel edges are traversable iff at least one exists, which is exactly an
  OR of independent Bernoullis.  All six estimators therefore see an identical
  simple graph.
* Self-loops are dropped: they can never affect s-t reachability.
* Probability 0 is rejected (an impossible edge is a non-edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.util.validation import check_node, check_probability

EdgeTriple = Tuple[int, int, float]


def or_combine(p1: float, p2: float) -> float:
    """Probability that at least one of two independent edges exists."""
    return 1.0 - (1.0 - p1) * (1.0 - p2)


@dataclass(frozen=True)
class EdgeStatistics:
    """Summary of a graph's edge-probability distribution (paper Table 2)."""

    mean: float
    std: float
    quartiles: Tuple[float, float, float]

    def __str__(self) -> str:
        q1, q2, q3 = self.quartiles
        return (
            f"{self.mean:.2f} +/- {self.std:.2f}, "
            f"{{{q1:.3g}, {q2:.3g}, {q3:.3g}}}"
        )


class UncertainGraph:
    """A frozen directed uncertain graph in CSR form.

    Parameters
    ----------
    node_count:
        Number of nodes; node ids are ``0 .. node_count - 1``.
    edges:
        Iterable of ``(source, target, probability)`` triples.  Parallel
        edges are OR-merged and self-loops dropped (see module docstring).

    Attributes
    ----------
    indptr, targets, probs:
        Forward CSR: the out-edges of node ``u`` are positions
        ``indptr[u]:indptr[u + 1]`` of ``targets``/``probs``.  Edge ids are
        these CSR positions and are stable for the lifetime of the graph.
    """

    def __init__(self, node_count: int, edges: Iterable[EdgeTriple]) -> None:
        if node_count < 0:
            raise ValueError(f"node_count must be non-negative, got {node_count}")
        self.node_count = int(node_count)

        merged: Dict[Tuple[int, int], float] = {}
        for source, target, probability in edges:
            source = check_node(source, self.node_count, "source")
            target = check_node(target, self.node_count, "target")
            probability = check_probability(probability)
            if source == target:
                continue
            key = (source, target)
            if key in merged:
                merged[key] = or_combine(merged[key], probability)
            else:
                merged[key] = probability

        self.edge_count = len(merged)
        order = sorted(merged)
        sources = np.fromiter(
            (u for u, _ in order), dtype=np.int64, count=self.edge_count
        )
        self.targets = np.fromiter(
            (v for _, v in order), dtype=np.int64, count=self.edge_count
        )
        self.probs = np.fromiter(
            (merged[key] for key in order), dtype=np.float64, count=self.edge_count
        )
        self.indptr = np.zeros(self.node_count + 1, dtype=np.int64)
        np.add.at(self.indptr, sources + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)

        self._edge_sources = sources
        self._reverse: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: Mutation counter.  The graph itself stays frozen; the mutation
        #: layer (:mod:`repro.core.mutation`) builds *successor* graphs
        #: with ``version = predecessor + 1`` so caches that memoise
        #: content hashes (``repro.engine.cache.graph_fingerprint``) can
        #: tell a changed graph from an unchanged one without re-hashing.
        #: The rare owner that edits probabilities in place must bump this
        #: (see :func:`repro.core.mutation.set_edge_probability`).
        self.version = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_arrays(
        cls,
        node_count: int,
        sources: np.ndarray,
        targets: np.ndarray,
        probs: np.ndarray,
    ) -> "UncertainGraph":
        """Build from parallel NumPy arrays (fast path for generators)."""
        triples = zip(
            np.asarray(sources).tolist(),
            np.asarray(targets).tolist(),
            np.asarray(probs).tolist(),
        )
        return cls(node_count, triples)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def out_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, probabilities)`` views of ``node``'s out-edges."""
        start, stop = self.indptr[node], self.indptr[node + 1]
        return self.targets[start:stop], self.probs[start:stop]

    def out_edge_ids(self, node: int) -> range:
        """CSR edge-id range of ``node``'s out-edges."""
        return range(int(self.indptr[node]), int(self.indptr[node + 1]))

    def out_degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def edge_source(self, edge_id: int) -> int:
        """Source node of a CSR edge id."""
        return int(self._edge_sources[edge_id])

    @property
    def edge_sources(self) -> np.ndarray:
        """Per-edge source nodes aligned with :attr:`targets` (read-only).

        The vectorised counterpart of :meth:`edge_source`, for consumers
        that need whole-edge-set views — e.g. the importance sampler's
        occurrence counts and the BFS-stratified sampler's edge ordering.
        Treat it as immutable: it is the CSR backing array, not a copy.
        """
        return self._edge_sources

    def edge_probability(self, source: int, target: int) -> Optional[float]:
        """Probability of edge ``source -> target`` or ``None`` if absent."""
        start, stop = self.indptr[source], self.indptr[source + 1]
        position = np.searchsorted(self.targets[start:stop], target)
        if position < stop - start and self.targets[start + position] == target:
            return float(self.probs[start + position])
        return None

    def iter_edges(self) -> Iterator[EdgeTriple]:
        """Yield ``(source, target, probability)`` for every edge."""
        for edge_id in range(self.edge_count):
            yield (
                int(self._edge_sources[edge_id]),
                int(self.targets[edge_id]),
                float(self.probs[edge_id]),
            )

    # ------------------------------------------------------------------
    # Reverse CSR (built on demand; needed by BFS Sharing and ProbTree)
    # ------------------------------------------------------------------

    @property
    def reverse_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rev_indptr, rev_sources, rev_edge_ids)`` — in-edges per node.

        ``rev_edge_ids`` maps each reverse position back to the forward CSR
        edge id, so the forward ``probs`` array (and any per-edge index data)
        can be reused.
        """
        if self._reverse is None:
            order = np.argsort(self.targets, kind="stable")
            rev_indptr = np.zeros(self.node_count + 1, dtype=np.int64)
            np.add.at(rev_indptr, self.targets + 1, 1)
            np.cumsum(rev_indptr, out=rev_indptr)
            self._reverse = (rev_indptr, self._edge_sources[order], order)
        return self._reverse

    def in_degree(self, node: int) -> int:
        rev_indptr, _, _ = self.reverse_csr
        return int(rev_indptr[node + 1] - rev_indptr[node])

    def in_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(sources, forward edge ids)`` of ``node``'s in-edges."""
        rev_indptr, rev_sources, rev_edge_ids = self.reverse_csr
        start, stop = rev_indptr[node], rev_indptr[node + 1]
        return rev_sources[start:stop], rev_edge_ids[start:stop]

    # ------------------------------------------------------------------
    # Statistics and traversal helpers
    # ------------------------------------------------------------------

    def edge_statistics(self) -> EdgeStatistics:
        """Mean/SD/quartiles of edge probabilities (paper Table 2, col. 4)."""
        if self.edge_count == 0:
            return EdgeStatistics(0.0, 0.0, (0.0, 0.0, 0.0))
        quartiles = np.percentile(self.probs, [25, 50, 75])
        return EdgeStatistics(
            mean=float(self.probs.mean()),
            std=float(self.probs.std()),
            quartiles=(float(quartiles[0]), float(quartiles[1]), float(quartiles[2])),
        )

    def bfs_distances(self, source: int, max_hops: Optional[int] = None) -> np.ndarray:
        """Hop distances from ``source`` ignoring probabilities (-1 if unreached).

        Used by the workload generator to pick s-t pairs at a fixed hop
        distance (paper §3.1.3) and by ProbTree diagnostics.
        """
        check_node(source, self.node_count, "source")
        distances = np.full(self.node_count, -1, dtype=np.int64)
        distances[source] = 0
        frontier = [source]
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            hops += 1
            next_frontier: List[int] = []
            for node in frontier:
                start, stop = self.indptr[node], self.indptr[node + 1]
                for neighbor in self.targets[start:stop]:
                    if distances[neighbor] < 0:
                        distances[neighbor] = hops
                        next_frontier.append(int(neighbor))
            frontier = next_frontier
        return distances

    def memory_bytes(self) -> int:
        """Resident size of the CSR arrays (graph-only memory footprint)."""
        total = self.indptr.nbytes + self.targets.nbytes + self.probs.nbytes
        total += self._edge_sources.nbytes
        if self._reverse is not None:
            total += sum(array.nbytes for array in self._reverse)
        return total

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist to ``.npz`` (portable, exact)."""
        np.savez_compressed(
            Path(path),
            node_count=np.int64(self.node_count),
            sources=self._edge_sources,
            targets=self.targets,
            probs=self.probs,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "UncertainGraph":
        """Load a graph previously written with :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls.from_edge_arrays(
                int(data["node_count"]),
                data["sources"],
                data["targets"],
                data["probs"],
            )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"UncertainGraph(nodes={self.node_count}, edges={self.edge_count}, "
            f"probs={self.edge_statistics()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainGraph):
            return NotImplemented
        return (
            self.node_count == other.node_count
            and self.edge_count == other.edge_count
            and bool(np.array_equal(self.indptr, other.indptr))
            and bool(np.array_equal(self.targets, other.targets))
            and bool(np.allclose(self.probs, other.probs))
        )


class GraphBuilder:
    """Incremental builder for :class:`UncertainGraph`.

    Collects edges (with OR-merging of duplicates deferred to the graph
    constructor) and grows the node space on demand::

        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(1, 2, 0.3)
        graph = builder.build()
    """

    def __init__(self, node_count: int = 0) -> None:
        self._node_count = int(node_count)
        self._edges: List[EdgeTriple] = []

    def add_node(self) -> int:
        """Allocate and return a fresh node id."""
        node = self._node_count
        self._node_count += 1
        return node

    def add_edge(self, source: int, target: int, probability: float) -> None:
        """Add a directed probabilistic edge, growing the node space."""
        self._node_count = max(self._node_count, int(source) + 1, int(target) + 1)
        self._edges.append((int(source), int(target), float(probability)))

    def add_undirected_edge(self, u: int, v: int, probability: float) -> None:
        """Add both directions with the same probability (bi-directed edge).

        Matches the paper's treatment of social/co-authorship networks, whose
        edges are "bi-directed": two directed edges that exist independently.
        """
        self.add_edge(u, v, probability)
        self.add_edge(v, u, probability)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def build(self) -> UncertainGraph:
        return UncertainGraph(self._node_count, self._edges)


__all__ = [
    "UncertainGraph",
    "GraphBuilder",
    "EdgeStatistics",
    "EdgeTriple",
    "or_combine",
]
