"""Estimator registry: string keys to estimator factories.

The experiment runner, benchmarks, and examples all address estimators by
key, so sweeps over "all six methods" are data, not code.  The six keys of
the paper's study are in :data:`PAPER_ESTIMATORS`; ``lp`` (the uncorrected
Lazy Propagation) is registered too for the Fig. 5 experiment but excluded
from the default suite, mirroring the paper.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.estimators.base import Estimator
from repro.core.estimators.bfs_sharing import BFSSharingEstimator
from repro.core.estimators.importance import ImportanceSamplingEstimator
from repro.core.estimators.lazy_propagation import (
    LazyPropagationEstimator,
    LazyPropagationOriginal,
)
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.estimators.prob_tree import ProbTreeEstimator
from repro.core.estimators.recursive_rhh import (
    DynamicMCEstimator,
    RecursiveSamplingEstimator,
)
from repro.core.estimators.recursive_rss import RecursiveStratifiedEstimator
from repro.core.estimators.strata import BFSStratifiedEstimator
from repro.core.graph import UncertainGraph

_REGISTRY: Dict[str, Type[Estimator]] = {
    MonteCarloEstimator.key: MonteCarloEstimator,
    BFSSharingEstimator.key: BFSSharingEstimator,
    ProbTreeEstimator.key: ProbTreeEstimator,
    LazyPropagationEstimator.key: LazyPropagationEstimator,
    LazyPropagationOriginal.key: LazyPropagationOriginal,
    RecursiveSamplingEstimator.key: RecursiveSamplingEstimator,
    DynamicMCEstimator.key: DynamicMCEstimator,
    RecursiveStratifiedEstimator.key: RecursiveStratifiedEstimator,
    ImportanceSamplingEstimator.key: ImportanceSamplingEstimator,
    BFSStratifiedEstimator.key: BFSStratifiedEstimator,
}

#: The six estimators of the paper's study, in its presentation order.
PAPER_ESTIMATORS: List[str] = [
    "mc",
    "bfs_sharing",
    "prob_tree",
    "lp_plus",
    "rhh",
    "rss",
]

#: Methods with an offline index phase (paper §3.7).
INDEXED_ESTIMATORS: List[str] = ["bfs_sharing", "prob_tree"]

#: Recursive (variance-reduced) estimators (paper §2.4-2.5).
RECURSIVE_ESTIMATORS: List[str] = ["rhh", "rss"]

#: The post-paper variance-reduction sampler family (ROADMAP: importance
#: sampling with calibrated occurrence counts, BFS-distance strata).
#: Not part of :data:`PAPER_ESTIMATORS` — the paper's six-method study is
#: pinned — but registered, conformance-gated, and routable.
VARIANCE_SAMPLERS: List[str] = ["importance", "strata"]


def estimator_keys() -> List[str]:
    """All registered keys (including the uncorrected ``lp``)."""
    return sorted(_REGISTRY)


def estimator_class(key: str) -> Type[Estimator]:
    """Look up an estimator class by key."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown estimator {key!r}; known keys: {', '.join(sorted(_REGISTRY))}"
        ) from None


def create_estimator(key: str, graph: UncertainGraph, **options) -> Estimator:
    """Instantiate the estimator ``key`` on ``graph``.

    ``options`` are forwarded to the estimator constructor (e.g.
    ``threshold=`` for RHH/RSS, ``capacity=`` for BFS Sharing,
    ``estimator_factory=`` for ProbTree coupling).
    """
    return estimator_class(key)(graph, **options)


def register_estimator(cls: Type[Estimator]) -> Type[Estimator]:
    """Register a custom estimator class (usable as a decorator).

    Extension hook: downstream users can plug in their own estimators and
    reuse the full convergence/benchmark harness unchanged.
    """
    if not cls.key:
        raise ValueError(f"{cls.__name__} must define a non-empty `key`")
    if cls.key in _REGISTRY and _REGISTRY[cls.key] is not cls:
        raise ValueError(f"estimator key {cls.key!r} is already registered")
    _REGISTRY[cls.key] = cls
    return cls


def display_name(key: str) -> str:
    """Human-readable estimator name (as printed in the paper's tables)."""
    return estimator_class(key).display_name


__all__ = [
    "PAPER_ESTIMATORS",
    "INDEXED_ESTIMATORS",
    "RECURSIVE_ESTIMATORS",
    "VARIANCE_SAMPLERS",
    "estimator_keys",
    "estimator_class",
    "create_estimator",
    "register_estimator",
    "display_name",
]
