"""Graph mutation: versioned copy-on-write updates of an uncertain graph.

An :class:`~repro.core.graph.UncertainGraph` is frozen — every consumer
(estimator indexes, the engine's world stream, result-cache keys) is
built on that assumption.  Live serving still needs edge probabilities
to move (link-quality telemetry, influence weights, failures; the
paper's Table 15 measures exactly the index-maintenance cost such
updates incur).  This module reconciles the two with *copy-on-write*
updates: :func:`apply_update` never touches the input graph; it builds a
**successor** graph carrying the merged edge set and a bumped
``version`` counter.  In-flight computations keep the old immutable
graph (no torn reads, no new locks on the query path), the service
swaps in the successor atomically, and cache invalidation is exact by
construction — the successor's content hash
(:func:`repro.engine.cache.graph_fingerprint`) keys new cache entries
while the predecessor's entries stay valid *for the predecessor*.

Update semantics:

* ``set_edges`` assigns **exact** probabilities: an existing edge's
  probability is replaced (not OR-merged — OR-merging is construction
  semantics for parallel input edges, not update semantics), a missing
  edge is inserted.
* ``remove_edges`` deletes edges; removing an edge that does not exist
  is an error (the caller's view of the graph is stale — silently
  ignoring it would hide that).
* Self-loops, out-of-range nodes, and probabilities outside ``(0, 1]``
  are rejected exactly as construction rejects them.  The node set never
  changes (edge operations only).

The one sanctioned *in-place* edit, :func:`set_edge_probability`, exists
for owners of private graphs (tests, notebooks); it bumps
``graph.version`` so memoised fingerprints re-hash instead of serving
stale digests.  Shared graphs — anything a service or engine holds —
must go through :func:`apply_update`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.validation import check_node, check_probability

#: An update entry: ``(source, target, probability)`` for ``set_edges``,
#: ``(source, target)`` for ``remove_edges``.
EdgeAssignment = Tuple[int, int, float]
EdgePair = Tuple[int, int]


@dataclass(frozen=True)
class MutationResult:
    """The outcome of one :func:`apply_update` call.

    ``graph`` is the successor (``version == predecessor.version + 1``);
    the predecessor is untouched.  ``touched_edges`` lists every
    ``(source, target)`` pair whose probability or existence changed —
    the unit incremental index maintenance keys off
    (:meth:`repro.core.estimators.base.Estimator.apply_update`).
    ``structural`` is True iff the edge *set* changed (an add or a
    remove), the case that invalidates existence-dependent index
    structure rather than just probabilities.
    """

    graph: UncertainGraph
    touched_edges: Tuple[EdgePair, ...]
    structural: bool
    edges_set: int
    edges_added: int
    edges_removed: int


def _coerce_pair(entry: Sequence[int], what: str) -> EdgePair:
    parts = tuple(entry)
    if len(parts) < 2:
        raise ValueError(f"a {what} entry needs (source, target), got {entry!r}")
    return int(parts[0]), int(parts[1])


def apply_update(
    graph: UncertainGraph,
    set_edges: Iterable[EdgeAssignment] = (),
    remove_edges: Iterable[EdgePair] = (),
) -> MutationResult:
    """Build the successor of ``graph`` under the given edge operations.

    Raises :class:`ValueError` for malformed entries, duplicate
    operations on one edge, removal of a missing edge, or an update with
    no operations at all (an empty update signals a confused caller, not
    a no-op to wave through).
    """
    assignments: Dict[EdgePair, float] = {}
    for entry in set_edges:
        parts = tuple(entry)
        if len(parts) != 3:
            raise ValueError(
                f"a set_edges entry is (source, target, probability), "
                f"got {entry!r}"
            )
        source = check_node(int(parts[0]), graph.node_count, "source")
        target = check_node(int(parts[1]), graph.node_count, "target")
        if source == target:
            raise ValueError(
                f"self-loop ({source}, {source}) cannot be set: self-loops "
                f"never affect s-t reliability and are not stored"
            )
        probability = check_probability(float(parts[2]))
        key = (source, target)
        if key in assignments:
            raise ValueError(
                f"edge ({source}, {target}) appears more than once in "
                f"set_edges; one update assigns each edge at most once"
            )
        assignments[key] = probability

    removals = []
    removed_set = set()
    for entry in remove_edges:
        source, target = _coerce_pair(entry, "remove_edges")
        source = check_node(source, graph.node_count, "source")
        target = check_node(target, graph.node_count, "target")
        key = (source, target)
        if key in removed_set:
            raise ValueError(
                f"edge ({source}, {target}) appears more than once in "
                f"remove_edges"
            )
        if key in assignments:
            raise ValueError(
                f"edge ({source}, {target}) is both set and removed in one "
                f"update; pick one operation per edge"
            )
        removed_set.add(key)
        removals.append(key)

    if not assignments and not removals:
        raise ValueError(
            "an update must set or remove at least one edge"
        )

    merged: Dict[EdgePair, float] = {
        (u, v): p for u, v, p in graph.iter_edges()
    }
    edges_added = 0
    for key, probability in assignments.items():
        if key not in merged:
            edges_added += 1
        merged[key] = probability
    for key in removals:
        if key not in merged:
            raise ValueError(
                f"edge ({key[0]}, {key[1]}) cannot be removed: "
                f"it does not exist"
            )
        del merged[key]

    successor = UncertainGraph(
        graph.node_count,
        ((u, v, p) for (u, v), p in merged.items()),
    )
    successor.version = graph.version + 1

    touched = tuple(sorted(set(assignments) | removed_set))
    return MutationResult(
        graph=successor,
        touched_edges=touched,
        structural=bool(edges_added or removals),
        edges_set=len(assignments) - edges_added,
        edges_added=edges_added,
        edges_removed=len(removals),
    )


def set_edge_probability(
    graph: UncertainGraph, source: int, target: int, probability: float
) -> None:
    """Edit one existing edge's probability **in place** (owned graphs only).

    Bumps ``graph.version`` so version-aware memos (the fingerprint
    cache) re-hash.  The edge must exist — in-place edits cannot change
    the CSR structure.  Anything shared (a service's graph, a pool's
    pinned graph) must use :func:`apply_update` instead: in-place edits
    race against concurrent readers and invalidate nothing downstream.
    """
    source = check_node(int(source), graph.node_count, "source")
    target = check_node(int(target), graph.node_count, "target")
    probability = check_probability(float(probability))
    if graph.edge_probability(source, target) is None:
        raise ValueError(
            f"edge ({source}, {target}) does not exist; in-place edits "
            f"cannot add edges — use apply_update"
        )
    start, stop = graph.indptr[source], graph.indptr[source + 1]
    position = int(np.searchsorted(graph.targets[start:stop], target))
    graph.probs[start + position] = probability
    graph.version += 1


__all__ = [
    "EdgeAssignment",
    "EdgePair",
    "MutationResult",
    "apply_update",
    "set_edge_probability",
]
