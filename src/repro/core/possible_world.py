"""Possible-world semantics: sampling worlds and reachability inside them.

This module is the lowest-level sampling substrate (paper §2.1, Eqs. 1-2).
It provides:

* :func:`sample_world` — draw one deterministic graph ``G ⊑ G`` as an edge
  mask, with ``Pr(G)`` given by Eq. 1;
* :func:`world_probability` — evaluate Eq. 1 for a concrete mask;
* :func:`reachable_in_world` — the indicator ``I_G(s, t)``;
* :func:`sample_reachability` — the fused "sample edges lazily during BFS"
  kernel of Algorithm 1 (lines 10-26), shared by the MC estimator and by the
  conditioned fallbacks inside RHH/RSS.

The fused kernel supports *forced* edge states (``+1`` always present, ``-1``
always absent, ``0`` probabilistic), which is exactly the conditioning
``G(E1, E2)`` on inclusion/exclusion edge lists used by the recursive
estimators (paper Eq. 7).  A fully-forced state vector is a materialised
possible world; :meth:`ReachabilitySampler.reach_targets` sweeps one such
world for a whole target set at once, which is the primitive
:mod:`repro.engine` amortises across query batches (see
``docs/architecture.md``).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.bitset import concatenate_ranges
from repro.util.rng import SeedLike, ensure_generator

EDGE_FREE = 0
EDGE_PRESENT = 1
EDGE_ABSENT = -1


def sample_world(graph: UncertainGraph, rng: SeedLike = None) -> np.ndarray:
    """Sample one possible world; returns a boolean mask over edge ids."""
    generator = ensure_generator(rng)
    return generator.random(graph.edge_count) < graph.probs


def forced_from_mask(mask: np.ndarray) -> np.ndarray:
    """A world mask as a fully-forced edge-state vector (±1, no zeros).

    The result decides every edge, so kernels consuming it (e.g.
    :meth:`ReachabilitySampler.reach_targets` with ``rng=None``) draw no
    random numbers — the representation the batch engine sweeps.
    """
    return np.where(mask, EDGE_PRESENT, EDGE_ABSENT).astype(np.int8)


def world_probability(graph: UncertainGraph, mask: np.ndarray) -> float:
    """``Pr(G)`` of the world selected by ``mask`` (paper Eq. 1)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (graph.edge_count,):
        raise ValueError(
            f"mask must have shape ({graph.edge_count},), got {mask.shape}"
        )
    present = graph.probs[mask]
    absent = graph.probs[~mask]
    return float(np.prod(present) * np.prod(1.0 - absent))


def reachable_in_world(
    graph: UncertainGraph, mask: np.ndarray, source: int, target: int
) -> bool:
    """Indicator ``I_G(s, t)``: is ``target`` reachable under ``mask``?"""
    if source == target:
        return True
    visited = np.zeros(graph.node_count, dtype=bool)
    visited[source] = True
    queue = deque([source])
    while queue:
        node = queue.popleft()
        start, stop = graph.indptr[node], graph.indptr[node + 1]
        present = mask[start:stop]
        for neighbor in graph.targets[start:stop][present]:
            if not visited[neighbor]:
                if neighbor == target:
                    return True
                visited[neighbor] = True
                queue.append(int(neighbor))
    return False


class ReachabilitySampler:
    """Reusable lazy-sampling BFS kernel (Algorithm 1, inner loop).

    Allocates the visited array once and reuses it across samples via epoch
    stamping, so a K-sample MC run does no per-sample allocation beyond the
    frontier queue.  Thread-compatible: each estimator owns its own instance.
    """

    def __init__(self, graph: UncertainGraph) -> None:
        self._graph = graph
        self._visited_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._epoch = 0

    def sample(
        self,
        source: int,
        target: int,
        rng: np.random.Generator,
        forced: Optional[np.ndarray] = None,
        max_hops: Optional[int] = None,
    ) -> bool:
        """One lazily-sampled world: does ``source`` reach ``target``?

        Edges are sampled only when the BFS frontier touches them, and the
        walk stops as soon as ``target`` is visited (early termination,
        Alg. 1 lines 8/21).  ``forced`` conditions edges on inclusion
        (``EDGE_PRESENT``) / exclusion (``EDGE_ABSENT``) lists.
        ``max_hops`` bounds the walk, turning the indicator into the
        *distance-constrained* reachability of Jin et al. (paper §2.4/§2.9).

        The frontier is expanded one BFS *level* at a time with a flat
        gather over all of the level's CSR edge blocks, so the per-sample
        cost is a handful of NumPy calls per level rather than per node.
        """
        if source == target:
            return True
        graph = self._graph
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited_epoch
        visited[source] = epoch
        indptr, targets, probs = graph.indptr, graph.targets, graph.probs
        frontier = np.array([source], dtype=np.int64)
        hops = 0
        while frontier.size:
            if max_hops is not None and hops >= max_hops:
                break
            hops += 1
            edge_ids = concatenate_ranges(indptr[frontier], indptr[frontier + 1])
            if edge_ids.size == 0:
                break
            exists = rng.random(edge_ids.size) < probs[edge_ids]
            if forced is not None:
                states = forced[edge_ids]
                exists = (exists & (states != EDGE_ABSENT)) | (states == EDGE_PRESENT)
            candidates = targets[edge_ids[exists]]
            if candidates.size == 0:
                break
            fresh = candidates[visited[candidates] != epoch]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            visited[fresh] = epoch
            if visited[target] == epoch:
                return True
            frontier = fresh
        return False

    def reach_targets(
        self,
        source: int,
        targets: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        forced: Optional[np.ndarray] = None,
        max_hops: Optional[int] = None,
    ) -> np.ndarray:
        """Reachability indicators for *many* targets in one world.

        The same level-synchronous kernel as :meth:`sample`, generalised to
        a target set: the walk expands until every target is visited, the
        frontier dies out, or ``max_hops`` levels have been expanded, and
        returns a boolean array aligned with ``targets``.

        This is the sweep primitive of the batch engine (§3.7 world
        sharing): with ``rng=None`` every edge state must be decided by
        ``forced`` — i.e. ``forced`` *is* a fully materialised possible
        world — and no random numbers are drawn, so one sampled world can
        be swept once per source and amortised over all pending queries.
        """
        targets = np.asarray(targets, dtype=np.int64)
        if rng is None and forced is None:
            raise ValueError("reach_targets needs an rng or a fully forced world")
        graph = self._graph
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited_epoch
        visited[source] = epoch
        indptr, edge_targets, probs = graph.indptr, graph.targets, graph.probs
        frontier = np.array([source], dtype=np.int64)
        hops = 0
        while frontier.size and np.count_nonzero(visited[targets] != epoch):
            if max_hops is not None and hops >= max_hops:
                break
            hops += 1
            edge_ids = concatenate_ranges(indptr[frontier], indptr[frontier + 1])
            if edge_ids.size == 0:
                break
            if rng is None:
                exists = forced[edge_ids] == EDGE_PRESENT
            else:
                exists = rng.random(edge_ids.size) < probs[edge_ids]
                if forced is not None:
                    states = forced[edge_ids]
                    exists = (exists & (states != EDGE_ABSENT)) | (
                        states == EDGE_PRESENT
                    )
            candidates = edge_targets[edge_ids[exists]]
            if candidates.size == 0:
                break
            fresh = candidates[visited[candidates] != epoch]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            visited[fresh] = epoch
            frontier = fresh
        return visited[targets] == epoch

    def estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
        forced: Optional[np.ndarray] = None,
        max_hops: Optional[int] = None,
    ) -> float:
        """Hit-and-miss MC over ``samples`` lazily-sampled worlds (Eq. 3)."""
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        hits = 0
        for _ in range(samples):
            if self.sample(source, target, rng, forced, max_hops):
                hits += 1
        return hits / samples


__all__ = [
    "EDGE_FREE",
    "EDGE_PRESENT",
    "EDGE_ABSENT",
    "sample_world",
    "forced_from_mask",
    "world_probability",
    "reachable_in_world",
    "ReachabilitySampler",
]
