"""Possible-world semantics: sampling worlds and reachability inside them.

This module is the lowest-level sampling substrate (paper §2.1, Eqs. 1-2).
It provides:

* :func:`sample_world` — draw one deterministic graph ``G ⊑ G`` as an edge
  mask, with ``Pr(G)`` given by Eq. 1;
* :func:`world_probability` — evaluate Eq. 1 for a concrete mask;
* :func:`reachable_in_world` — the indicator ``I_G(s, t)``;
* :func:`sample_reachability` — the fused "sample edges lazily during BFS"
  kernel of Algorithm 1 (lines 10-26), shared by the MC estimator and by the
  conditioned fallbacks inside RHH/RSS.

The fused kernel supports *forced* edge states (``+1`` always present, ``-1``
always absent, ``0`` probabilistic), which is exactly the conditioning
``G(E1, E2)`` on inclusion/exclusion edge lists used by the recursive
estimators (paper Eq. 7).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.bitset import concatenate_ranges
from repro.util.rng import SeedLike, ensure_generator

EDGE_FREE = 0
EDGE_PRESENT = 1
EDGE_ABSENT = -1


def sample_world(graph: UncertainGraph, rng: SeedLike = None) -> np.ndarray:
    """Sample one possible world; returns a boolean mask over edge ids."""
    generator = ensure_generator(rng)
    return generator.random(graph.edge_count) < graph.probs


def world_probability(graph: UncertainGraph, mask: np.ndarray) -> float:
    """``Pr(G)`` of the world selected by ``mask`` (paper Eq. 1)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (graph.edge_count,):
        raise ValueError(
            f"mask must have shape ({graph.edge_count},), got {mask.shape}"
        )
    present = graph.probs[mask]
    absent = graph.probs[~mask]
    return float(np.prod(present) * np.prod(1.0 - absent))


def reachable_in_world(
    graph: UncertainGraph, mask: np.ndarray, source: int, target: int
) -> bool:
    """Indicator ``I_G(s, t)``: is ``target`` reachable under ``mask``?"""
    if source == target:
        return True
    visited = np.zeros(graph.node_count, dtype=bool)
    visited[source] = True
    queue = deque([source])
    while queue:
        node = queue.popleft()
        start, stop = graph.indptr[node], graph.indptr[node + 1]
        present = mask[start:stop]
        for neighbor in graph.targets[start:stop][present]:
            if not visited[neighbor]:
                if neighbor == target:
                    return True
                visited[neighbor] = True
                queue.append(int(neighbor))
    return False


class ReachabilitySampler:
    """Reusable lazy-sampling BFS kernel (Algorithm 1, inner loop).

    Allocates the visited array once and reuses it across samples via epoch
    stamping, so a K-sample MC run does no per-sample allocation beyond the
    frontier queue.  Thread-compatible: each estimator owns its own instance.
    """

    def __init__(self, graph: UncertainGraph) -> None:
        self._graph = graph
        self._visited_epoch = np.zeros(graph.node_count, dtype=np.int64)
        self._epoch = 0

    def sample(
        self,
        source: int,
        target: int,
        rng: np.random.Generator,
        forced: Optional[np.ndarray] = None,
        max_hops: Optional[int] = None,
    ) -> bool:
        """One lazily-sampled world: does ``source`` reach ``target``?

        Edges are sampled only when the BFS frontier touches them, and the
        walk stops as soon as ``target`` is visited (early termination,
        Alg. 1 lines 8/21).  ``forced`` conditions edges on inclusion
        (``EDGE_PRESENT``) / exclusion (``EDGE_ABSENT``) lists.
        ``max_hops`` bounds the walk, turning the indicator into the
        *distance-constrained* reachability of Jin et al. (paper §2.4/§2.9).

        The frontier is expanded one BFS *level* at a time with a flat
        gather over all of the level's CSR edge blocks, so the per-sample
        cost is a handful of NumPy calls per level rather than per node.
        """
        if source == target:
            return True
        graph = self._graph
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited_epoch
        visited[source] = epoch
        indptr, targets, probs = graph.indptr, graph.targets, graph.probs
        frontier = np.array([source], dtype=np.int64)
        hops = 0
        while frontier.size:
            if max_hops is not None and hops >= max_hops:
                break
            hops += 1
            edge_ids = concatenate_ranges(indptr[frontier], indptr[frontier + 1])
            if edge_ids.size == 0:
                break
            exists = rng.random(edge_ids.size) < probs[edge_ids]
            if forced is not None:
                states = forced[edge_ids]
                exists = (exists & (states != EDGE_ABSENT)) | (states == EDGE_PRESENT)
            candidates = targets[edge_ids[exists]]
            if candidates.size == 0:
                break
            fresh = candidates[visited[candidates] != epoch]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            visited[fresh] = epoch
            if visited[target] == epoch:
                return True
            frontier = fresh
        return False

    def estimate(
        self,
        source: int,
        target: int,
        samples: int,
        rng: np.random.Generator,
        forced: Optional[np.ndarray] = None,
        max_hops: Optional[int] = None,
    ) -> float:
        """Hit-and-miss MC over ``samples`` lazily-sampled worlds (Eq. 3)."""
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        hits = 0
        for _ in range(samples):
            if self.sample(source, target, rng, forced, max_hops):
                hits += 1
        return hits / samples


__all__ = [
    "EDGE_FREE",
    "EDGE_PRESENT",
    "EDGE_ABSENT",
    "sample_world",
    "world_probability",
    "reachable_in_world",
    "ReachabilitySampler",
]
