"""Lossless graph preprocessing: certain-edge contraction.

Several of the paper's probability models emit probability-1 edges (the
LastFM model assigns ``1/out_degree``, so degree-1 users get certain
edges).  Nodes mutually connected through certain edges are reachable from
each other in *every* possible world, so contracting each strongly
connected component of the certain subgraph into a super-node preserves
every s-t reliability exactly while shrinking the graph all estimators
then sample — the same flavour of simplification the recursive estimators
apply dynamically (paper §2.4-2.5), done once, offline, for free.

The contraction is exact: for original nodes ``u, v``,
``R(u, v) == R'(map[u], map[v])`` (and 1 when they share a component).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.graph import UncertainGraph

CERTAIN = 1.0


@dataclass(frozen=True)
class CertainContraction:
    """Result of contracting certain-edge strongly connected components."""

    graph: UncertainGraph  # the contracted graph
    node_map: np.ndarray  # original node id -> contracted node id
    component_count: int

    def map_pair(self, source: int, target: int) -> Tuple[int, int]:
        """Translate an original s-t pair into the contracted graph."""
        return int(self.node_map[source]), int(self.node_map[target])


def _certain_sccs(graph: UncertainGraph) -> Tuple[np.ndarray, int]:
    """Tarjan SCCs over the subgraph of probability-1 edges (iterative)."""
    n = graph.node_count
    indptr, targets, probs = graph.indptr, graph.targets, graph.probs

    index = np.full(n, -1, dtype=np.int64)  # discovery order
    lowlink = np.zeros(n, dtype=np.int64)
    component = np.full(n, -1, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: List[int] = []
    counter = 0
    components = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Iterative Tarjan: frames of (node, next-edge-offset).
        work = [(root, int(indptr[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, offset = work[-1]
            advanced = False
            while offset < indptr[node + 1]:
                edge = offset
                offset += 1
                if probs[edge] < CERTAIN:
                    continue
                neighbor = int(targets[edge])
                if index[neighbor] == -1:
                    work[-1] = (node, offset)
                    index[neighbor] = lowlink[neighbor] = counter
                    counter += 1
                    stack.append(neighbor)
                    on_stack[neighbor] = True
                    work.append((neighbor, int(indptr[neighbor])))
                    advanced = True
                    break
                if on_stack[neighbor]:
                    lowlink[node] = min(lowlink[node], index[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = components
                    if member == node:
                        break
                components += 1
    return component, components


def contract_certain_edges(graph: UncertainGraph) -> CertainContraction:
    """Contract certain-edge SCCs into super-nodes (reliability-preserving).

    Edges inside a component disappear (their connectivity is certain);
    edges across components keep their probabilities, with parallels
    OR-merged by the graph constructor — valid because distinct original
    edges are independent.
    """
    component, component_count = _certain_sccs(graph)
    edges = []
    for u, v, p in graph.iter_edges():
        cu, cv = int(component[u]), int(component[v])
        if cu != cv:
            edges.append((cu, cv, p))
    contracted = UncertainGraph(component_count, edges)
    return CertainContraction(
        graph=contracted, node_map=component, component_count=component_count
    )


def certain_edge_fraction(graph: UncertainGraph) -> float:
    """Fraction of edges with probability exactly 1 (contraction payoff)."""
    if graph.edge_count == 0:
        return 0.0
    return float((graph.probs >= CERTAIN).mean())


__all__ = [
    "CertainContraction",
    "contract_certain_edges",
    "certain_edge_fraction",
]
