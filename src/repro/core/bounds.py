"""Polynomial-time reliability bounds (the paper's Fig. 2 taxonomy).

The paper's problem-space map (Fig. 2) places "polynomial-time upper/lower
bounds" and the "most reliable path" next to the sampling estimators this
library centres on.  Both are implemented here — they are useful on their
own (instant sanity bands around any estimate) and power the test suite's
bracketing property ``lower <= R(s, t) <= upper``.

* **Lower bound** — the most reliable s-t path: one specific world family
  where the whole path exists has probability ``prod p(e)``, so
  ``R(s, t) >= max over paths prod p(e)``.  Computed by Dijkstra on edge
  weights ``-log p(e)`` (Chen et al. / Kimura-Saito's most probable path).
* **Upper bound** — a minimum s-t edge cut: every s-t connection crosses
  any cut ``C``, so ``R(s, t) <= 1 - prod_{e in C}(1 - p(e))``.  The best
  such cut minimises that probability, i.e. a min cut under capacities
  ``-log(1 - p(e))`` (Edmonds-Karp on :mod:`repro.util.flow`).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.flow import max_flow
from repro.util.validation import check_node


@dataclass(frozen=True)
class PathBound:
    """Most reliable s-t path: the probability lower bound and its witness."""

    probability: float
    path: Tuple[int, ...]  # node sequence, empty when t is unreachable


@dataclass(frozen=True)
class CutBound:
    """Minimum-cut upper bound and the witnessing cut's edge endpoints."""

    probability: float
    cut: Tuple[Tuple[int, int], ...]  # (source, target) pairs, possibly empty


def most_reliable_path(
    graph: UncertainGraph, source: int, target: int
) -> PathBound:
    """Dijkstra for the s-t path maximising ``prod p(e)`` (lower bound).

    Returns probability 0 and an empty path when ``target`` is unreachable;
    probability 1 and the trivial path when ``source == target``.
    """
    check_node(source, graph.node_count, "source")
    check_node(target, graph.node_count, "target")
    if source == target:
        return PathBound(1.0, (source,))

    indptr, targets, probs = graph.indptr, graph.targets, graph.probs
    distance = np.full(graph.node_count, np.inf)
    parent = np.full(graph.node_count, -1, dtype=np.int64)
    distance[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, node = heapq.heappop(heap)
        if node == target:
            break
        if dist > distance[node]:
            continue
        start, stop = indptr[node], indptr[node + 1]
        for offset in range(start, stop):
            neighbor = int(targets[offset])
            weight = -math.log(probs[offset]) if probs[offset] < 1.0 else 0.0
            candidate = dist + weight
            if candidate < distance[neighbor]:
                distance[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))

    if not np.isfinite(distance[target]):
        return PathBound(0.0, ())
    path = [target]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return PathBound(float(math.exp(-distance[target])), tuple(path))


def min_cut_upper_bound(
    graph: UncertainGraph, source: int, target: int
) -> CutBound:
    """Minimum-cut reliability upper bound.

    Any s-t edge cut ``C`` gives ``R <= 1 - prod_{e in C}(1 - p(e))``; the
    tightest such cut minimises ``sum -log(1 - p(e))``, a min-cut problem.
    Probability-1 edges get infinite capacity (a cut through them is
    vacuous: bound 1.0).
    """
    check_node(source, graph.node_count, "source")
    check_node(target, graph.node_count, "target")
    if source == target:
        return CutBound(1.0, ())

    edge_list = list(graph.iter_edges())
    flow_edges = []
    for u, v, p in edge_list:
        capacity = float("inf") if p >= 1.0 else -math.log1p(-p)
        flow_edges.append((u, v, capacity))
    result = max_flow(graph.node_count, flow_edges, source, target)
    if result.value == float("inf"):
        # Every cut contains a certain edge: no information.
        return CutBound(1.0, ())
    # 1 - prod(1 - p) over the cut == 1 - exp(-min cut capacity).
    bound = 1.0 - math.exp(-result.value)
    cut = tuple((edge_list[i][0], edge_list[i][1]) for i in result.cut_edges)
    return CutBound(float(min(1.0, bound)), cut)


def reliability_bounds(
    graph: UncertainGraph, source: int, target: int
) -> Tuple[float, float]:
    """``(lower, upper)`` polynomial-time bracket around ``R(s, t)``."""
    lower = most_reliable_path(graph, source, target).probability
    upper = min_cut_upper_bound(graph, source, target).probability
    return lower, upper


__all__ = [
    "PathBound",
    "CutBound",
    "most_reliable_path",
    "min_cut_upper_bound",
    "reliability_bounds",
]
