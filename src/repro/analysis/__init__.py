"""``repro.analysis`` — the AST-based invariant analyzer behind
``repro lint``.

Three rule families keep the reproduction's contracts honest at review
time instead of at test time:

* determinism (``D101``-``D103``): no global-state RNG, no wall-clock
  values in results or cache keys, no unordered iteration feeding
  result-bearing folds;
* lock discipline (``L201``-``L203``): ``# guarded-by:`` annotated
  attributes are only written under their lock, acquisitions respect
  the declared ``# lock-order:``, and locked writes are annotated;
* wire contract (``W301``-``W303``): strict ``from_dict`` on every
  request type, and ``ENDPOINTS`` / HTTP routes / ``docs/api.md``
  agree.

See ``docs/analysis.md`` for the catalog, the annotation grammar, and
the suppression syntax (``# lint: ok[RULE] reason``).
"""

from .base import Finding
from .runner import (
    analyze_file,
    analyze_files,
    analyze_repo,
    find_repo_root,
    wire_findings,
)

__all__ = [
    "Finding",
    "analyze_file",
    "analyze_files",
    "analyze_repo",
    "find_repo_root",
    "wire_findings",
]
