"""Lock-discipline rules: L201 unguarded writes, L202 lock-order
inversions, L203 annotation gaps.

The concurrency model (PR 5, ``docs/architecture.md``) splits the
facade's state across small locks with a fixed acquisition hierarchy.
The convention is declarative: every shared attribute carries a
trailing ``# guarded-by: <lockname>`` comment where it is initialised,
and each class with nested acquisitions declares
``# lock-order: outer -> ... -> inner`` in its body.  The analyzer
then verifies mechanically what code review has to eyeball:

* **L201** — every write to a guarded attribute happens lexically
  inside ``with self.<lockname>:`` (or in a method that holds the lock
  by convention: ``*_locked`` suffix when the class has a single lock,
  an explicit ``# holds: <lockname>`` def-line comment, ``__init__``,
  or an ``# init-only`` method that runs before the object is shared).
  Module-level globals use the same grammar with a module lock name.
* **L202** — no ``with`` nesting acquires a declared lock while
  holding one that comes later in the declared order.
* **L203** — once a class opts into the convention, any write under a
  lock to an *unannotated* attribute is an annotation gap: either the
  attribute is shared (annotate it) or the lock is incidental (say so
  with a suppression).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from .base import (
    ClassInfo,
    Finding,
    SourceFile,
    held_locks,
    iter_statement_global_writes,
    iter_statement_writes,
)

L201 = "L201"
L202 = "L202"
L203 = "L203"

_WRITE_VERB = {
    "assign": "assignment to",
    "del": "deletion of",
    "item": "item write to",
    "mutate": "in-place mutation of",
}


def check(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    for info in source.classes():
        if not info.audited:
            continue
        for method in info.methods():
            if info.method_exempt(source, method):
                continue
            findings.extend(_check_method(source, info, method))
    findings.extend(_check_module_globals(source))
    return sorted(findings)


def _check_method(
    source: SourceFile, info: ClassInfo, method: ast.FunctionDef
) -> Iterator[Finding]:
    initial = info.method_held_locks(source, method)
    known_locks = set(info.lock_order) | info.lock_names()
    for statement, held, stack in held_locks(method, initial):
        if isinstance(statement, ast.With) and info.lock_order:
            yield from _order_findings(source, info, statement, stack)
        for node, kind, attr in iter_statement_writes(statement):
            lock = info.guarded.get(attr)
            if lock is not None and lock not in held:
                finding = source.finding(
                    node,
                    L201,
                    f"{_WRITE_VERB[kind]} `self.{attr}` (guarded-by {lock}) "
                    f"outside `with self.{lock}:` in {info.name}.{method.name}",
                )
                if finding is not None:
                    yield finding
            elif lock is None and held and attr not in ("__dict__",):
                # Ignore writes guarded only by locks the class does not
                # declare (e.g. a borrowed registry lock).
                if not (held & known_locks):
                    continue
                finding = source.finding(
                    node,
                    L203,
                    f"`self.{attr}` is written under "
                    f"`{', '.join(sorted(held & known_locks))}` but carries no "
                    "`# guarded-by:` annotation; annotate it or suppress with "
                    "a justification",
                )
                if finding is not None:
                    yield finding


def _order_findings(
    source: SourceFile, info: ClassInfo, statement: ast.With, stack: List[str]
) -> Iterator[Finding]:
    order = {name: index for index, name in enumerate(info.lock_order)}
    declared_stack = [name for name in stack if name in order]
    acquired = [
        name
        for name in _with_lock_names_ordered(statement)
        if name in order and name not in declared_stack
    ]
    for name in acquired:
        inverted = [held for held in declared_stack if order[held] > order[name]]
        if inverted:
            finding = source.finding(
                statement,
                L202,
                f"acquires `{name}` while holding `{inverted[-1]}`, inverting "
                f"declared lock-order {' -> '.join(info.lock_order)}",
            )
            if finding is not None:
                yield finding


def _with_lock_names_ordered(statement: ast.With) -> List[str]:
    names: List[str] = []
    for item in statement.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            names.append(expr.attr)
        elif isinstance(expr, ast.Name):
            names.append(expr.id)
    return names


def _check_module_globals(source: SourceFile) -> Iterator[Finding]:
    guards = source.module_guards()
    if not guards:
        return
    names = set(guards)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for statement, held, _stack in held_locks(node):
            for write, kind, name in iter_statement_global_writes(statement, names):
                lock = guards[name]
                if lock in held:
                    continue
                finding = source.finding(
                    write,
                    L201,
                    f"{_WRITE_VERB[kind]} module global `{name}` (guarded-by "
                    f"{lock}) outside `with {lock}:` in {node.name}",
                )
                if finding is not None:
                    yield finding
