"""Determinism rules: D101 global-state RNG, D102 wall-clock taint,
D103 unordered iteration.

The reproduction's contract is that every estimate is a pure function
of ``(graph, method, seed, query)`` and that serial, parallel,
vectorized, and distributed evaluation are bit-identical.  Three code
shapes break that silently:

* **D101** — drawing from interpreter-global RNG state
  (``random.random()``, ``np.random.shuffle(...)``): the result then
  depends on everything else that touched the stream.  All randomness
  must come from a ``numpy`` ``Generator`` derived in ``util/rng.py``.
* **D102** — a wall-clock read (``time.time``, ``datetime.now``)
  flowing into a cache key, fingerprint, seed, or estimator result.
  Monotonic/perf counters are fine: they only feed telemetry.
* **D103** — iterating a ``set``, or lock-free iterating a
  ``guarded-by``-annotated shared collection, without ``sorted(...)``:
  the fold order (and any float accumulation) then depends on hash
  seeds or concurrent insertion order.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from .base import ClassInfo, Finding, SourceFile, dotted_name, held_locks

D101 = "D101"
D102 = "D102"
D103 = "D103"

#: ``numpy.random`` attributes that are constructors, not global-state
#: draws.  Capitalised names (Generator, SeedSequence, PCG64, ...) are
#: always allowed; these are the lowercase exceptions.
_NP_RANDOM_ALLOWED = frozenset({"default_rng"})

_RNG_EXEMPT_SUFFIXES = ("util/rng.py", "util\\rng.py")

_WALL_CLOCK_EXACT = frozenset({"time.time", "time.time_ns"})
_WALL_CLOCK_TAILS = frozenset({"now", "utcnow", "today"})
_WALL_CLOCK_OWNERS = frozenset({"datetime", "date", "dt"})

#: A call whose name contains one of these receives deterministic
#: identity material; feeding it wall-clock data poisons results.
_SINK_FRAGMENTS = ("key", "fingerprint", "substream", "seed", "hash")
_SINK_KWARGS = frozenset({"seed", "rng"})
_RESULT_FUNC_PREFIXES = ("estimate", "evaluate", "sample", "world")

_SORT_WRAPPERS = frozenset({"list", "tuple", "reversed", "enumerate"})
_DICT_VIEWS = frozenset({"items", "keys", "values"})


def check(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_check_global_rng(source))
    findings.extend(_check_wall_clock(source))
    findings.extend(_check_unordered_iteration(source))
    return sorted(findings)


# ---------------------------------------------------------------------------
# D101 — global-state RNG


def _check_global_rng(source: SourceFile) -> List[Finding]:
    if source.path.replace("\\", "/").endswith("util/rng.py"):
        return []
    findings: List[Finding] = []
    numpy_aliases, numpy_random_aliases = _numpy_aliases(source.tree)
    for node in ast.walk(source.tree):
        finding = _import_violation(source, node)
        if finding is not None:
            findings.append(finding)
            continue
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        offender = _np_random_attr(name, numpy_aliases, numpy_random_aliases)
        if offender and offender[0].islower() and offender not in _NP_RANDOM_ALLOWED:
            finding = source.finding(
                node,
                D101,
                f"global-state RNG call `{name}`; derive a Generator via "
                "`repro.util.rng` (stable_substream / spawn_generators) instead",
            )
            if finding is not None:
                findings.append(finding)
    return findings


def _numpy_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names bound to the ``numpy`` module and to ``numpy.random``."""

    numpy_names: Set[str] = set()
    random_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    target = alias.asname
                    if target is None:
                        numpy_names.add("numpy")
                    else:
                        random_names.add(target)
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    random_names.add(alias.asname or "random")
    return numpy_names, random_names


def _np_random_attr(
    name: str, numpy_aliases: Set[str], numpy_random_aliases: Set[str]
) -> Optional[str]:
    parts = name.split(".")
    if len(parts) == 3 and parts[0] in numpy_aliases and parts[1] == "random":
        return parts[2]
    if len(parts) == 2 and parts[0] in numpy_random_aliases:
        return parts[1]
    return None


def _import_violation(source: SourceFile, node: ast.AST) -> Optional[Finding]:
    """The stdlib ``random`` module is banned outright in scoped code."""

    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                return source.finding(
                    node,
                    D101,
                    "stdlib `random` is interpreter-global state; use "
                    "`repro.util.rng` generators instead",
                )
    elif isinstance(node, ast.ImportFrom) and node.module == "random":
        return source.finding(
            node,
            D101,
            "stdlib `random` is interpreter-global state; use "
            "`repro.util.rng` generators instead",
        )
    elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
        bad = [
            alias.name
            for alias in node.names
            if alias.name[0].islower() and alias.name not in _NP_RANDOM_ALLOWED
        ]
        if bad:
            return source.finding(
                node,
                D101,
                f"global-state RNG import from numpy.random: {', '.join(bad)}",
            )
    return None


# ---------------------------------------------------------------------------
# D102 — wall-clock reads flowing into results or identity material


def _check_wall_clock(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    for function in _iter_functions(source.tree):
        findings.extend(_check_function_clock(source, function))
    return findings


def _is_wall_clock_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    if name in _WALL_CLOCK_EXACT or name.endswith(".time.time"):
        return True
    parts = name.split(".")
    return (
        len(parts) >= 2
        and parts[-1] in _WALL_CLOCK_TAILS
        and parts[-2] in _WALL_CLOCK_OWNERS
    )


def _contains_wall_clock(node: ast.AST, tainted: Set[str]) -> bool:
    for child in ast.walk(node):
        if _is_wall_clock_call(child):
            return True
        if isinstance(child, ast.Name) and child.id in tainted:
            return True
    return False


def _check_function_clock(
    source: SourceFile, function: ast.FunctionDef
) -> Iterator[Finding]:
    tainted: Set[str] = set()
    returns_results = function.name.startswith(_RESULT_FUNC_PREFIXES)
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and _contains_wall_clock(node.value, tainted):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
        elif isinstance(node, ast.Call):
            finding = _clock_sink(source, node, tainted)
            if finding is not None:
                yield finding
        elif isinstance(node, ast.Return) and returns_results:
            if node.value is not None and _contains_wall_clock(node.value, tainted):
                finding = source.finding(
                    node,
                    D102,
                    f"wall-clock value returned from result-bearing function "
                    f"`{function.name}`; use the request seed or a monotonic "
                    "counter for telemetry",
                )
                if finding is not None:
                    yield finding


def _clock_sink(
    source: SourceFile, call: ast.Call, tainted: Set[str]
) -> Optional[Finding]:
    name = dotted_name(call.func) or ""
    tail = name.rsplit(".", 1)[-1].lower()
    is_sink = any(fragment in tail for fragment in _SINK_FRAGMENTS)
    poisoned = [arg for arg in call.args if _contains_wall_clock(arg, tainted)]
    poisoned_kwargs = [
        keyword
        for keyword in call.keywords
        if keyword.value is not None and _contains_wall_clock(keyword.value, tainted)
    ]
    if is_sink and (poisoned or poisoned_kwargs):
        return source.finding(
            call,
            D102,
            f"wall-clock value flows into `{name}`; cache keys, fingerprints "
            "and seeds must be pure in (graph, method, seed, query)",
        )
    for keyword in poisoned_kwargs:
        if keyword.arg in _SINK_KWARGS:
            return source.finding(
                call,
                D102,
                f"wall-clock value passed as `{keyword.arg}=` to `{name}`; "
                "seeds must come from the request, not the clock",
            )
    return None


# ---------------------------------------------------------------------------
# D103 — unordered iteration feeding results


def _check_unordered_iteration(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    module_guards = source.module_guards()
    # Set iteration (hash order) is wrong regardless of lock context:
    # check every function, methods included.
    for info in source.classes():
        for method in info.methods():
            findings.extend(_set_iteration_findings(source, method, info))
    for function in _iter_functions(source.tree, top_level_only=True):
        findings.extend(_set_iteration_findings(source, function, None))
    # Guarded collections are only hazardous when read lock-free: under
    # the guard, iteration sees one consistent, reproducible snapshot.
    for info in source.classes():
        for method in info.methods():
            if info.method_exempt(source, method):
                continue
            initial = info.method_held_locks(source, method)
            for statement, held, _stack in held_locks(method, initial):
                for iterator in _statement_iteration_sites(statement):
                    guarded = _guarded_collection(iterator, info, module_guards)
                    if guarded is None:
                        continue
                    attr, lock = guarded
                    if lock in held:
                        continue
                    finding = source.finding(
                        iterator,
                        D103,
                        f"lock-free iteration over `{attr}` (guarded-by {lock}) "
                        "without `sorted(...)`; concurrent insertion order would "
                        "leak into the fold order",
                    )
                    if finding is not None:
                        findings.append(finding)
    return findings


def _set_iteration_findings(
    source: SourceFile, function: ast.FunctionDef, info: Optional[ClassInfo]
) -> Iterator[Finding]:
    local_sets = _local_set_names(function)
    for iterator in _all_iteration_sites(function):
        finding = _set_iteration_finding(source, iterator, info, local_sets)
        if finding is not None:
            yield finding


def _all_iteration_sites(node: ast.AST) -> Iterator[ast.expr]:
    """Every expression iterated by loops/comprehensions under ``node``."""

    for child in ast.walk(node):
        if isinstance(child, ast.For):
            yield child.iter
        elif isinstance(child, _COMPREHENSIONS):
            for generator in child.generators:
                yield generator.iter


def _statement_iteration_sites(statement: ast.stmt) -> Iterator[ast.expr]:
    """Iteration sites in the statement's own header, not its blocks.

    :func:`held_locks` yields nested statements separately (with their
    own lock context), so this deliberately stays shallow.
    """

    roots: List[ast.AST] = []
    if isinstance(statement, ast.For):
        yield statement.iter
        roots.append(statement.iter)
    else:
        for name in ("value", "test", "msg", "exc"):
            child = getattr(statement, name, None)
            if isinstance(child, ast.AST):
                roots.append(child)
        if isinstance(statement, ast.Assign):
            roots.extend(statement.targets)
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            roots.append(statement.target)
    for root in roots:
        for child in ast.walk(root):
            if isinstance(child, _COMPREHENSIONS):
                for generator in child.generators:
                    yield generator.iter


_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _strip_wrappers(expr: ast.expr) -> ast.expr:
    while isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name in _SORT_WRAPPERS and expr.args:
            expr = expr.args[0]
        else:
            break
    return expr


def _is_sorted_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and dotted_name(expr.func) == "sorted"
    )


def _set_iteration_finding(
    source: SourceFile,
    iterator: ast.expr,
    info: Optional[ClassInfo],
    local_sets: Set[str],
) -> Optional[Finding]:
    expr = _strip_wrappers(iterator)
    if _is_sorted_call(expr):
        return None
    described = _set_expression(expr, info, local_sets)
    if described is None:
        return None
    return source.finding(
        iterator,
        D103,
        f"iteration over unordered set {described} without `sorted(...)`; "
        "set order depends on hash seeding",
    )


def _set_expression(
    expr: ast.expr, info: Optional[ClassInfo], local_sets: Set[str]
) -> Optional[str]:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "literal"
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name in {"set", "frozenset"}:
            return f"`{name}(...)`"
    if isinstance(expr, ast.Name) and expr.id in local_sets:
        return f"`{expr.id}`"
    if (
        info is not None
        and isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in info.set_attrs
    ):
        return f"`self.{expr.attr}`"
    return None


def _local_set_names(scope: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            value = node.value
            is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and dotted_name(value.func) in {"set", "frozenset"}
            )
            if is_set:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _guarded_collection(
    iterator: ast.expr, info: ClassInfo, module_guards: Dict[str, str]
) -> Optional[Tuple[str, str]]:
    """``(attr, lock)`` when iterating a guarded collection or its view."""

    expr = _strip_wrappers(iterator)
    if _is_sorted_call(expr):
        return None
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _DICT_VIEWS
    ):
        expr = expr.func.value
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in info.guarded
    ):
        return f"self.{expr.attr}", info.guarded[expr.attr]
    if isinstance(expr, ast.Name) and expr.id in module_guards:
        return expr.id, module_guards[expr.id]
    return None


def _iter_functions(
    tree: ast.Module, top_level_only: bool = False
) -> Iterator[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    if top_level_only:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node
        return
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
