"""Drives the rule families over files and over the repository.

Per-file rules (determinism, locks) run on any ``.py`` file handed to
them; the wire-contract rules are repo-level, pinned to the three
files that each hold a copy of the endpoint surface.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from . import determinism, locks, wire
from .base import Finding, SourceFile

#: Directories never scanned, wherever they appear.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

#: The repo-level wire-contract triple, relative to the repo root.
WIRE_SERVICE = Path("src/repro/api/service.py")
WIRE_TYPES = Path("src/repro/api/types.py")
WIRE_SERVER = Path("src/repro/serve/server.py")
WIRE_DOCS = Path("docs/api.md")


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(child.parts):
                    yield child
        elif path.suffix == ".py":
            yield path


def analyze_file(path: Path, text: Optional[str] = None) -> List[Finding]:
    """Run the per-file rule families on one module."""

    try:
        source = SourceFile.parse(path, text=text)
    except SyntaxError as error:
        return [
            Finding(
                path=str(path),
                line=error.lineno or 1,
                col=error.offset or 0,
                rule="E000",
                message=f"syntax error: {error.msg}",
            )
        ]
    findings = determinism.check(source)
    findings.extend(locks.check(source))
    return sorted(findings)


def analyze_files(paths: Iterable[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(analyze_file(path))
    return sorted(findings)


def wire_findings(root: Path) -> List[Finding]:
    """Run the wire-contract checks against the repo's canonical files."""

    findings: List[Finding] = []
    types_path = root / WIRE_TYPES
    service_path = root / WIRE_SERVICE
    server_path = root / WIRE_SERVER
    docs_path = root / WIRE_DOCS
    if types_path.is_file():
        findings.extend(wire.check_request_types(types_path))
    if service_path.is_file() and server_path.is_file():
        findings.extend(wire.check_endpoint_routes(service_path, server_path))
    if server_path.is_file() and docs_path.is_file():
        findings.extend(wire.check_docs_table(server_path, docs_path))
    return sorted(findings)


def find_repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ancestor holding ``src/repro`` (falls back to the package)."""

    candidates = [start or Path.cwd()]
    package_root = Path(__file__).resolve().parents[3]
    candidates.append(package_root)
    for candidate in candidates:
        current = candidate.resolve()
        while True:
            if (current / "src" / "repro").is_dir():
                return current
            if current.parent == current:
                break
            current = current.parent
    return None


def analyze_repo(
    root: Path, files: Optional[Iterable[Path]] = None
) -> List[Finding]:
    """Full analysis: per-file rules over ``src/repro`` plus wire checks.

    ``files`` restricts the per-file pass (the ``--changed`` mode); the
    wire checks always run against the canonical triple because a
    change to any one of them can break the agreement.
    """

    if files is None:
        scan: List[Path] = [root / "src" / "repro"]
    else:
        src_root = (root / "src" / "repro").resolve()
        scan = [
            path
            for path in files
            if path.suffix == ".py" and _is_relative_to(path.resolve(), src_root)
        ]
    findings = analyze_files(scan)
    findings.extend(wire_findings(root))
    return sorted(findings)


def _is_relative_to(path: Path, root: Path) -> bool:
    try:
        path.relative_to(root)
    except ValueError:
        return False
    return True
