"""Wire-contract rules: W301 strict ``from_dict``, W302 endpoint/route
drift, W303 docs-table drift.

The facade, the HTTP layer, and the operator docs each hold a copy of
the endpoint surface; PR 8 showed they drift silently.  These checks
pin the three copies together:

* **W301** — every ``*Request`` dataclass in ``api/types.py`` defines
  ``from_dict`` and rejects unknown keys (a ``_reject_unknown_keys``
  call), so malformed payloads keep producing structured 400s instead
  of silently dropping fields.
* **W302** — every name in ``ReliabilityService.ENDPOINTS`` maps to a
  route in ``serve/server.py`` (``/v1/<name>`` with ``_`` spelled as
  ``/``), and every POST route maps back to an endpoint.  Endpoints
  that are deliberately CLI-only carry ``# wire: local-only``.
* **W303** — every HTTP route has a row in the endpoint table of
  ``docs/api.md``, and every ``/v1/...`` path in that table is a real
  route.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List, Optional, Set, Tuple

from .base import Finding, SourceFile, dotted_name, has_local_only_marker

W301 = "W301"
W302 = "W302"
W303 = "W303"

_DOC_PATH_RE = re.compile(r"/v1/[a-z][a-z0-9/_-]*")


def check_request_types(types_path: Path) -> List[Finding]:
    """W301: every ``*Request`` class has a strict ``from_dict``."""

    source = SourceFile.parse(types_path)
    findings: List[Finding] = []
    for node in source.tree.body:
        if not isinstance(node, ast.ClassDef) or not node.name.endswith("Request"):
            continue
        from_dict = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "from_dict"
            ),
            None,
        )
        if from_dict is None:
            finding = source.finding(
                node,
                W301,
                f"request type `{node.name}` has no `from_dict` constructor; "
                "wire payloads must decode through one strict path",
            )
        elif not _calls_reject_unknown_keys(from_dict):
            finding = source.finding(
                from_dict,
                W301,
                f"`{node.name}.from_dict` never calls `_reject_unknown_keys`; "
                "unknown payload keys would be silently dropped instead of "
                "producing a structured 400",
            )
        else:
            finding = None
        if finding is not None:
            findings.append(finding)
    return sorted(findings)


def _calls_reject_unknown_keys(function: ast.FunctionDef) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            if name.rsplit(".", 1)[-1] == "_reject_unknown_keys":
                return True
    return False


def check_endpoint_routes(service_path: Path, server_path: Path) -> List[Finding]:
    """W302: ``ENDPOINTS`` and the HTTP routes agree both ways."""

    service = SourceFile.parse(service_path)
    server = SourceFile.parse(server_path)
    endpoints = _collect_endpoints(service)
    post_routes, get_paths = _collect_routes(server)
    if endpoints is None:
        return [
            Finding(
                path=service.path,
                line=1,
                col=0,
                rule=W302,
                message="no `ENDPOINTS = (...)` tuple of string constants found",
            )
        ]
    findings: List[Finding] = []
    routed = set(post_routes) | set(get_paths)
    for name, node, local_only in endpoints:
        if local_only:
            continue
        expected = "/v1/" + name.replace("_", "/")
        if expected not in routed:
            finding = service.finding(
                node,
                W302,
                f"endpoint `{name}` has no HTTP route `{expected}` in "
                f"{server.path}; add a handler or mark it `# wire: local-only`",
            )
            if finding is not None:
                findings.append(finding)
    endpoint_names = {name for name, _node, _local in endpoints}
    for path, node in post_routes.items():
        if _route_to_name(path) not in endpoint_names:
            finding = server.finding(
                node,
                W302,
                f"POST route `{path}` has no matching entry in "
                f"ReliabilityService.ENDPOINTS ({service.path})",
            )
            if finding is not None:
                findings.append(finding)
    return sorted(findings)


def _route_to_name(path: str) -> str:
    return path[len("/v1/") :].replace("/", "_") if path.startswith("/v1/") else path


def _collect_endpoints(
    source: SourceFile,
) -> Optional[List[Tuple[str, ast.AST, bool]]]:
    for node in ast.walk(source.tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(target, ast.Name) and target.id == "ENDPOINTS"
            for target in targets
        ):
            continue
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        endpoints: List[Tuple[str, ast.AST, bool]] = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Constant) and isinstance(element.value, str)
            ):
                return None
            local_only = has_local_only_marker(source, element.lineno)
            endpoints.append((element.value, element, local_only))
        return endpoints
    return None


def _collect_routes(
    server: SourceFile,
) -> Tuple[dict, Set[str]]:
    post_routes: dict = {}
    get_paths: Set[str] = set()
    for node in ast.walk(server.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_post_routes":
            for child in ast.walk(node):
                if isinstance(child, ast.Dict):
                    for key in child.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            post_routes[key.value] = key
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if any(
            isinstance(target, ast.Name) and target.id == "_GET_PATHS"
            for target in targets
        ):
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        get_paths.add(element.value)
    return post_routes, get_paths


def check_docs_table(server_path: Path, docs_path: Path) -> List[Finding]:
    """W303: the docs endpoint table and the HTTP routes agree."""

    server = SourceFile.parse(server_path)
    post_routes, get_paths = _collect_routes(server)
    http_paths = set(post_routes) | set(get_paths)
    doc_text = docs_path.read_text(encoding="utf-8")
    documented: dict = {}
    for number, line in enumerate(doc_text.splitlines(), start=1):
        if not line.lstrip().startswith("|"):
            continue
        for match in _DOC_PATH_RE.finditer(line):
            documented.setdefault(match.group(0), number)
    findings: List[Finding] = []
    for path in sorted(http_paths - set(documented)):
        node = post_routes.get(path)
        findings.append(
            Finding(
                path=server.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=W303,
                message=(
                    f"HTTP route `{path}` has no row in the endpoint table of "
                    f"{docs_path}"
                ),
            )
        )
    for path in sorted(set(documented) - http_paths):
        findings.append(
            Finding(
                path=str(docs_path),
                line=documented[path],
                col=0,
                rule=W303,
                message=f"documented endpoint `{path}` is not served by {server.path}",
            )
        )
    return sorted(findings)
