"""Shared infrastructure for the ``repro lint`` invariant analyzer.

The analyzer is a handful of AST passes over the source tree, each
enforcing one invariant the test suite can only probe dynamically:
determinism of results, lock discipline around shared state, and
wire-contract agreement between the facade, the HTTP layer, and the
docs.  This module holds what every rule family needs:

* :class:`Finding` — one reported violation, with a stable sort order.
* :class:`SourceFile` — a parsed module plus its comment-derived
  metadata: suppressions (``# lint: ok[D103] reason``), ``guarded-by``
  / ``holds`` / ``init-only`` / ``lock-order`` / ``wire: local-only``
  annotations, all keyed by line number.
* :class:`ClassInfo` — per-class annotation summary (guarded
  attributes, declared lock order, set/dict-typed attributes).
* :func:`held_locks` — the lexical lock context of any statement,
  honouring the ``_locked``-suffix and ``# holds:`` conventions.

Rules never import each other; they import this module and
``ast``.  See ``docs/analysis.md`` for the rule catalog and the
annotation grammar.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

# Comment grammar.  All annotations are ordinary ``#`` comments so the
# interpreter, ruff, and humans ignore them for free.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ok\[([A-Z0-9,\s]+)\]")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_]\w*)")
_INIT_ONLY_RE = re.compile(r"#\s*init-only\b")
_LOCK_ORDER_RE = re.compile(r"#\s*lock-order:\s*(.+)$")
_LOCAL_ONLY_RE = re.compile(r"#\s*wire:\s*local-only\b")

#: Method calls that mutate a collection in place.  A call to one of
#: these on a guarded attribute counts as a write for lock purposes.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def comment_of(line: str) -> str:
    """Return the trailing comment of ``line`` (empty if none).

    A ``#`` inside a string literal would fool this, so annotation
    comments must not share a line with a ``#`` embedded in a string.
    No current annotation site does.
    """

    index = line.find("#")
    return "" if index < 0 else line[index:]


@dataclass
class SourceFile:
    """A parsed module plus comment-derived analyzer metadata."""

    path: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: line number -> rule ids suppressed on that line
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, text: Optional[str] = None) -> "SourceFile":
        raw = path.read_text(encoding="utf-8") if text is None else text
        tree = ast.parse(raw, filename=str(path))
        source = cls(path=str(path), text=raw, tree=tree, lines=raw.splitlines())
        source._collect_suppressions()
        return source

    def _collect_suppressions(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(comment_of(line))
            if not match:
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            # A suppression on a pure-comment line covers the next line,
            # so long statements can carry it without breaking the
            # formatter's 88-column budget.
            target = number + 1 if line.strip().startswith("#") else number
            self.suppressions.setdefault(target, set()).update(rules)

    def line_comment(self, line_number: int) -> str:
        if 1 <= line_number <= len(self.lines):
            return comment_of(self.lines[line_number - 1])
        return ""

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, set())

    def finding(self, node: ast.AST, rule: str, message: str) -> Optional[Finding]:
        """Build a finding for ``node`` unless suppressed at its line."""

        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(line, rule):
            return None
        return Finding(path=self.path, line=line, col=col, rule=rule, message=message)

    # -- module-level annotations -------------------------------------

    def module_guards(self) -> Dict[str, str]:
        """``guarded-by`` annotations on module-level assignments."""

        guards: Dict[str, str] = {}
        for node in self.tree.body:
            name = _assigned_name(node)
            if name is None:
                continue
            match = _GUARDED_RE.search(self.line_comment(node.lineno))
            if match:
                guards[name] = match.group(1)
        return guards

    def classes(self) -> List["ClassInfo"]:
        """Class infos, with same-file base-class annotations inherited."""

        infos = [
            ClassInfo.collect(self, node)
            for node in self.tree.body
            if isinstance(node, ast.ClassDef)
        ]
        by_name = {info.name: info for info in infos}
        for info in infos:
            for base in info.node.bases:
                parent = by_name.get(base.id) if isinstance(base, ast.Name) else None
                if parent is None:
                    continue
                for attr, lock in parent.guarded.items():
                    info.guarded.setdefault(attr, lock)
                info.set_attrs.update(parent.set_attrs)
                info.dict_attrs.update(parent.dict_attrs)
                if not info.lock_order:
                    info.lock_order = list(parent.lock_order)
        return infos


def _assigned_name(node: ast.stmt) -> Optional[str]:
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return node.target.id
    return None


@dataclass
class ClassInfo:
    """Annotation summary for one class definition."""

    node: ast.ClassDef
    #: attribute name -> guarding lock attribute name
    guarded: Dict[str, str] = field(default_factory=dict)
    #: declared acquisition order, outermost first
    lock_order: List[str] = field(default_factory=list)
    #: attributes initialised to set()/frozenset()/{...} in __init__
    set_attrs: Set[str] = field(default_factory=set)
    #: attributes initialised to a dict-like value in __init__
    dict_attrs: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def audited(self) -> bool:
        """True once the class has opted into the lock convention."""

        return bool(self.guarded or self.lock_order)

    @classmethod
    def collect(cls, source: SourceFile, node: ast.ClassDef) -> "ClassInfo":
        info = cls(node=node)
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        for line_number in range(node.lineno, end + 1):
            comment = source.line_comment(line_number)
            order = _LOCK_ORDER_RE.search(comment)
            if order:
                info.lock_order = [
                    part.strip() for part in order.group(1).split("->") if part.strip()
                ]
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for statement in ast.walk(method):
                attr = _self_attr_target(statement)
                if attr is None:
                    continue
                match = _GUARDED_RE.search(source.line_comment(statement.lineno))
                if match:
                    info.guarded[attr] = match.group(1)
                if method.name == "__init__":
                    kind = _collection_kind(statement)
                    if kind == "set":
                        info.set_attrs.add(attr)
                    elif kind == "dict":
                        info.dict_attrs.add(attr)
        return info

    def methods(self) -> Iterator[ast.FunctionDef]:
        for item in self.node.body:
            if isinstance(item, ast.FunctionDef):
                yield item

    def lock_names(self) -> Set[str]:
        return set(self.guarded.values())

    def method_held_locks(
        self, source: SourceFile, method: ast.FunctionDef
    ) -> Set[str]:
        """Locks a method holds on entry, per naming/annotation convention."""

        comment = source.line_comment(method.lineno)
        holds = _HOLDS_RE.search(comment)
        if holds:
            return {holds.group(1)}
        if method.name.endswith("_locked"):
            locks = self.lock_names()
            if len(locks) == 1:
                return set(locks)
        return set()

    def method_exempt(self, source: SourceFile, method: ast.FunctionDef) -> bool:
        """__init__ and ``# init-only`` methods run before the object is shared."""

        if method.name == "__init__":
            return True
        return bool(_INIT_ONLY_RE.search(source.line_comment(method.lineno)))


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """Name of the ``self.X`` attribute assigned by ``node``, if any."""

    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
    return None


def _collection_kind(node: ast.AST) -> Optional[str]:
    value = getattr(node, "value", None)
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func) or ""
        tail = name.rsplit(".", 1)[-1]
        if tail in {"set", "frozenset"}:
            return "set"
        if tail in {"dict", "OrderedDict", "defaultdict", "Counter"}:
            return "dict"
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""

    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _with_lock_names(node: ast.With) -> Set[str]:
    """Lock names acquired by a ``with`` statement.

    Recognises ``with self._lock:`` (instance lock) and
    ``with _MODULE_LOCK:`` (module-level lock); anything else —
    ``with open(...)``, ``with pool.session():`` — is not a lock
    acquisition for the analyzer.
    """

    names: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            names.add(expr.attr)
        elif isinstance(expr, ast.Name):
            names.add(expr.id)
    return names


def held_locks(
    method: ast.FunctionDef, initial: Optional[Set[str]] = None
) -> Iterator[Tuple[ast.stmt, Set[str], List[str]]]:
    """Yield ``(statement, held, acquisition_stack)`` lexically.

    ``held`` is the set of lock names in scope at the statement;
    ``acquisition_stack`` preserves outermost-first order for the
    lock-order rule.  Nested function definitions are not descended
    into — a closure runs in an unknown lock context.
    """

    def visit(
        statements: Sequence[ast.stmt], held: Set[str], stack: List[str]
    ) -> Iterator[Tuple[ast.stmt, Set[str], List[str]]]:
        for statement in statements:
            yield statement, held, stack
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(statement, ast.With):
                acquired = _with_lock_names(statement)
                inner_stack = stack + sorted(acquired - held)
                yield from visit(statement.body, held | acquired, inner_stack)
                continue
            for block in _child_blocks(statement):
                yield from visit(block, held, stack)

    yield from visit(method.body, set(initial or ()), sorted(initial or ()))


def _child_blocks(statement: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        block = getattr(statement, name, None)
        if block:
            yield block
    for handler in getattr(statement, "handlers", ()) or ():
        yield handler.body


def iter_statement_writes(statement: ast.stmt) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, kind, attr)`` for every ``self.X`` write in a statement.

    ``kind`` is one of ``assign``, ``del``, ``item``, ``mutate``.  The
    scan is shallow by design: it looks at this statement only, because
    :func:`held_locks` already yields every nested statement once.
    """

    targets: List[ast.expr] = []
    if isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        targets = [statement.target]
    elif isinstance(statement, ast.Delete):
        targets = list(statement.targets)
    kind = "del" if isinstance(statement, ast.Delete) else "assign"
    for target in _flatten_targets(targets):
        attr = _self_attribute(target)
        if attr is not None:
            yield target, kind, attr
        elif isinstance(target, ast.Subscript):
            attr = _self_attribute(target.value)
            if attr is not None:
                yield target, "item", attr
    if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
        func = statement.value.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            attr = _self_attribute(func.value)
            if attr is not None:
                yield statement.value, "mutate", attr


def iter_statement_global_writes(
    statement: ast.stmt, names: Set[str]
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Like :func:`iter_statement_writes` for module-level globals."""

    targets: List[ast.expr] = []
    if isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        targets = [statement.target]
    elif isinstance(statement, ast.Delete):
        targets = list(statement.targets)
    kind = "del" if isinstance(statement, ast.Delete) else "assign"
    for target in _flatten_targets(targets):
        if isinstance(target, ast.Name) and target.id in names:
            yield target, kind, target.id
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and base.id in names:
                yield target, "item", base.id
    if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
        func = statement.value.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            base = func.value
            if isinstance(base, ast.Name) and base.id in names:
                yield statement.value, "mutate", base.id


def _flatten_targets(targets: Sequence[ast.expr]) -> Iterator[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(target.elts)
        elif isinstance(target, ast.Starred):
            yield target.value
        else:
            yield target


def _self_attribute(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def has_local_only_marker(source: SourceFile, line: int) -> bool:
    return bool(_LOCAL_ONLY_RE.search(source.line_comment(line)))
