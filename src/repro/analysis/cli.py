"""Command-line front end for the invariant analyzer.

Reached two ways: ``repro lint`` (a thin adapter in ``repro.cli``) and
``python -m repro.analysis``.  Exit codes: 0 clean, 1 findings, 2 the
analyzer could not run (no repo root, bad arguments).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .base import Finding
from .runner import analyze_files, analyze_repo, find_repo_root


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the whole tree)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="analyze only files changed vs HEAD (staged, unstaged, untracked)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    changed: bool = False,
    output_format: str = "text",
    stream=None,
) -> int:
    out = stream if stream is not None else sys.stdout
    if paths and changed:
        print("repro lint: pass either paths or --changed, not both", file=sys.stderr)
        return 2
    if paths:
        findings = analyze_files(paths)
    else:
        root = find_repo_root()
        if root is None:
            print(
                "repro lint: could not locate a repository root "
                "(no src/repro ancestor)",
                file=sys.stderr,
            )
            return 2
        files = _changed_files(root) if changed else None
        if changed and not files:
            _emit(out, [], output_format, note="no changed python files")
            return 0
        findings = analyze_repo(root, files=files)
    _emit(out, findings, output_format)
    return 1 if findings else 0


def _emit(
    stream, findings: List[Finding], output_format: str, note: Optional[str] = None
) -> None:
    if output_format == "json":
        payload = [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ]
        print(json.dumps(payload, indent=2), file=stream)
        return
    for finding in findings:
        print(finding.render(), file=stream)
    if findings:
        plural = "s" if len(findings) != 1 else ""
        print(f"repro lint: {len(findings)} finding{plural}", file=stream)
    else:
        message = f"repro lint: clean ({note})" if note else "repro lint: clean"
        print(message, file=stream)


def _changed_files(root: Path) -> List[Path]:
    """Python files changed vs HEAD: staged, unstaged, and untracked."""

    commands = (
        ["git", "diff", "--name-only", "--diff-filter=ACMR", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        try:
            result = subprocess.run(
                command,
                cwd=root,
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        names.extend(line.strip() for line in result.stdout.splitlines())
    unique = {
        root / name
        for name in names
        if name.endswith(".py") and (root / name).is_file()
    }
    return sorted(unique)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "static invariant analyzer: determinism (D1xx), lock discipline "
            "(L2xx), wire contract (W3xx)"
        ),
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(
        paths=args.paths,
        changed=args.changed,
        output_format=args.output_format,
    )
