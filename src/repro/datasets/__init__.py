"""Dataset suite, probability models, and query workloads."""

from repro.datasets.suite import (
    DATASET_KEYS,
    DATASETS,
    SCALES,
    Dataset,
    DatasetSpec,
    dataset_table,
    load_dataset,
)
from repro.datasets.queries import (
    QueryWorkload,
    WorkloadError,
    distance_sweep_workloads,
    generate_workload,
)

__all__ = [
    "DATASET_KEYS",
    "DATASETS",
    "SCALES",
    "Dataset",
    "DatasetSpec",
    "dataset_table",
    "load_dataset",
    "QueryWorkload",
    "WorkloadError",
    "distance_sweep_workloads",
    "generate_workload",
]
