"""Query workloads: s-t pairs at a controlled hop distance (paper §3.1.3).

The paper evaluates every estimator on the *same* 100 s-t pairs per dataset:
100 distinct sources drawn uniformly, each paired with a target picked
uniformly among the nodes exactly 2 BFS hops away.  §3.9 additionally sweeps
the hop distance h in {2, 4, 6, 8}.  Both protocols are implemented here,
with deterministic seeding so a workload can be shared across estimators,
processes and runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.core.graph import UncertainGraph
from repro.util.rng import SeedLike, ensure_generator

DEFAULT_HOP_DISTANCE = 2  # paper default: targets 2 hops from the source


class WorkloadError(RuntimeError):
    """Raised when a graph cannot supply the requested number of pairs."""


@dataclass(frozen=True)
class QueryWorkload:
    """An ordered set of s-t pairs, identical for all competing estimators."""

    pairs: Tuple[Tuple[int, int], ...]
    hop_distance: int
    seed: int

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def save(self, path: Union[str, Path]) -> None:
        array = np.asarray(self.pairs, dtype=np.int64)
        np.savez_compressed(
            Path(path),
            pairs=array,
            hop_distance=np.int64(self.hop_distance),
            seed=np.int64(self.seed),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QueryWorkload":
        with np.load(Path(path)) as data:
            pairs = tuple(
                (int(u), int(v)) for u, v in data["pairs"].tolist()
            )
            return cls(
                pairs=pairs,
                hop_distance=int(data["hop_distance"]),
                seed=int(data["seed"]),
            )


def generate_workload(
    graph: UncertainGraph,
    pair_count: int = 100,
    hop_distance: int = DEFAULT_HOP_DISTANCE,
    seed: SeedLike = 0,
    max_attempts_factor: int = 50,
) -> QueryWorkload:
    """Sample ``pair_count`` s-t pairs at exactly ``hop_distance`` BFS hops.

    Protocol (paper §3.1.3): draw a source uniformly among not-yet-used
    nodes with at least one out-edge; BFS to ``hop_distance`` hops; pick the
    target uniformly among nodes at exactly that distance; retry with a new
    source when none exists.  Raises :class:`WorkloadError` if the graph
    cannot supply enough pairs within ``max_attempts_factor * pair_count``
    attempts (e.g. asking for distance-8 pairs of a dense small world).
    """
    if pair_count <= 0:
        raise ValueError(f"pair_count must be positive, got {pair_count}")
    if hop_distance <= 0:
        raise ValueError(f"hop_distance must be positive, got {hop_distance}")
    rng = ensure_generator(seed)
    used_sources = set()
    pairs: List[Tuple[int, int]] = []
    attempts = 0
    budget = max_attempts_factor * pair_count
    while len(pairs) < pair_count:
        attempts += 1
        if attempts > budget:
            raise WorkloadError(
                f"could not find {pair_count} pairs at distance {hop_distance} "
                f"within {budget} attempts ({len(pairs)} found); the graph may "
                "be too small or too shallow for this distance"
            )
        source = int(rng.integers(graph.node_count))
        if source in used_sources or graph.out_degree(source) == 0:
            continue
        distances = graph.bfs_distances(source, max_hops=hop_distance)
        candidates = np.nonzero(distances == hop_distance)[0]
        if candidates.size == 0:
            continue
        used_sources.add(source)
        target = int(candidates[int(rng.integers(candidates.size))])
        pairs.append((source, target))
    base_seed = seed if isinstance(seed, int) else -1
    return QueryWorkload(
        pairs=tuple(pairs), hop_distance=hop_distance, seed=base_seed
    )


def distance_sweep_workloads(
    graph: UncertainGraph,
    pair_count: int,
    hop_distances: Tuple[int, ...] = (2, 4, 6, 8),
    seed: SeedLike = 0,
) -> dict:
    """One workload per hop distance (paper §3.9 sensitivity analysis)."""
    rng = ensure_generator(seed)
    workloads = {}
    for distance in hop_distances:
        sub_seed = int(rng.integers(2**31))
        workloads[distance] = generate_workload(
            graph, pair_count, distance, seed=sub_seed
        )
    return workloads


__all__ = [
    "DEFAULT_HOP_DISTANCE",
    "QueryWorkload",
    "WorkloadError",
    "generate_workload",
    "distance_sweep_workloads",
]
