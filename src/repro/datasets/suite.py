"""The six-dataset suite of the paper (synthetic analogues, paper Table 2).

Every dataset of the study is reproduced as a scaled synthetic analogue:
the topology generator matches the real network's structural class and the
edge-probability model is exactly the paper's (§3.1.1-3.1.2).  Three scales
are provided: ``tiny`` (unit tests), ``small`` (benchmark default) and
``medium`` (slow, closer shapes).  Paper-reported node/edge counts and
probability summaries are kept alongside so the Table 2 benchmark can print
"paper vs ours" rows.

Substitution note (see DESIGN.md §3): the real downloads are unavailable
offline and pure-Python sampling at millions of edges is impractical; all
comparative findings the paper draws depend on degree structure,
probability distribution and s-t distance, which these analogues preserve.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.graph import UncertainGraph
from repro.datasets import edge_probability as probability_models
from repro.datasets import generators
from repro.util.rng import ensure_generator

Builder = Callable[[int, np.random.Generator], UncertainGraph]

SCALES: Tuple[str, ...] = ("tiny", "small", "medium")


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset of the suite, with its paper-reported reference values."""

    key: str
    title: str
    description: str
    paper_nodes: int
    paper_edges: int
    paper_probability_summary: str
    nodes_by_scale: Dict[str, int]
    builder: Builder
    #: Datasets sharing a seed family get identical RNG streams — used so
    #: DBLP 0.2 and DBLP 0.05 are the *same* topology under two probability
    #: models, as in the paper.  Defaults to the dataset key.
    seed_family: str = ""


@dataclass(frozen=True)
class Dataset:
    """A materialised dataset: the graph plus its provenance."""

    spec: DatasetSpec
    scale: str
    seed: int
    graph: UncertainGraph

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def title(self) -> str:
        return self.spec.title


# ----------------------------------------------------------------------
# Per-dataset builders
# ----------------------------------------------------------------------


def _bidirect(undirected: List[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Expand an undirected edge list into both directed orientations."""
    array = np.asarray(undirected, dtype=np.int64)
    sources = np.concatenate([array[:, 0], array[:, 1]])
    targets = np.concatenate([array[:, 1], array[:, 0]])
    return sources, targets


def _build_lastfm(node_count: int, rng: np.random.Generator) -> UncertainGraph:
    """Musical social network; P(u->v) = 1 / out_degree(u)."""
    undirected = generators.powerlaw_cluster(node_count, 2, 0.4, rng)
    sources, targets = _bidirect(undirected)
    probs = probability_models.inverse_out_degree(sources, node_count)
    return UncertainGraph.from_edge_arrays(node_count, sources, targets, probs)


def _build_nethept(node_count: int, rng: np.random.Generator) -> UncertainGraph:
    """HEP-theory co-authorship; P uniform from {0.1, 0.01, 0.001}."""
    undirected = generators.powerlaw_cluster(node_count, 2, 0.3, rng)
    sources, targets = _bidirect(undirected)
    probs = probability_models.uniform_choice(len(sources), rng=rng)
    return UncertainGraph.from_edge_arrays(node_count, sources, targets, probs)


def _build_as_topology(node_count: int, rng: np.random.Generator) -> UncertainGraph:
    """Autonomous-systems backbone; P = snapshot containment ratio.

    The ratio describes the *connection*, so both orientations of a link
    share one value, like the BGP sessions the paper derives it from.
    """
    undirected = generators.preferential_attachment(node_count, 2, rng)
    link_probs = probability_models.snapshot_ratio(len(undirected), rng=rng)
    sources, targets = _bidirect(undirected)
    probs = np.concatenate([link_probs, link_probs])
    return UncertainGraph.from_edge_arrays(node_count, sources, targets, probs)


def _make_dblp_builder(mu: float) -> Builder:
    """DBLP collaboration network; P = 1 - exp(-c/mu), c = #collaborations."""

    def build(node_count: int, rng: np.random.Generator) -> UncertainGraph:
        undirected = generators.powerlaw_cluster(node_count, 3, 0.6, rng)
        counts = generators.collaboration_counts(len(undirected), 2.5, rng)
        link_probs = probability_models.exponential_cdf(counts, mu)
        sources, targets = _bidirect(undirected)
        probs = np.concatenate([link_probs, link_probs])
        return UncertainGraph.from_edge_arrays(node_count, sources, targets, probs)

    return build


def _build_biomine(node_count: int, rng: np.random.Generator) -> UncertainGraph:
    """Integrated biological database; P = relevance x info x confidence."""
    directed = generators.heterogeneous_hub_graph(node_count, 6.4, rng=rng)
    array = np.asarray(directed, dtype=np.int64)
    sources, targets = array[:, 0], array[:, 1]
    degree = np.bincount(sources, minlength=node_count) + np.bincount(
        targets, minlength=node_count
    )
    endpoint_degrees = degree[sources] + degree[targets]
    probs = probability_models.biomine_composite(
        len(sources), endpoint_degrees, rng=rng
    )
    return UncertainGraph.from_edge_arrays(node_count, sources, targets, probs)


# ----------------------------------------------------------------------
# The suite registry
# ----------------------------------------------------------------------

DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in (
        DatasetSpec(
            key="lastfm",
            title="LastFM",
            description="Musical social network, bi-directed communication edges",
            paper_nodes=6_899,
            paper_edges=23_696,
            paper_probability_summary="0.29 +/- 0.25, {0.13, 0.20, 0.33}",
            nodes_by_scale={"tiny": 120, "small": 1_200, "medium": 4_000},
            builder=_build_lastfm,
        ),
        DatasetSpec(
            key="nethept",
            title="NetHEPT",
            description="HEP-theory co-authorship, uniform {0.1, 0.01, 0.001}",
            paper_nodes=15_233,
            paper_edges=62_774,
            paper_probability_summary="0.04 +/- 0.04, {0.001, 0.01, 0.10}",
            nodes_by_scale={"tiny": 140, "small": 1_600, "medium": 5_000},
            builder=_build_nethept,
        ),
        DatasetSpec(
            key="as_topology",
            title="AS Topology",
            description="Autonomous-systems graph, snapshot-ratio probabilities",
            paper_nodes=45_535,
            paper_edges=172_294,
            paper_probability_summary="0.23 +/- 0.20, {0.08, 0.21, 0.31}",
            nodes_by_scale={"tiny": 150, "small": 2_000, "medium": 6_500},
            builder=_build_as_topology,
        ),
        DatasetSpec(
            key="dblp02",
            title="DBLP 0.2",
            description="Co-authorship, P = 1 - exp(-c/5)",
            paper_nodes=1_291_298,
            paper_edges=7_123_632,
            paper_probability_summary="0.33 +/- 0.18, {0.18, 0.33, 0.45}",
            nodes_by_scale={"tiny": 150, "small": 2_200, "medium": 7_000},
            builder=_make_dblp_builder(5.0),
            seed_family="dblp",
        ),
        DatasetSpec(
            key="dblp005",
            title="DBLP 0.05",
            description="Co-authorship, P = 1 - exp(-c/20)",
            paper_nodes=1_291_298,
            paper_edges=7_123_632,
            paper_probability_summary="0.11 +/- 0.09, {0.05, 0.10, 0.14}",
            nodes_by_scale={"tiny": 150, "small": 2_200, "medium": 7_000},
            builder=_make_dblp_builder(20.0),
            seed_family="dblp",
        ),
        DatasetSpec(
            key="biomine",
            title="BioMine",
            description="Integrated biological database, composite probabilities",
            paper_nodes=1_045_414,
            paper_edges=6_742_939,
            paper_probability_summary="0.27 +/- 0.21, {0.12, 0.22, 0.36}",
            nodes_by_scale={"tiny": 150, "small": 2_400, "medium": 7_500},
            builder=_build_biomine,
        ),
    )
}

#: Keys in the paper's presentation order (Table 2).
DATASET_KEYS: List[str] = [
    "lastfm",
    "nethept",
    "as_topology",
    "dblp02",
    "dblp005",
    "biomine",
]

_CACHE_LOCK = threading.Lock()
_CACHE: Dict[Tuple[str, str, int], Dataset] = {}  # guarded-by: _CACHE_LOCK


def load_dataset(key: str, scale: str = "small", seed: int = 0) -> Dataset:
    """Materialise (and memoise) one dataset of the suite.

    Deterministic in ``(key, scale, seed)``; repeated calls within a process
    return the cached instance so benchmarks share one graph.
    """
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {key!r}; known: {', '.join(DATASET_KEYS)}"
        )
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
    cache_key = (key, scale, seed)
    # Build under the lock: two threads racing the same key would each
    # generate the graph and one instance would silently win, breaking
    # the "benchmarks share one graph" memoisation contract.  Builds are
    # deterministic, so holding the lock costs only the losing thread.
    with _CACHE_LOCK:
        if cache_key not in _CACHE:
            spec = DATASETS[key]
            node_count = spec.nodes_by_scale[scale]
            # zlib.crc32 is stable across processes (unlike hash()),
            # keeping dataset generation deterministic in (key, scale,
            # seed).
            family = spec.seed_family or key
            key_digest = zlib.crc32(family.encode("utf-8")) & 0xFFFF
            rng = ensure_generator(np.random.SeedSequence((seed, key_digest)))
            graph = spec.builder(node_count, rng)
            _CACHE[cache_key] = Dataset(
                spec=spec, scale=scale, seed=seed, graph=graph
            )
        return _CACHE[cache_key]


def dataset_table(scale: str = "small", seed: int = 0) -> List[Dict[str, str]]:
    """Rows of Table 2: per-dataset size and probability statistics."""
    rows = []
    for key in DATASET_KEYS:
        dataset = load_dataset(key, scale, seed)
        stats = dataset.graph.edge_statistics()
        rows.append(
            {
                "dataset": dataset.title,
                "nodes": str(dataset.graph.node_count),
                "edges": str(dataset.graph.edge_count),
                "edge_probabilities": str(stats),
                "paper_nodes": str(dataset.spec.paper_nodes),
                "paper_edges": str(dataset.spec.paper_edges),
                "paper_probabilities": dataset.spec.paper_probability_summary,
            }
        )
    return rows


__all__ = [
    "SCALES",
    "DATASETS",
    "DATASET_KEYS",
    "DatasetSpec",
    "Dataset",
    "load_dataset",
    "dataset_table",
]
