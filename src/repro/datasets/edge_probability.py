"""Edge-probability models (paper §3.1.2).

Each function maps a topology to per-edge existence probabilities using the
exact model the paper applies to the corresponding real dataset:

* LastFM — inverse out-degree of the edge's source node;
* NetHEPT — uniform choice from {0.1, 0.01, 0.001};
* AS Topology — the fraction of follow-up snapshots containing the link
  (simulated: per-link stability drawn from a Beta fit to the paper's
  reported moments, then an observed snapshot ratio binomially around it);
* DBLP — exponential cdf ``1 - exp(-c / mu)`` of the collaboration count
  ``c`` (``mu = 5`` gives "DBLP 0.2", ``mu = 20`` gives "DBLP 0.05");
* BioMine — product of relevance, informativeness and confidence scores
  (Eronen & Toivonen's construction, simulated component-wise).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.rng import SeedLike, ensure_generator

NETHEPT_CHOICES: Tuple[float, float, float] = (0.1, 0.01, 0.001)


def inverse_out_degree(
    sources: np.ndarray, node_count: int
) -> np.ndarray:
    """LastFM model: ``P(u -> v) = 1 / out_degree(u)``.

    Degree-1 sources yield probability exactly 1.0 — present in the real
    LastFM data too, and a stress case for the estimators (LP's bug would
    loop on such edges; see the lazy-propagation module).
    """
    sources = np.asarray(sources, dtype=np.int64)
    out_degree = np.bincount(sources, minlength=node_count)
    return 1.0 / out_degree[sources]


def uniform_choice(
    edge_count: int,
    choices: Sequence[float] = NETHEPT_CHOICES,
    rng: SeedLike = None,
) -> np.ndarray:
    """NetHEPT model: probability drawn uniformly from ``choices``."""
    generator = ensure_generator(rng)
    values = np.asarray(choices, dtype=np.float64)
    return values[generator.integers(len(values), size=edge_count)]


def snapshot_ratio(
    edge_count: int,
    snapshots: int = 120,
    stability_alpha: float = 0.79,
    stability_beta: float = 2.64,
    rng: SeedLike = None,
) -> np.ndarray:
    """AS-Topology model: ratio of follow-up snapshots containing the link.

    The paper computes, per AS connection, the fraction of monthly snapshots
    (Jan 2008 - Dec 2017, i.e. ~120) that contain it.  We simulate the
    underlying per-link stability ``q ~ Beta(alpha, beta)`` — parameters fit
    to the paper's reported moments (mean 0.23, SD 0.20) — and observe the
    ratio of a Binomial(``snapshots``, q) draw, reproducing both the
    distribution shape and the ratio's granularity.  Links observed in zero
    follow-ups get the minimum ratio ``1/snapshots`` (the connection was
    seen at least once to enter the dataset).
    """
    generator = ensure_generator(rng)
    stability = generator.beta(stability_alpha, stability_beta, size=edge_count)
    observed = generator.binomial(snapshots, stability)
    observed = np.maximum(observed, 1)
    return observed / snapshots


def exponential_cdf(counts: np.ndarray, mu: float) -> np.ndarray:
    """DBLP model: ``P = 1 - exp(-c / mu)`` for collaboration count ``c``."""
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    counts = np.asarray(counts, dtype=np.float64)
    return 1.0 - np.exp(-counts / mu)


def biomine_composite(
    edge_count: int,
    degrees: np.ndarray,
    rng: SeedLike = None,
) -> np.ndarray:
    """BioMine model: relevance x informativeness x confidence.

    Eronen & Toivonen (2012) combine (i) *relevance* of the relationship
    type, (ii) *informativeness*, penalising edges incident to high-degree
    nodes, and (iii) *confidence* in the underlying source record.  We draw
    relevance per relationship type (a small discrete set), derive
    informativeness from the actual endpoint degrees, and draw confidence
    from a Beta.  Components are calibrated so the composite matches the
    paper's reported distribution (mean 0.27, SD 0.21).
    """
    generator = ensure_generator(rng)
    relationship_types = np.asarray([0.5, 0.7, 0.9, 1.0])
    relevance = relationship_types[
        generator.integers(len(relationship_types), size=edge_count)
    ]
    degrees = np.asarray(degrees, dtype=np.float64)
    informativeness = np.clip(2.9 / np.log2(3.0 + degrees), 0.0, 1.0)
    confidence = generator.beta(1.6, 1.2, size=edge_count)
    composite = relevance * informativeness * confidence
    return np.clip(composite, 1e-4, 1.0)


__all__ = [
    "NETHEPT_CHOICES",
    "inverse_out_degree",
    "uniform_choice",
    "snapshot_ratio",
    "exponential_cdf",
    "biomine_composite",
]
