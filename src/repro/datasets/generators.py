"""Synthetic graph-topology generators.

The paper's six datasets are real downloads (LastFM, NetHEPT, AS Topology,
DBLP x2, BioMine).  Offline, we generate synthetic graphs from the same
*topology classes* — the structural features that drive every effect the
paper measures (degree distribution, clustering, reachable-set growth).
Each generator returns an undirected edge list (or directed for BioMine)
over dense node ids; probability models are applied separately
(:mod:`repro.datasets.edge_probability`).

Generators:

* :func:`preferential_attachment` — Barabási–Albert power-law graphs
  (AS-topology-like backbones).
* :func:`powerlaw_cluster` — Holme–Kim: preferential attachment plus triadic
  closure, the standard model for social/co-authorship networks (LastFM,
  NetHEPT, DBLP).
* :func:`heterogeneous_hub_graph` — directed, hub-heavy multi-type graph
  approximating BioMine's integrated biological database.
* :func:`collaboration_counts` — per-edge collaboration multiplicities for
  the DBLP exponential-cdf probability model.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.util.rng import SeedLike, ensure_generator

UndirectedEdges = List[Tuple[int, int]]
DirectedEdges = List[Tuple[int, int]]


def preferential_attachment(
    node_count: int, attach: int, rng: SeedLike = None
) -> UndirectedEdges:
    """Barabási–Albert graph: each new node attaches to ``attach`` targets.

    Implemented with the repeated-endpoint urn so degree-proportional
    sampling is O(1) per draw.  The result is connected with a power-law
    degree tail — the AS-topology shape.
    """
    if node_count < attach + 1:
        raise ValueError(
            f"node_count must exceed attach ({attach}), got {node_count}"
        )
    generator = ensure_generator(rng)
    edges: UndirectedEdges = []
    # Seed clique over the first attach + 1 nodes.
    urn: List[int] = []
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            edges.append((u, v))
            urn.extend((u, v))
    for node in range(attach + 1, node_count):
        chosen: Set[int] = set()
        while len(chosen) < attach:
            pick = urn[int(generator.integers(len(urn)))]
            chosen.add(pick)
        for neighbor in chosen:
            edges.append((node, neighbor))
            urn.extend((node, neighbor))
    return edges


def powerlaw_cluster(
    node_count: int,
    attach: int,
    triangle_probability: float,
    rng: SeedLike = None,
) -> UndirectedEdges:
    """Holme–Kim powerlaw-cluster graph.

    Like preferential attachment, but after each attachment a triangle is
    closed with ``triangle_probability`` by also linking to a random
    neighbor of the chosen target — giving the high clustering of social
    and co-authorship networks.
    """
    if not 0.0 <= triangle_probability <= 1.0:
        raise ValueError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )
    generator = ensure_generator(rng)
    adjacency: List[Set[int]] = [set() for _ in range(node_count)]
    edges: UndirectedEdges = []
    urn: List[int] = []

    def connect(u: int, v: int) -> None:
        edges.append((u, v))
        adjacency[u].add(v)
        adjacency[v].add(u)
        urn.extend((u, v))

    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            connect(u, v)
    for node in range(attach + 1, node_count):
        added = 0
        last_target = -1
        while added < attach:
            close_triangle = (
                last_target >= 0
                and adjacency[last_target]
                and generator.random() < triangle_probability
            )
            if close_triangle:
                neighbors = tuple(adjacency[last_target])
                candidate = neighbors[int(generator.integers(len(neighbors)))]
            else:
                candidate = urn[int(generator.integers(len(urn)))]
            if candidate == node or candidate in adjacency[node]:
                last_target = -1
                # Fall back to a fresh preferential draw next iteration; on
                # saturated small graphs pick any non-neighbor uniformly.
                if len(adjacency[node]) >= node:
                    break
                continue
            connect(node, candidate)
            last_target = candidate
            added += 1
    return edges


def heterogeneous_hub_graph(
    node_count: int,
    average_out_degree: float,
    hub_fraction: float = 0.02,
    hub_boost: float = 20.0,
    rng: SeedLike = None,
) -> DirectedEdges:
    """Directed hub-heavy graph approximating BioMine's integrated database.

    A small ``hub_fraction`` of nodes (database "concepts" like common
    genes/ontology terms) receives a ``hub_boost``-times larger connection
    weight; edges are drawn with both endpoints weight-proportional, giving
    heavy-tailed in- AND out-degrees and a giant strongly-connected core.
    """
    generator = ensure_generator(rng)
    weights = np.ones(node_count, dtype=np.float64)
    hub_count = max(1, int(node_count * hub_fraction))
    hubs = generator.choice(node_count, size=hub_count, replace=False)
    weights[hubs] = hub_boost
    weights /= weights.sum()

    edge_target = int(node_count * average_out_degree)
    seen: Set[Tuple[int, int]] = set()
    edges: DirectedEdges = []
    # Draw in vectorised batches, rejecting self-loops and duplicates.
    while len(edges) < edge_target:
        batch = edge_target - len(edges)
        sources = generator.choice(node_count, size=batch, p=weights)
        targets = generator.choice(node_count, size=batch, p=weights)
        for u, v in zip(sources.tolist(), targets.tolist()):
            if u == v:
                continue
            if (u, v) in seen:
                continue
            seen.add((u, v))
            edges.append((u, v))
    # Weakly connect stragglers so queries cannot land on isolated nodes.
    touched = np.zeros(node_count, dtype=bool)
    for u, v in edges:
        touched[u] = True
        touched[v] = True
    for node in np.nonzero(~touched)[0].tolist():
        anchor = int(hubs[int(generator.integers(hub_count))])
        edges.append((anchor, node))
        edges.append((node, anchor))
    return edges


def collaboration_counts(
    edge_count: int, mean_collaborations: float, rng: SeedLike = None
) -> np.ndarray:
    """Per-edge collaboration multiplicities for the DBLP model.

    Real co-authorship counts are heavy-tailed: most pairs collaborate once
    or twice, few collaborate dozens of times.  A shifted geometric
    distribution (support 1, 2, ...) reproduces that shape.
    """
    if mean_collaborations < 1.0:
        raise ValueError(
            f"mean_collaborations must be >= 1, got {mean_collaborations}"
        )
    generator = ensure_generator(rng)
    success = 1.0 / mean_collaborations
    return generator.geometric(success, size=edge_count).astype(np.int64)


__all__ = [
    "preferential_attachment",
    "powerlaw_cluster",
    "heterogeneous_hub_graph",
    "collaboration_counts",
]
