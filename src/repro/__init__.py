"""repro: s-t reliability algorithms over uncertain graphs.

A from-scratch reproduction of Ke, Khan & Lim, *"An In-Depth Comparison of
s-t Reliability Algorithms over Uncertain Graphs"* (VLDB 2019 /
arXiv:1904.05300): the six estimators, the dataset suite, the convergence
framework, and a benchmark per table and figure of the paper's evaluation
— grown into a query-serving system behind one facade.

Quickstart (the facade)::

    from repro import EstimateRequest, ReliabilityService, UncertainGraph

    graph = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.25)])
    service = ReliabilityService(graph, seed=7)
    response = service.estimate(
        EstimateRequest(source=0, target=2, samples=10_000)
    )
    print(response.estimate)

The estimator registry remains available for direct, low-level use::

    from repro import create_estimator

    mc = create_estimator("mc", graph, seed=7)
    print(mc.estimate(0, 2, samples=10_000))
"""

from repro.api import (
    BatchRequest,
    BatchResponse,
    EstimateRequest,
    EstimateResponse,
    GraphLoadError,
    InvalidQueryError,
    QuerySpec,
    ReliabilityError,
    ReliabilityService,
    UnknownEstimatorError,
    WarmRequest,
)
from repro.core.graph import GraphBuilder, UncertainGraph
from repro.core.bounds import reliability_bounds
from repro.core.exact import reliability_exact
from repro.core.recommend import recommend_estimator
from repro.core.registry import (
    PAPER_ESTIMATORS,
    create_estimator,
    estimator_class,
    estimator_keys,
    register_estimator,
)

__version__ = "1.1.0"

__all__ = [
    "GraphBuilder",
    "UncertainGraph",
    "reliability_bounds",
    "reliability_exact",
    "recommend_estimator",
    "PAPER_ESTIMATORS",
    "create_estimator",
    "estimator_class",
    "estimator_keys",
    "register_estimator",
    "ReliabilityService",
    "ReliabilityError",
    "UnknownEstimatorError",
    "InvalidQueryError",
    "GraphLoadError",
    "QuerySpec",
    "EstimateRequest",
    "EstimateResponse",
    "BatchRequest",
    "BatchResponse",
    "WarmRequest",
    "__version__",
]
