"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main entry points:

* ``estimate``   — one s-t reliability query on a suite dataset
* ``batch``      — a whole query workload through the batch engine
* ``datasets``   — the Table 2 dataset summary
* ``topk``       — top-k most reliable targets from a source
* ``bounds``     — polynomial-time lower/upper bracket for a pair
* ``recommend``  — walk the paper's Fig. 18 decision tree
* ``study``      — a miniature convergence study (Tables 3-14 shaped)

All commands are deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.core.bounds import reliability_bounds
from repro.core.recommend import recommend_estimator
from repro.core.registry import (
    PAPER_ESTIMATORS,
    create_estimator,
    display_name,
    estimator_class,
)
from repro.datasets.suite import DATASET_KEYS, SCALES, dataset_table, load_dataset
from repro.engine.batch import DEFAULT_CHUNK_SIZE, BatchEngine
from repro.experiments.convergence import ConvergenceCriterion
from repro.experiments.report import format_dict_rows, format_table
from repro.experiments.runner import StudyConfig, run_study
from repro.queries.top_k import top_k_reliable_targets
from repro.util.rng import stable_substream


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=DATASET_KEYS, default="lastfm",
        help="suite dataset to query (default: lastfm)",
    )
    parser.add_argument(
        "--scale", choices=SCALES, default="tiny",
        help="dataset scale (default: tiny)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="s-t reliability over uncertain graphs (VLDB'19 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    estimate = commands.add_parser("estimate", help="one s-t reliability query")
    _add_dataset_arguments(estimate)
    estimate.add_argument("--source", type=int, required=True)
    estimate.add_argument("--target", type=int, required=True)
    estimate.add_argument(
        "--method", choices=PAPER_ESTIMATORS + ["lp", "dynamic_mc"], default="mc"
    )
    estimate.add_argument("--samples", "-K", type=int, default=1_000)

    batch = commands.add_parser(
        "batch", help="answer a query-file workload via the batch engine"
    )
    _add_dataset_arguments(batch)
    batch.add_argument(
        "--queries", required=True,
        help="query file: one 's t [K [d]]' per line, or a JSON list of "
             "[source, target(, samples(, max_hops))] entries / objects "
             "(object keys: source, target, samples, max_hops)",
    )
    batch.add_argument(
        "--samples", "-K", type=int, default=1_000,
        help="default K for queries that do not carry one (default: 1000)",
    )
    batch.add_argument(
        "--method", choices=PAPER_ESTIMATORS, default="mc",
        help="estimator; 'mc' and 'bfs_sharing' use the shared-world "
             "engine fast path, 'prob_tree' groups the batch by (s, t) "
             "bag pair, the others fall back to a per-query loop "
             "(default: mc)",
    )
    batch.add_argument(
        "--chunk-size", type=int, default=None,
        help=f"worlds materialised per streaming step "
             f"(default: {DEFAULT_CHUNK_SIZE})",
    )
    batch.add_argument(
        "--cache-dir", default=None,
        help="directory holding the persistent result cache; a re-run of "
             "the same workload (same graph, seed, K) is served from the "
             "sidecar with zero world evaluations, even across processes",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the engine's chunk sweep (default: "
             "$REPRO_ENGINE_WORKERS or 1); results are bit-identical to "
             "the serial sweep",
    )
    batch.add_argument(
        "--max-hops", type=int, default=None,
        help="d-hop reliability (§2.9): bound every query that does not "
             "carry its own max_hops to this many edges",
    )
    batch.add_argument(
        "--sequential", action="store_true",
        help="per-query loop over the same world stream (baseline/oracle)",
    )
    batch.add_argument(
        "--output", default="-",
        help="write the JSON report here instead of stdout",
    )

    datasets = commands.add_parser("datasets", help="Table 2 dataset summary")
    datasets.add_argument("--scale", choices=SCALES, default="tiny")
    datasets.add_argument("--seed", type=int, default=0)

    topk = commands.add_parser("topk", help="top-k reliable targets")
    _add_dataset_arguments(topk)
    topk.add_argument("--source", type=int, required=True)
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument("--samples", "-K", type=int, default=500)
    topk.add_argument(
        "--method", choices=["bfs_sharing", "mc"], default="bfs_sharing"
    )

    bounds = commands.add_parser(
        "bounds", help="polynomial-time reliability bracket"
    )
    _add_dataset_arguments(bounds)
    bounds.add_argument("--source", type=int, required=True)
    bounds.add_argument("--target", type=int, required=True)

    recommend = commands.add_parser(
        "recommend", help="walk the paper's decision tree (Fig. 18)"
    )
    recommend.add_argument(
        "--memory-limited", action="store_true",
        help="follow the small-memory branch",
    )
    recommend.add_argument(
        "--lowest-variance", action="store_true",
        help="prefer the variance-reduced estimators",
    )
    recommend.add_argument(
        "--latency-tolerant", action="store_true",
        help="accept slower queries on the small-memory branch",
    )

    study = commands.add_parser(
        "study", help="miniature convergence study on one dataset"
    )
    _add_dataset_arguments(study)
    study.add_argument("--pairs", type=int, default=4)
    study.add_argument("--repeats", type=int, default=4)
    study.add_argument("--kmax", type=int, default=750)
    study.add_argument(
        "--estimators", nargs="+", choices=PAPER_ESTIMATORS,
        default=["mc", "rhh", "rss"],
    )
    study.add_argument(
        "--batch", action="store_true",
        help="submit each repeat's workload as one estimate_batch() call",
    )
    study.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for engine-backed batch evaluation "
             "(requires --batch; cannot change any estimate)",
    )
    study.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory for engine-backed batch "
             "evaluation (requires --batch); re-running the same study "
             "warm-starts from the sidecar",
    )
    return parser


#: A parsed workload entry: (source, target, samples, max_hops-or-None).
BatchQueryTuple = Tuple[int, int, int, Optional[int]]


def _parse_query_file(
    path: str, default_samples: int
) -> List[BatchQueryTuple]:
    """Read a workload file: JSON entries/objects, or 's t [K [d]]' lines.

    The optional trailing ``d`` / ``max_hops`` is the §2.9 hop bound;
    entries without one get ``None`` (resolved against ``--max-hops`` by
    the batch command).
    """
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    queries: List[BatchQueryTuple] = []
    if stripped.startswith(("[", "{")):
        loaded = json.loads(stripped)
        if isinstance(loaded, dict):
            loaded = [loaded]  # a single unwrapped query object
        for position, entry in enumerate(loaded):
            if not isinstance(entry, (list, tuple, dict)):
                raise ValueError(
                    f"{path}: entry {position}: expected "
                    f"[source, target(, samples(, max_hops))] or a query "
                    f"object, got {entry!r}"
                )
            if isinstance(entry, dict):
                if "source" not in entry or "target" not in entry:
                    raise ValueError(
                        f"{path}: entry {position}: query objects need "
                        f"'source' and 'target' keys, got {entry!r}"
                    )
                max_hops = entry.get("max_hops")
                queries.append(
                    (
                        int(entry["source"]),
                        int(entry["target"]),
                        int(entry.get("samples", default_samples)),
                        None if max_hops is None else int(max_hops),
                    )
                )
            else:
                parts = list(entry)
                if len(parts) not in (2, 3, 4):
                    raise ValueError(
                        f"{path}: entry {position}: expected "
                        f"[source, target(, samples(, max_hops))], "
                        f"got {entry!r}"
                    )
                try:
                    head = [int(part) for part in parts[:3]]
                    # A trailing null mirrors the object form's
                    # "max_hops": null — an explicit "no bound".
                    tail = parts[3] if len(parts) == 4 else None
                    max_hops = None if tail is None else int(tail)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"{path}: entry {position}: non-numeric value in "
                        f"{entry!r}"
                    ) from None
                while len(head) < 3:
                    head.append(default_samples)
                queries.append((head[0], head[1], head[2], max_hops))
        return queries
    for line_number, line in enumerate(text.splitlines(), start=1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        parts = body.split()
        if len(parts) not in (2, 3, 4):
            raise ValueError(
                f"{path}:{line_number}: expected "
                f"'source target [samples [max_hops]]', got {line!r}"
            )
        samples = int(parts[2]) if len(parts) >= 3 else default_samples
        max_hops = int(parts[3]) if len(parts) == 4 else None
        queries.append((int(parts[0]), int(parts[1]), samples, max_hops))
    return queries


def _validate_batch_queries(
    queries: List[BatchQueryTuple], node_count: int, path: str
) -> None:
    """Reject malformed queries before any sampling starts.

    The engine (and each estimator) validates too, but deep in the sweep
    and without file context; failing here turns "ValueError from
    plan_queries" into "which entry of your file is wrong".
    """
    for position, (source, target, samples, max_hops) in enumerate(queries):
        context = f"repro batch: {path}: query {position}"
        if not 0 <= source < node_count:
            raise SystemExit(
                f"{context}: source {source} out of range for a graph "
                f"with {node_count} nodes"
            )
        if not 0 <= target < node_count:
            raise SystemExit(
                f"{context}: target {target} out of range for a graph "
                f"with {node_count} nodes"
            )
        if samples <= 0:
            raise SystemExit(
                f"{context}: samples must be a positive integer, "
                f"got {samples}"
            )
        if max_hops is not None and max_hops <= 0:
            raise SystemExit(
                f"{context}: max_hops must be a positive integer, "
                f"got {max_hops}"
            )


def _engine_report(mode: str, result) -> dict:
    """The JSON ``engine`` section for a :class:`BatchResult`."""
    return {
        "mode": mode,
        "workers": result.workers,
        "worlds_sampled": result.worlds_sampled,
        "sweeps": result.sweeps,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "seconds": round(result.seconds, 6),
    }


def _result_rows(
    queries: List[BatchQueryTuple], estimates
) -> List[dict]:
    """Per-query JSON rows for estimator-path batch reports."""
    return [
        {
            "source": source,
            "target": target,
            "samples": samples,
            "max_hops": max_hops,
            "estimate": float(estimate),
        }
        for (source, target, samples, max_hops), estimate in zip(
            queries, estimates
        )
    ]


def _command_estimate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    estimator = create_estimator(args.method, dataset.graph, seed=args.seed)
    value = estimator.estimate(
        args.source, args.target, args.samples,
        rng=stable_substream(args.seed, args.source, args.target),
    )
    print(
        f"{display_name(args.method)} on {dataset.title} ({args.scale}): "
        f"R({args.source}, {args.target}) ~= {value:.6f}  [K={args.samples}]"
    )
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    if args.max_hops is not None and args.max_hops <= 0:
        raise SystemExit(
            f"repro batch: --max-hops must be a positive integer, "
            f"got {args.max_hops}"
        )
    if args.workers is not None and args.workers <= 0:
        raise SystemExit(
            f"repro batch: --workers must be a positive integer, "
            f"got {args.workers}"
        )
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    queries = _parse_query_file(args.queries, args.samples)
    if args.max_hops is not None:
        queries = [
            (source, target, samples,
             args.max_hops if max_hops is None else max_hops)
            for source, target, samples, max_hops in queries
        ]
    _validate_batch_queries(queries, dataset.graph.node_count, args.queries)
    # Fast-path dispatch: the estimator class advertises how its
    # estimate_batch is served (see Estimator.batch_path).
    batch_path = estimator_class(args.method).batch_path
    engine_backed = batch_path == "engine"  # mc, bfs_sharing
    has_fast_path = batch_path != "fallback"  # + prob_tree
    if args.sequential and args.method != "mc":
        raise SystemExit(
            "repro batch: --sequential applies only to --method mc (the "
            "per-query engine oracle)"
        )
    if args.chunk_size is not None and not engine_backed:
        raise SystemExit(
            "repro batch: --chunk-size applies only to the engine-backed "
            "methods (--method mc or bfs_sharing); other methods do not "
            "stream world chunks"
        )
    if args.workers is not None and not has_fast_path:
        raise SystemExit(
            "repro batch: --workers rides on a batch fast path "
            "(--method mc, bfs_sharing, or prob_tree); "
            f"--method {args.method} uses the per-query loop"
        )
    if args.cache_dir is not None and not has_fast_path:
        raise SystemExit(
            "repro batch: --cache-dir rides on a batch fast path "
            "(--method mc, bfs_sharing, or prob_tree); the per-query "
            "loop has no exact cache key"
        )
    if args.cache_dir is not None and args.sequential:
        raise SystemExit(
            "repro batch: the --sequential oracle bypasses the result "
            "cache by design; --cache-dir applies only to the "
            "shared-world sweep"
        )
    if not engine_backed and any(
        max_hops is not None for *_, max_hops in queries
    ):
        raise SystemExit(
            "repro batch: hop-bounded (max_hops) queries need the "
            "shared-world engine; use --method mc or bfs_sharing"
        )
    report = {
        "dataset": dataset.key,
        "scale": args.scale,
        "method": args.method,
        "seed": args.seed,
        "query_count": len(queries),
    }
    if args.method == "mc":
        if args.sequential and args.workers is not None and args.workers > 1:
            raise SystemExit(
                "repro batch: the --sequential oracle re-materialises "
                "worlds per query in-process; --workers applies only to "
                "the shared-world sweep"
            )
        chunk_size = (
            DEFAULT_CHUNK_SIZE if args.chunk_size is None else args.chunk_size
        )
        engine = BatchEngine(
            dataset.graph, seed=args.seed, chunk_size=chunk_size,
            workers=args.workers, cache_dir=args.cache_dir,
        )
        result = (
            engine.run_sequential(queries)
            if args.sequential
            else engine.run(queries)
        )
        report["engine"] = _engine_report(
            "sequential" if args.sequential else "shared_worlds", result
        )
        report["engine"]["chunk_size"] = chunk_size
        if args.cache_dir is not None:
            report["engine"]["cache"] = engine.cache.statistics()
            engine.cache.close()
        report["results"] = list(result.as_rows())
    elif has_fast_path:
        estimator = create_estimator(args.method, dataset.graph, seed=args.seed)
        if not engine_backed:
            # Engine-backed batches never consult the private offline
            # index (bfs_sharing's O(Km) worlds stay unbuilt); prob_tree
            # still needs its FWD decomposition.
            estimator.prepare()
        options = {"workers": args.workers, "cache_dir": args.cache_dir}
        if engine_backed:
            options["chunk_size"] = args.chunk_size
        estimates = estimator.estimate_batch(
            queries, seed=args.seed, **options
        )
        mode = "shared_worlds" if engine_backed else "bag_grouped"
        result = estimator.last_batch_result
        report["engine"] = (
            {"mode": mode}
            if result is None
            else _engine_report(mode, result)
        )
        engine = estimator._batch_engine
        if args.cache_dir is not None and engine is not None:
            report["engine"]["cache"] = engine.cache.statistics()
            engine.cache.close()
        report["results"] = _result_rows(queries, estimates)
    else:
        estimator = create_estimator(args.method, dataset.graph, seed=args.seed)
        estimator.prepare()
        estimates = estimator.estimate_batch(queries, seed=args.seed)
        report["engine"] = {"mode": "per_query_loop"}
        report["results"] = _result_rows(queries, estimates)
    payload = json.dumps(report, indent=2)
    if args.output == "-":
        print(payload)
    else:
        Path(args.output).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {len(queries)} results to {args.output}")
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    rows = dataset_table(args.scale, args.seed)
    print(
        format_dict_rows(
            f"Table 2: dataset properties (scale={args.scale})",
            rows,
            ["dataset", "nodes", "edges", "edge_probabilities"],
            headers=["Dataset", "#Nodes", "#Edges", "Edge probabilities"],
        )
    )
    return 0


def _command_topk(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    ranking = top_k_reliable_targets(
        dataset.graph, args.source, args.k,
        samples=args.samples, method=args.method, rng=args.seed,
    )
    rows = [
        [str(rank), str(node), f"{reliability:.4f}"]
        for rank, (node, reliability) in enumerate(ranking, start=1)
    ]
    print(
        format_table(
            f"Top-{args.k} reliable targets from node {args.source} "
            f"({dataset.title}, {args.method}, K={args.samples})",
            ["rank", "node", "reliability"],
            rows,
        )
    )
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    lower, upper = reliability_bounds(dataset.graph, args.source, args.target)
    print(
        f"{dataset.title} ({args.scale}): "
        f"{lower:.6f} <= R({args.source}, {args.target}) <= {upper:.6f}"
    )
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    recommendation = recommend_estimator(
        memory_limited=args.memory_limited,
        want_lowest_variance=args.lowest_variance,
        want_fastest=not args.latency_tolerant,
    )
    print(" -> ".join(recommendation.path))
    print(
        "recommended: "
        + ", ".join(display_name(k) for k in recommendation.estimators)
    )
    return 0


def _command_study(args: argparse.Namespace) -> int:
    if args.workers is not None and not args.batch:
        raise SystemExit(
            "repro study: --workers rides on the batch engine; add --batch"
        )
    if args.cache_dir is not None and not args.batch:
        raise SystemExit(
            "repro study: --cache-dir rides on the batch engine; add --batch"
        )
    config = StudyConfig(
        dataset=args.dataset,
        scale=args.scale,
        pair_count=args.pairs,
        repeats=args.repeats,
        criterion=ConvergenceCriterion(k_start=250, k_step=250, k_max=args.kmax),
        estimators=tuple(args.estimators),
        seed=args.seed,
        use_batch_engine=args.batch,
        engine_workers=args.workers,
        engine_cache_dir=args.cache_dir,
    )
    result = run_study(config)
    print(
        format_dict_rows(
            f"Accuracy, {result.dataset.title} ({args.scale})",
            result.accuracy_rows(),
            ["estimator", "K_conv", "R_conv", "RE_conv_%", "R_1000", "RE_1000_%"],
        )
    )
    print()
    print(
        format_dict_rows(
            f"Running time, {result.dataset.title} ({args.scale})",
            result.runtime_rows(),
            ["estimator", "K_conv", "time_conv_s", "time_1000_s", "ms_per_sample"],
        )
    )
    return 0


_COMMANDS = {
    "estimate": _command_estimate,
    "batch": _command_batch,
    "datasets": _command_datasets,
    "topk": _command_topk,
    "bounds": _command_bounds,
    "recommend": _command_recommend,
    "study": _command_study,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
