"""Command-line interface: ``python -m repro <command>``.

Every command is a thin adapter over the one public facade,
:class:`repro.api.ReliabilityService`: parse arguments, build a typed
request, hand it to the service, print the response.  No command
constructs an estimator, an engine, or a cache itself — that invariant
is pinned by ``tests/api/test_cli_facade.py`` — so the CLI, the HTTP
server (``repro serve``), and library callers always produce identical
answers for identical inputs.

Subcommands:

* ``estimate``   — one s-t reliability query on a suite dataset
* ``batch``      — a whole query workload through the batch engine
* ``warm``       — pre-evaluate popular pairs into the persistent cache
* ``serve``      — a long-lived HTTP JSON API over one service
* ``datasets``   — the Table 2 dataset summary
* ``topk``       — top-k most reliable targets from a source
* ``bounds``     — polynomial-time lower/upper bracket for a pair
* ``recommend``  — walk the paper's Fig. 18 decision tree
* ``study``      — a miniature convergence study (Tables 3-14 shaped)
* ``lint``       — the AST invariant analyzer (see ``docs/analysis.md``)

All commands are deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.api import (
    BatchRequest,
    BoundsRequest,
    EstimateRequest,
    InvalidQueryError,
    QuerySpec,
    RecommendRequest,
    ReliabilityError,
    ReliabilityService,
    TopKRequest,
    WarmRequest,
    coerce_query_specs,
)
from repro.api.service import (
    AUTO_METHOD,
    DEFAULT_CHUNK_SIZE,
    DEFAULT_REWARM_TOP,
    FAST_BATCH_PATHS,
    KERNEL_MODES,
)
from repro.core.registry import PAPER_ESTIMATORS, VARIANCE_SAMPLERS
from repro.datasets.suite import DATASET_KEYS, SCALES, dataset_table
from repro.experiments.convergence import ConvergenceCriterion
from repro.experiments.report import format_dict_rows, format_table
from repro.experiments.runner import StudyConfig
from repro.serve import DEFAULT_HOST, DEFAULT_PORT, serve


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=DATASET_KEYS, default="lastfm",
        help="suite dataset to query (default: lastfm)",
    )
    parser.add_argument(
        "--scale", choices=SCALES, default="tiny",
        help="dataset scale (default: tiny)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _add_workload_arguments(
    parser: argparse.ArgumentParser, default_samples: int
) -> None:
    parser.add_argument(
        "--queries", required=True,
        help="query file: one 's t [K [d]]' per line, or a JSON list of "
             "[source, target(, samples(, max_hops))] entries / objects "
             "(object keys: source, target, samples, max_hops)",
    )
    parser.add_argument(
        "--samples", "-K", type=int, default=default_samples,
        help=f"default K for queries that do not carry one "
             f"(default: {default_samples})",
    )
    parser.add_argument(
        "--max-hops", type=int, default=None,
        help="d-hop reliability (§2.9): bound every query that does not "
             "carry its own max_hops to this many edges",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help=f"worlds materialised per streaming step "
             f"(default: {DEFAULT_CHUNK_SIZE})",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the engine's chunk sweep (default: "
             "$REPRO_ENGINE_WORKERS or 1); results are bit-identical to "
             "the serial sweep",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="s-t reliability over uncertain graphs (VLDB'19 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    estimate = commands.add_parser("estimate", help="one s-t reliability query")
    _add_dataset_arguments(estimate)
    estimate.add_argument("--source", type=int, required=True)
    estimate.add_argument("--target", type=int, required=True)
    estimate.add_argument(
        "--method",
        choices=PAPER_ESTIMATORS
        + VARIANCE_SAMPLERS
        + ["lp", "dynamic_mc", AUTO_METHOD],
        default="mc",
        help="estimator, or 'auto' to let the service's adaptive router "
             "pick from measured telemetry (default: mc)",
    )
    estimate.add_argument("--samples", "-K", type=int, default=1_000)

    batch = commands.add_parser(
        "batch", help="answer a query-file workload via the batch engine"
    )
    _add_dataset_arguments(batch)
    _add_workload_arguments(batch, default_samples=1_000)
    batch.add_argument(
        "--method",
        choices=PAPER_ESTIMATORS + VARIANCE_SAMPLERS + [AUTO_METHOD],
        default="mc",
        help="estimator; 'mc' and 'bfs_sharing' use the shared-world "
             "engine fast path, 'prob_tree' groups the batch by (s, t) "
             "bag pair, the others fall back to a per-query loop; "
             "'auto' lets the adaptive router pick (default: mc)",
    )
    batch.add_argument(
        "--kernels", choices=KERNEL_MODES, default=None,
        help="engine sweep implementation: 'python' (reference loops) or "
             "'vectorized' (packed uint64 numpy kernels); bit-identical "
             "results (default: $REPRO_ENGINE_KERNELS or python)",
    )
    batch.add_argument(
        "--cache-dir", default=None,
        help="directory holding the persistent result cache; a re-run of "
             "the same workload (same graph, seed, K) is served from the "
             "sidecar with zero world evaluations, even across processes",
    )
    batch.add_argument(
        "--sequential", action="store_true",
        help="per-query loop over the same world stream (baseline/oracle)",
    )
    batch.add_argument(
        "--output", default="-",
        help="write the JSON report here instead of stdout",
    )

    warm = commands.add_parser(
        "warm",
        help="pre-evaluate popular (s, t) pairs into the persistent cache",
    )
    _add_dataset_arguments(warm)
    _add_workload_arguments(warm, default_samples=1_000)
    warm.add_argument(
        "--cache-dir", required=True,
        help="directory of the persistent sidecar the warmed results are "
             "written to (required: warming exists to outlive the process)",
    )
    warm.add_argument(
        "--output", default="-",
        help="write the JSON warm report here instead of stdout",
    )

    serve_cmd = commands.add_parser(
        "serve", help="long-lived HTTP JSON API over one service"
    )
    _add_dataset_arguments(serve_cmd)
    serve_cmd.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"bind address (default: {DEFAULT_HOST})",
    )
    serve_cmd.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port, 0 picks a free one (default: {DEFAULT_PORT})",
    )
    serve_cmd.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory; a restarted server "
             "warm-starts from the sidecar",
    )
    serve_cmd.add_argument(
        "--chunk-size", type=int, default=None,
        help="engine chunk size for served workloads",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=None,
        help="default worker processes for served workloads",
    )
    serve_cmd.add_argument(
        "--kernels", choices=KERNEL_MODES, default=None,
        help="default engine sweep implementation for served workloads "
             "(default: $REPRO_ENGINE_KERNELS or python)",
    )
    serve_cmd.add_argument(
        "--rewarm-top", type=int, default=DEFAULT_REWARM_TOP,
        help="after a POST /v1/update, re-warm this many of the hottest "
             "logged query keys against the new graph version in the "
             f"background; 0 disables (default: {DEFAULT_REWARM_TOP})",
    )
    serve_cmd.add_argument(
        "--coordinator", action="store_true",
        help="serve as a shard-tier coordinator: engine-backed "
             "/v1/batch workloads are partitioned into world ranges "
             "and fanned out to the --shards workers, with integer "
             "hit counts merged exactly (see docs/distributed.md)",
    )
    serve_cmd.add_argument(
        "--shards", default=None, metavar="HOST:PORT,HOST:PORT,...",
        help="comma-separated shard worker addresses (plain `repro "
             "serve` processes over the same dataset, scale, and "
             "seed); requires --coordinator",
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true",
        help="log one line per handled HTTP request",
    )

    datasets = commands.add_parser("datasets", help="Table 2 dataset summary")
    datasets.add_argument("--scale", choices=SCALES, default="tiny")
    datasets.add_argument("--seed", type=int, default=0)

    topk = commands.add_parser("topk", help="top-k reliable targets")
    _add_dataset_arguments(topk)
    topk.add_argument("--source", type=int, required=True)
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument("--samples", "-K", type=int, default=500)
    topk.add_argument(
        "--method", choices=["bfs_sharing", "mc"], default="bfs_sharing"
    )

    bounds = commands.add_parser(
        "bounds", help="polynomial-time reliability bracket"
    )
    _add_dataset_arguments(bounds)
    bounds.add_argument("--source", type=int, required=True)
    bounds.add_argument("--target", type=int, required=True)

    recommend = commands.add_parser(
        "recommend", help="walk the paper's decision tree (Fig. 18)"
    )
    recommend.add_argument(
        "--memory-limited", action="store_true",
        help="follow the small-memory branch",
    )
    recommend.add_argument(
        "--lowest-variance", action="store_true",
        help="prefer the variance-reduced estimators",
    )
    recommend.add_argument(
        "--latency-tolerant", action="store_true",
        help="accept slower queries on the small-memory branch",
    )
    recommend.add_argument(
        "--max-hops", type=int, default=None,
        help="d-hop bound (§2.9) on the intended queries: restricts the "
             "recommendation to the engine-served methods that can "
             "honour it",
    )

    lint = commands.add_parser(
        "lint",
        help="static invariant analyzer (determinism, locks, wire contract)",
    )
    from repro.analysis.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint)

    study = commands.add_parser(
        "study", help="miniature convergence study on one dataset"
    )
    _add_dataset_arguments(study)
    study.add_argument("--pairs", type=int, default=4)
    study.add_argument("--repeats", type=int, default=4)
    study.add_argument("--kmax", type=int, default=750)
    study.add_argument(
        "--estimators", nargs="+", choices=PAPER_ESTIMATORS,
        default=["mc", "rhh", "rss"],
    )
    study.add_argument(
        "--batch", action="store_true",
        help="submit each repeat's workload as one estimate_batch() call",
    )
    study.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for engine-backed batch evaluation "
             "(requires --batch; cannot change any estimate)",
    )
    study.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory for engine-backed batch "
             "evaluation (requires --batch); re-running the same study "
             "warm-starts from the sidecar",
    )
    return parser


# ----------------------------------------------------------------------
# Shared adapter plumbing
# ----------------------------------------------------------------------


def _open_service(
    args: argparse.Namespace,
    service_cls=ReliabilityService,
    **options,
) -> ReliabilityService:
    """The one place a command obtains its facade.

    ``service_cls`` lets ``repro serve --coordinator`` substitute the
    distributed facade while keeping one construction/error path.
    """
    try:
        return service_cls.from_dataset(
            args.dataset, args.scale, args.seed, **options
        )
    except ReliabilityError as error:
        raise SystemExit(f"repro {args.command}: {error}") from None


def _parse_query_file(path: str) -> Tuple[QuerySpec, ...]:
    """Read a workload file: JSON entries/objects, or 's t [K [d]]' lines.

    JSON bodies go through the same :func:`repro.api.coerce_query_specs`
    reader the HTTP endpoints use, so the file format and the wire
    format accept exactly the same entries.  Entries without a budget or
    hop bound inherit the request-level ``--samples`` / ``--max-hops``
    defaults when the service resolves the workload.
    """
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith(("[", "{")):
        try:
            return coerce_query_specs(json.loads(stripped))
        except InvalidQueryError as error:
            raise InvalidQueryError(f"{path}: {error}") from None
    queries = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        parts = body.split()
        if len(parts) not in (2, 3, 4):
            raise InvalidQueryError(
                f"{path}:{line_number}: expected "
                f"'source target [samples [max_hops]]', got {line!r}"
            )
        try:
            numbers = [int(part) for part in parts]
        except ValueError:
            raise InvalidQueryError(
                f"{path}:{line_number}: non-numeric value in {line!r}"
            ) from None
        queries.append(
            QuerySpec(
                source=numbers[0],
                target=numbers[1],
                samples=numbers[2] if len(numbers) >= 3 else None,
                max_hops=numbers[3] if len(numbers) == 4 else None,
            )
        )
    return tuple(queries)


def _check_workload_flags(args: argparse.Namespace) -> None:
    """Reject nonsensical flag values before touching any dataset."""
    command = args.command
    if args.max_hops is not None and args.max_hops <= 0:
        raise SystemExit(
            f"repro {command}: --max-hops must be a positive integer, "
            f"got {args.max_hops}"
        )
    if args.workers is not None and args.workers <= 0:
        raise SystemExit(
            f"repro {command}: --workers must be a positive integer, "
            f"got {args.workers}"
        )
    if args.chunk_size is not None and args.chunk_size <= 0:
        raise SystemExit(
            f"repro {command}: --chunk-size must be a positive integer, "
            f"got {args.chunk_size}"
        )


def _emit_report(report: dict, output: str, summary: str) -> None:
    payload = json.dumps(report, indent=2)
    if output == "-":
        print(payload)
    else:
        Path(output).write_text(payload + "\n", encoding="utf-8")
        print(summary)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def _command_estimate(args: argparse.Namespace) -> int:
    service = _open_service(args)
    try:
        response = service.estimate(
            EstimateRequest(
                source=args.source,
                target=args.target,
                samples=args.samples,
                method=args.method,
            )
        )
    except ReliabilityError as error:
        raise SystemExit(f"repro estimate: {error}") from None
    finally:
        service.close()
    if response.routing is not None:
        print(
            f"routed --method auto -> {response.method} "
            f"({response.routing['reason']})"
        )
    print(
        f"{response.method_display} on {service.dataset.title} "
        f"({args.scale}): R({args.source}, {args.target}) "
        f"~= {response.estimate:.6f}  [K={args.samples}]"
    )
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    _check_workload_flags(args)
    queries = _parse_query_file(args.queries)
    # Flag-combination guards: adapter-level UX (each names the exact
    # flags involved); the service re-checks the same invariants in
    # API terms for non-CLI transports.  'auto' has no batch path until
    # the router resolves it, so the path-keyed guards defer to the
    # service's re-check against the routed method; treating it as
    # engine-capable here keeps every flag available to an auto run.
    auto = args.method == AUTO_METHOD
    batch_path = (
        "engine" if auto else ReliabilityService.batch_path_of(args.method)
    )
    engine_backed = batch_path == "engine"  # mc, bfs_sharing
    has_fast_path = batch_path in FAST_BATCH_PATHS  # + prob_tree
    if args.sequential and args.method != "mc":
        raise SystemExit(
            "repro batch: --sequential applies only to --method mc (the "
            "per-query engine oracle)"
        )
    if args.chunk_size is not None and not engine_backed:
        raise SystemExit(
            "repro batch: --chunk-size applies only to the engine-backed "
            "methods (--method mc or bfs_sharing); other methods do not "
            "stream world chunks"
        )
    if args.workers is not None and not has_fast_path:
        raise SystemExit(
            "repro batch: --workers rides on a batch fast path "
            "(--method mc, bfs_sharing, or prob_tree); "
            f"--method {args.method} uses the per-query loop"
        )
    if args.kernels is not None and not engine_backed:
        raise SystemExit(
            "repro batch: --kernels selects the engine's sweep "
            "implementation; it applies only to the engine-backed "
            "methods (--method mc or bfs_sharing)"
        )
    if args.cache_dir is not None and not has_fast_path:
        raise SystemExit(
            "repro batch: --cache-dir rides on a batch fast path "
            "(--method mc, bfs_sharing, or prob_tree); the per-query "
            "loop has no exact cache key"
        )
    if args.cache_dir is not None and args.sequential:
        raise SystemExit(
            "repro batch: the --sequential oracle bypasses the result "
            "cache by design; --cache-dir applies only to the "
            "shared-world sweep"
        )
    if args.sequential and args.workers is not None and args.workers > 1:
        raise SystemExit(
            "repro batch: the --sequential oracle re-materialises "
            "worlds per query in-process; --workers applies only to "
            "the shared-world sweep"
        )
    if not engine_backed and (
        args.max_hops is not None
        or any(query.max_hops is not None for query in queries)
    ):
        raise SystemExit(
            "repro batch: hop-bounded (max_hops) queries need the "
            "shared-world engine; use --method mc or bfs_sharing"
        )
    service = _open_service(args, cache_dir=args.cache_dir)
    try:
        response = service.estimate_batch(
            BatchRequest(
                queries=queries,
                method=args.method,
                samples=args.samples,
                max_hops=args.max_hops,
                chunk_size=args.chunk_size,
                workers=args.workers,
                kernels=args.kernels,
                sequential=args.sequential,
            )
        )
    except ReliabilityError as error:
        raise SystemExit(f"repro batch: {args.queries}: {error}") from None
    finally:
        service.close()
    _emit_report(
        response.to_dict(),
        args.output,
        f"wrote {len(response.results)} results to {args.output}",
    )
    return 0


def _command_warm(args: argparse.Namespace) -> int:
    _check_workload_flags(args)
    queries = _parse_query_file(args.queries)
    service = _open_service(args, cache_dir=args.cache_dir)
    try:
        response = service.warm(
            WarmRequest(
                queries=queries,
                samples=args.samples,
                max_hops=args.max_hops,
                chunk_size=args.chunk_size,
                workers=args.workers,
            )
        )
    except ReliabilityError as error:
        raise SystemExit(f"repro warm: {args.queries}: {error}") from None
    finally:
        service.close()
    report = {"dataset": args.dataset, "scale": args.scale}
    report.update(response.to_dict())
    _emit_report(
        report,
        args.output,
        f"warmed {response.newly_written} of {response.unique_queries} "
        f"unique queries into {args.cache_dir}",
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers <= 0:
        raise SystemExit(
            f"repro serve: --workers must be a positive integer, "
            f"got {args.workers}"
        )
    if args.chunk_size is not None and args.chunk_size <= 0:
        raise SystemExit(
            f"repro serve: --chunk-size must be a positive integer, "
            f"got {args.chunk_size}"
        )
    if args.rewarm_top < 0:
        raise SystemExit(
            f"repro serve: --rewarm-top must be zero (disabled) or "
            f"positive, got {args.rewarm_top}"
        )
    if args.coordinator and not args.shards:
        raise SystemExit(
            "repro serve: --coordinator needs --shards "
            "host:port,host:port,..."
        )
    if args.shards and not args.coordinator:
        raise SystemExit(
            "repro serve: --shards only applies to a coordinator; "
            "add --coordinator"
        )
    options = dict(
        cache_dir=args.cache_dir,
        chunk_size=args.chunk_size,
        workers=args.workers,
        kernels=args.kernels,
    )
    service_cls = ReliabilityService
    if args.coordinator:
        from repro.distributed import (
            CoordinatedReliabilityService,
            parse_shard_list,
        )

        try:
            options["shards"] = parse_shard_list(args.shards)
        except ValueError as error:
            raise SystemExit(f"repro serve: --shards: {error}") from None
        service_cls = CoordinatedReliabilityService
    service = _open_service(args, service_cls, **options)

    def announce(server) -> None:
        title = service.dataset.title
        role = "coordinating" if args.coordinator else "serving"
        print(
            f"{role} {title} ({args.scale}, seed={args.seed}) "
            f"on {server.url}",
            flush=True,
        )
        if args.coordinator:
            shard_urls = [
                member.url for member in service.coordinator.members
            ]
            print(
                f"shards ({len(shard_urls)}): {', '.join(shard_urls)}",
                flush=True,
            )
        print(
            "endpoints: POST /v1/estimate, POST /v1/batch, POST /v1/warm, "
            "POST /v1/update, POST /v1/topk, POST /v1/bounds, "
            "POST /v1/shard/run, GET|POST /v1/recommend, "
            "GET /v1/health, GET /v1/stats  (Ctrl-C to stop)",
            flush=True,
        )

    serve(
        service,
        host=args.host,
        port=args.port,
        quiet=not args.verbose,
        ready_callback=announce,
        rewarm_top=args.rewarm_top,
    )
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    rows = dataset_table(args.scale, args.seed)
    print(
        format_dict_rows(
            f"Table 2: dataset properties (scale={args.scale})",
            rows,
            ["dataset", "nodes", "edges", "edge_probabilities"],
            headers=["Dataset", "#Nodes", "#Edges", "Edge probabilities"],
        )
    )
    return 0


def _command_topk(args: argparse.Namespace) -> int:
    service = _open_service(args)
    try:
        response = service.topk(
            TopKRequest(
                source=args.source,
                k=args.k,
                samples=args.samples,
                method=args.method,
            )
        )
    except ReliabilityError as error:
        raise SystemExit(f"repro topk: {error}") from None
    finally:
        service.close()
    rows = [
        [str(rank), str(node), f"{reliability:.4f}"]
        for rank, (node, reliability) in enumerate(response.ranking, start=1)
    ]
    print(
        format_table(
            f"Top-{args.k} reliable targets from node {args.source} "
            f"({service.dataset.title}, {args.method}, K={args.samples})",
            ["rank", "node", "reliability"],
            rows,
        )
    )
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    service = _open_service(args)
    try:
        response = service.bounds(
            BoundsRequest(source=args.source, target=args.target)
        )
    except ReliabilityError as error:
        raise SystemExit(f"repro bounds: {error}") from None
    finally:
        service.close()
    print(
        f"{service.dataset.title} ({args.scale}): "
        f"{response.lower:.6f} <= R({args.source}, {args.target}) "
        f"<= {response.upper:.6f}"
    )
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    if args.max_hops is not None and args.max_hops <= 0:
        raise SystemExit(
            f"repro recommend: --max-hops must be a positive integer, "
            f"got {args.max_hops}"
        )
    # The static (graph-free) walk: no dataset is loaded, so there is no
    # telemetry to consult — a served instance's GET /v1/recommend is
    # the measured counterpart.
    response = ReliabilityService.recommend_static(
        RecommendRequest(
            memory_limited=args.memory_limited,
            lowest_variance=args.lowest_variance,
            latency_tolerant=args.latency_tolerant,
            max_hops=args.max_hops,
        )
    )
    print(" -> ".join(response.path))
    print("recommended: " + ", ".join(response.display_names))
    return 0


def _command_study(args: argparse.Namespace) -> int:
    if args.workers is not None and not args.batch:
        raise SystemExit(
            "repro study: --workers rides on the batch engine; add --batch"
        )
    if args.cache_dir is not None and not args.batch:
        raise SystemExit(
            "repro study: --cache-dir rides on the batch engine; add --batch"
        )
    config = StudyConfig(
        dataset=args.dataset,
        scale=args.scale,
        pair_count=args.pairs,
        repeats=args.repeats,
        criterion=ConvergenceCriterion(k_start=250, k_step=250, k_max=args.kmax),
        estimators=tuple(args.estimators),
        seed=args.seed,
        use_batch_engine=args.batch,
        engine_workers=args.workers,
        engine_cache_dir=args.cache_dir,
    )
    service = _open_service(args)
    try:
        result = service.study(config)
    except ReliabilityError as error:
        raise SystemExit(f"repro study: {error}") from None
    finally:
        service.close()
    print(
        format_dict_rows(
            f"Accuracy, {result.dataset.title} ({args.scale})",
            result.accuracy_rows(),
            ["estimator", "K_conv", "R_conv", "RE_conv_%", "R_1000", "RE_1000_%"],
        )
    )
    print()
    print(
        format_dict_rows(
            f"Running time, {result.dataset.title} ({args.scale})",
            result.runtime_rows(),
            ["estimator", "K_conv", "time_conv_s", "time_1000_s", "ms_per_sample"],
        )
    )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    # Lazy import: the analyzer is tooling, not the serving path, and
    # the CLI stays a pure facade adapter for everything else.
    from repro.analysis.cli import run_lint

    return run_lint(
        paths=args.paths,
        changed=args.changed,
        output_format=args.output_format,
    )


_COMMANDS = {
    "estimate": _command_estimate,
    "batch": _command_batch,
    "warm": _command_warm,
    "serve": _command_serve,
    "datasets": _command_datasets,
    "topk": _command_topk,
    "bounds": _command_bounds,
    "recommend": _command_recommend,
    "study": _command_study,
    "lint": _command_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
