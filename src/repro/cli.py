"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main entry points:

* ``estimate``   — one s-t reliability query on a suite dataset
* ``datasets``   — the Table 2 dataset summary
* ``topk``       — top-k most reliable targets from a source
* ``bounds``     — polynomial-time lower/upper bracket for a pair
* ``recommend``  — walk the paper's Fig. 18 decision tree
* ``study``      — a miniature convergence study (Tables 3-14 shaped)

All commands are deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.bounds import reliability_bounds
from repro.core.recommend import recommend_estimator
from repro.core.registry import PAPER_ESTIMATORS, create_estimator, display_name
from repro.datasets.suite import DATASET_KEYS, SCALES, dataset_table, load_dataset
from repro.experiments.convergence import ConvergenceCriterion
from repro.experiments.report import format_dict_rows, format_table
from repro.experiments.runner import StudyConfig, run_study
from repro.queries.top_k import top_k_reliable_targets
from repro.util.rng import stable_substream


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=DATASET_KEYS, default="lastfm",
        help="suite dataset to query (default: lastfm)",
    )
    parser.add_argument(
        "--scale", choices=SCALES, default="tiny",
        help="dataset scale (default: tiny)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="s-t reliability over uncertain graphs (VLDB'19 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    estimate = commands.add_parser("estimate", help="one s-t reliability query")
    _add_dataset_arguments(estimate)
    estimate.add_argument("--source", type=int, required=True)
    estimate.add_argument("--target", type=int, required=True)
    estimate.add_argument(
        "--method", choices=PAPER_ESTIMATORS + ["lp", "dynamic_mc"], default="mc"
    )
    estimate.add_argument("--samples", "-K", type=int, default=1_000)

    datasets = commands.add_parser("datasets", help="Table 2 dataset summary")
    datasets.add_argument("--scale", choices=SCALES, default="tiny")
    datasets.add_argument("--seed", type=int, default=0)

    topk = commands.add_parser("topk", help="top-k reliable targets")
    _add_dataset_arguments(topk)
    topk.add_argument("--source", type=int, required=True)
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument("--samples", "-K", type=int, default=500)
    topk.add_argument(
        "--method", choices=["bfs_sharing", "mc"], default="bfs_sharing"
    )

    bounds = commands.add_parser(
        "bounds", help="polynomial-time reliability bracket"
    )
    _add_dataset_arguments(bounds)
    bounds.add_argument("--source", type=int, required=True)
    bounds.add_argument("--target", type=int, required=True)

    recommend = commands.add_parser(
        "recommend", help="walk the paper's decision tree (Fig. 18)"
    )
    recommend.add_argument(
        "--memory-limited", action="store_true",
        help="follow the small-memory branch",
    )
    recommend.add_argument(
        "--lowest-variance", action="store_true",
        help="prefer the variance-reduced estimators",
    )
    recommend.add_argument(
        "--latency-tolerant", action="store_true",
        help="accept slower queries on the small-memory branch",
    )

    study = commands.add_parser(
        "study", help="miniature convergence study on one dataset"
    )
    _add_dataset_arguments(study)
    study.add_argument("--pairs", type=int, default=4)
    study.add_argument("--repeats", type=int, default=4)
    study.add_argument("--kmax", type=int, default=750)
    study.add_argument(
        "--estimators", nargs="+", choices=PAPER_ESTIMATORS,
        default=["mc", "rhh", "rss"],
    )
    return parser


def _command_estimate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    estimator = create_estimator(args.method, dataset.graph, seed=args.seed)
    value = estimator.estimate(
        args.source, args.target, args.samples,
        rng=stable_substream(args.seed, args.source, args.target),
    )
    print(
        f"{display_name(args.method)} on {dataset.title} ({args.scale}): "
        f"R({args.source}, {args.target}) ~= {value:.6f}  [K={args.samples}]"
    )
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    rows = dataset_table(args.scale, args.seed)
    print(
        format_dict_rows(
            f"Table 2: dataset properties (scale={args.scale})",
            rows,
            ["dataset", "nodes", "edges", "edge_probabilities"],
            headers=["Dataset", "#Nodes", "#Edges", "Edge probabilities"],
        )
    )
    return 0


def _command_topk(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    ranking = top_k_reliable_targets(
        dataset.graph, args.source, args.k,
        samples=args.samples, method=args.method, rng=args.seed,
    )
    rows = [
        [str(rank), str(node), f"{reliability:.4f}"]
        for rank, (node, reliability) in enumerate(ranking, start=1)
    ]
    print(
        format_table(
            f"Top-{args.k} reliable targets from node {args.source} "
            f"({dataset.title}, {args.method}, K={args.samples})",
            ["rank", "node", "reliability"],
            rows,
        )
    )
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    lower, upper = reliability_bounds(dataset.graph, args.source, args.target)
    print(
        f"{dataset.title} ({args.scale}): "
        f"{lower:.6f} <= R({args.source}, {args.target}) <= {upper:.6f}"
    )
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    recommendation = recommend_estimator(
        memory_limited=args.memory_limited,
        want_lowest_variance=args.lowest_variance,
        want_fastest=not args.latency_tolerant,
    )
    print(" -> ".join(recommendation.path))
    print(
        "recommended: "
        + ", ".join(display_name(k) for k in recommendation.estimators)
    )
    return 0


def _command_study(args: argparse.Namespace) -> int:
    config = StudyConfig(
        dataset=args.dataset,
        scale=args.scale,
        pair_count=args.pairs,
        repeats=args.repeats,
        criterion=ConvergenceCriterion(k_start=250, k_step=250, k_max=args.kmax),
        estimators=tuple(args.estimators),
        seed=args.seed,
    )
    result = run_study(config)
    print(
        format_dict_rows(
            f"Accuracy, {result.dataset.title} ({args.scale})",
            result.accuracy_rows(),
            ["estimator", "K_conv", "R_conv", "RE_conv_%", "R_1000", "RE_1000_%"],
        )
    )
    print()
    print(
        format_dict_rows(
            f"Running time, {result.dataset.title} ({args.scale})",
            result.runtime_rows(),
            ["estimator", "K_conv", "time_conv_s", "time_1000_s", "ms_per_sample"],
        )
    )
    return 0


_COMMANDS = {
    "estimate": _command_estimate,
    "datasets": _command_datasets,
    "topk": _command_topk,
    "bounds": _command_bounds,
    "recommend": _command_recommend,
    "study": _command_study,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
