"""The HTTP serving layer: a JSON API over one `ReliabilityService`.

One long-lived process amortises everything the paper says is expensive
— graph loading, index construction, world sampling — across all
clients: the :class:`~repro.api.service.ReliabilityService` owns the
graph, the estimators, and the result caches; this module merely maps
HTTP onto it.  Built entirely on the stdlib (``http.server``), matching
the repo's numpy-only runtime dependency.

Endpoints (all JSON)::

    POST /v1/estimate   EstimateRequest  -> EstimateResponse
    POST /v1/batch      BatchRequest     -> BatchResponse
    POST /v1/warm       WarmRequest      -> WarmResponse
    POST /v1/update     UpdateRequest    -> UpdateResponse
    POST /v1/topk       TopKRequest      -> TopKResponse
    POST /v1/bounds     BoundsRequest    -> BoundsResponse
    POST /v1/recommend  RecommendRequest -> RecommendResponse
    POST /v1/shard/run  ShardRunRequest  -> ShardRunResponse
    GET  /v1/recommend  default-shape recommendation (query params accepted)
    GET  /v1/health     liveness payload
    GET  /v1/stats      service-lifetime counters + cache statistics

Both ``estimate`` and ``batch`` accept ``method="auto"``: the service's
adaptive router (:mod:`repro.routing`) picks the estimator from measured
telemetry, the response reports the concrete routed method plus a
``routing`` annotation, and the estimate is bit-identical to naming that
method directly.  ``/v1/recommend`` exposes the same decision without
serving a query — the router's pick, its reason, and the telemetry
evidence behind it.

``/v1/shard/run`` is the distributed tier's worker-side primitive
(:mod:`repro.distributed`): evaluate one world range, return integer
hit counts.  It is registered on *every* server — any plain ``repro
serve`` can be recruited as a shard worker — and a coordinator
(``repro serve --coordinator --shards ...``) serves the same surface
with its ``/v1/batch`` fanned out across workers and a ``shards``
health section added to ``/v1/stats``.

The batch endpoint returns the same JSON document ``repro batch``
prints — same engine report, same per-query rows — so a client can move
between the CLI and the server without changing a parser.  Failures are
structured: every :class:`~repro.api.errors.ReliabilityError` becomes
``{"error": {"type": ..., "message": ...}}`` with its mapped status
(400 for the malformed-request family, 413 for oversized bodies),
unknown paths 404, wrong verbs 405, and unexpected exceptions a minimal
500 (details stay server-side).

``/v1/update`` publishes a new graph *version* (see
:meth:`~repro.api.service.ReliabilityService.update`): cache keys embed
the graph fingerprint, so the swap invalidates exactly the stale keys
and nothing else.  After a successful update the handler kicks off a
daemon **re-warm worker** that replays the hottest logged query keys
against the successor (``--rewarm-top`` on the CLI), so steady-state
clients come back to a warm cache instead of paying the cold-start.

Concurrency: :class:`ThreadingHTTPServer` handles each connection on its
own thread, and the service's fine-grained locking lets those threads
actually proceed in parallel — engine-backed requests run completely
unlocked against the shared thread-safe result cache, stats/health
snapshots never wait on a running engine, and only calls into one shared
stateful estimator serialise (per method).  When the service is
configured with ``workers > 1`` it also owns one long-lived
:class:`~repro.engine.pool.WorkerPool` — pre-forked with the graph
loaded — that every served engine run shares, so multi-worker requests
dispatch ``(chunk_start, count)`` tasks instead of re-forking and
re-pickling the graph per request.  The engine's determinism contract
makes concurrent identical requests **bit-identical** however the
threads interleave or the pool schedules chunks (hammer-tested in
``tests/serve``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.api.errors import (
    InvalidQueryError,
    PayloadTooLargeError,
    ReliabilityError,
)
from repro.api.service import DEFAULT_REWARM_TOP, ReliabilityService
from repro.api.types import (
    BatchRequest,
    BoundsRequest,
    EstimateRequest,
    RecommendRequest,
    ShardRunRequest,
    TopKRequest,
    UpdateRequest,
    WarmRequest,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8315

#: Largest accepted request body; far above any sane workload, small
#: enough that a misdirected upload cannot balloon server memory.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Environment override for the body cap — deployments fronting the
#: server with their own limits (or test rigs) tune it without a fork.
MAX_BODY_ENV_VAR = "REPRO_SERVE_MAX_BODY"


#: Seconds ``/v1/shard/run`` sleeps before evaluating — a fault-drill
#: hook: the kill-a-worker-mid-request tests (and operators rehearsing
#: failover) use it to widen the window in which a worker can vanish
#: with a dispatch in flight.  Unset, malformed, or non-positive = 0.
SHARD_RUN_DELAY_ENV_VAR = "REPRO_SHARD_RUN_DELAY"


def shard_run_delay() -> float:
    """The effective pre-evaluation delay of ``/v1/shard/run`` (seconds).

    Read per request, like :func:`max_body_bytes`, so a drill can arm
    and disarm it without restarting the worker.
    """
    raw = os.environ.get(SHARD_RUN_DELAY_ENV_VAR)
    if raw is None:
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        return 0.0
    return value if value > 0 else 0.0


def max_body_bytes() -> int:
    """The effective request-body cap (env override, else the default).

    Read per request so a test rig can lower the cap without restarting
    the server; a missing, malformed, or non-positive override falls
    back to :data:`MAX_BODY_BYTES` rather than disabling the guard.
    """
    raw = os.environ.get(MAX_BODY_ENV_VAR)
    if raw is None:
        return MAX_BODY_BYTES
    try:
        value = int(raw)
    except ValueError:
        return MAX_BODY_BYTES
    return value if value > 0 else MAX_BODY_BYTES


class ReliabilityHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ReliabilityService`."""

    daemon_threads = True  # in-flight handlers die with the process

    def __init__(
        self,
        address: Tuple[str, int],
        service: ReliabilityService,
        quiet: bool = True,
        rewarm_top: int = DEFAULT_REWARM_TOP,
    ) -> None:
        self.service = service
        self.quiet = quiet
        #: Hottest logged keys the post-update re-warm worker replays;
        #: ``0`` disables background re-warming entirely.
        self.rewarm_top = max(0, int(rewarm_top))
        super().__init__(address, ReliabilityRequestHandler)

    @property
    def url(self) -> str:
        """A *routable* base URL for this server.

        A server bound to a wildcard address reports that address back
        (``0.0.0.0`` / ``::``), which no client can connect to — so the
        URL substitutes the loopback host.  Operators reaching the
        server from elsewhere use the machine's real address; this
        property is what banners, tests, and local tooling dial.
        """
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", "::", ""):
            host = "127.0.0.1"
        elif ":" in host:  # any other IPv6 literal needs brackets
            host = f"[{host}]"
        return f"http://{host}:{port}"


class ReliabilityRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` endpoints onto the bound service."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    #: The GET-only endpoints (POST routes live in :meth:`_post_routes`).
    _GET_PATHS = ("/v1/health", "/v1/stats")

    @property
    def route_path(self) -> str:
        """``self.path`` with the query string (and fragment) stripped.

        Routing must match on the path alone: ``GET /v1/health?verbose=1``
        is a request *to* ``/v1/health``, not to a different resource —
        matching the raw target 404'd any URL that carried a query.
        (Query parameters themselves are accepted and ignored; no
        endpoint defines any yet.)
        """
        path = self.path.partition("?")[0]
        return path.partition("#")[0]

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        service = self.server.service
        path = self.route_path
        payload = None
        try:
            # Only the *service* calls live inside the containment: a
            # failed send must propagate to socketserver as ever (writing
            # a 500 onto a socket that just broke mid-response would only
            # raise again from the handler).
            if path == "/v1/health":
                payload = service.health()
            elif path == "/v1/stats":
                payload = service.stats()
            elif path == "/v1/recommend":
                payload = service.recommend(
                    self._recommend_request_from_query()
                ).to_dict()
        except ReliabilityError as error:
            self._send_json(error.http_status, {"error": error.to_dict()})
            return
        except Exception:  # noqa: BLE001 — same containment as do_POST
            self._send_internal_error("GET", path)
            return
        if payload is not None:
            self._send_json(200, payload)
        elif path in self._post_routes():
            self._send_method_not_allowed("POST")
        else:
            self._send_json(404, _error_body("not found", path))

    def _recommend_request_from_query(self) -> RecommendRequest:
        """Build a :class:`RecommendRequest` from GET query parameters.

        ``GET /v1/recommend`` with no parameters asks about the default
        query shape; ``?samples=10000&max_hops=3&memory_limited=true``
        narrows it.  Values go through the same validation as the POST
        body (booleans are ``true``/``false``/``1``/``0``).
        """
        query = self.path.partition("?")[2].partition("#")[0]
        payload: Dict[str, Any] = {}
        for key, values in parse_qs(query, keep_blank_values=True).items():
            raw = values[-1]
            if key in RecommendRequest._BOOL_KEYS:
                if raw.lower() not in ("true", "false", "1", "0"):
                    raise InvalidQueryError(
                        f"{key} must be true/false, got {raw!r}"
                    )
                payload[key] = raw.lower() in ("true", "1")
            else:
                try:
                    payload[key] = int(raw)
                except ValueError:
                    raise InvalidQueryError(
                        f"{key} must be an integer, got {raw!r}"
                    ) from None
        return RecommendRequest.from_dict(payload)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        path = self.route_path
        handler = self._post_routes().get(path)
        if handler is None:
            if path in self._GET_PATHS:
                self._send_method_not_allowed("GET")
            else:
                self._send_json(404, _error_body("not found", path))
            return
        try:
            payload = self._read_json()
            response = handler(payload)
        except ReliabilityError as error:
            self._send_json(error.http_status, {"error": error.to_dict()})
        except Exception:  # noqa: BLE001 — the transport must not die
            self._send_internal_error("POST", path)
        else:
            self._send_json(200, response)

    def _send_internal_error(self, verb: str, path: str) -> None:
        """Contain an unexpected handler failure: log, 500, close.

        Log server-side and answer a minimal 500.  Re-raising (the old
        ``do_POST`` behaviour) made socketserver tear the keep-alive
        connection down *after* the response, with no ``Connection:
        close`` header — clients saw resets on their next pipelined
        request.  Close the connection explicitly (the header goes out
        with the 500) and keep the handler thread's exit clean.
        """
        self.log_error(
            "unhandled exception serving %s %s:\n%s",
            verb,
            path,
            traceback.format_exc().rstrip(),
        )
        self.close_connection = True
        self._send_json(
            500,
            {
                "error": {
                    "type": "InternalError",
                    "message": "internal server error",
                }
            },
        )

    def _post_routes(self) -> Dict[str, Callable[[Any], Dict[str, Any]]]:
        service = self.server.service
        return {
            "/v1/estimate": lambda payload: service.estimate(
                EstimateRequest.from_dict(payload)
            ).to_dict(),
            "/v1/batch": lambda payload: service.estimate_batch(
                BatchRequest.from_dict(payload)
            ).to_dict(),
            "/v1/warm": lambda payload: service.warm(
                WarmRequest.from_dict(payload)
            ).to_dict(),
            "/v1/topk": lambda payload: service.topk(
                TopKRequest.from_dict(payload)
            ).to_dict(),
            "/v1/bounds": lambda payload: service.bounds(
                BoundsRequest.from_dict(payload)
            ).to_dict(),
            "/v1/recommend": lambda payload: service.recommend(
                RecommendRequest.from_dict(payload)
            ).to_dict(),
            "/v1/update": self._handle_update,
            "/v1/shard/run": self._handle_shard_run,
        }

    def _handle_update(self, payload: Any) -> Dict[str, Any]:
        """Apply a live graph update, then re-warm in the background.

        The re-warm runs on a daemon thread *after* the update response
        is computed: the client gets its version transition immediately,
        and the hottest logged keys are re-evaluated against the
        successor concurrently with whatever traffic follows.  Progress
        is observable via the ``rewarm`` counters in ``/v1/stats``.
        """
        service = self.server.service
        response = service.update(UpdateRequest.from_dict(payload)).to_dict()
        limit = getattr(self.server, "rewarm_top", DEFAULT_REWARM_TOP)
        if limit > 0:
            threading.Thread(
                target=service.rewarm,
                args=(limit,),
                name="repro-serve-rewarm",
                daemon=True,
            ).start()
        return response

    def _handle_shard_run(self, payload: Any) -> Dict[str, Any]:
        """Evaluate one world range for a coordinator (shard-tier RPC).

        The optional :func:`shard_run_delay` sleep runs *before* the
        service call, in the dispatch window a coordinator observes —
        exactly where a fault drill wants the worker to be killable.
        """
        delay = shard_run_delay()
        if delay > 0:
            time.sleep(delay)
        return self.server.service.shard_run(
            ShardRunRequest.from_dict(payload)
        ).to_dict()

    # ------------------------------------------------------------------
    # IO helpers
    # ------------------------------------------------------------------

    def _read_json(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            # The body size is unknowable, so the connection cannot be
            # resynchronised for keep-alive: close it after the error.
            self.close_connection = True
            raise InvalidQueryError("invalid Content-Length header") from None
        if length < 0:
            # A negative declared length is not "empty", it is a
            # malformed (or hostile) header — and like an unparseable
            # one, it leaves the connection unsynchronisable.
            self.close_connection = True
            raise InvalidQueryError(
                f"Content-Length must be non-negative, got {length}"
            )
        if length == 0:
            raise InvalidQueryError(
                "request body must be a JSON object (empty body received)"
            )
        limit = max_body_bytes()
        if length > limit:
            # Drain (and discard) the declared body in bounded chunks
            # before rejecting: responding while the client is still
            # writing would reset the connection and the structured 413
            # would never arrive.  The connection is closed afterwards
            # regardless — a client that declared more than it sends
            # must not stall a keep-alive handler thread forever.
            self.close_connection = True
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 1 << 16))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise InvalidQueryError(
                f"request body is not valid JSON: {error}"
            ) from None

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_method_not_allowed(self, allowed: str) -> None:
        self._send_json(
            405,
            {
                "error": {
                    "type": "MethodNotAllowed",
                    "message": f"{self.path} only accepts {allowed}",
                }
            },
            extra_headers={"Allow": allowed},
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def log_error(self, format: str, *args) -> None:  # noqa: A002
        # Failures are never silenced: ``quiet`` suppresses per-request
        # access logs (log_message above), not error reports — a 500's
        # traceback must reach the server log in every mode.
        BaseHTTPRequestHandler.log_message(self, format, *args)


def _error_body(message: str, path: str) -> Dict[str, Any]:
    return {"error": {"type": "NotFound", "message": f"{message}: {path}"}}


def create_server(
    service: ReliabilityService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    quiet: bool = True,
    rewarm_top: int = DEFAULT_REWARM_TOP,
) -> ReliabilityHTTPServer:
    """Bind a server to ``service`` (``port=0`` picks a free port).

    The caller owns both lifetimes: ``server.serve_forever()`` to run,
    then ``server.shutdown()`` / ``server.server_close()`` and
    ``service.close()`` to tear down.  Tests bind to port 0 and drive
    the returned server from a background thread.
    """
    return ReliabilityHTTPServer(
        (host, port), service, quiet=quiet, rewarm_top=rewarm_top
    )


def serve(
    service: ReliabilityService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    quiet: bool = True,
    ready_callback: Optional[Callable[[ReliabilityHTTPServer], None]] = None,
    rewarm_top: int = DEFAULT_REWARM_TOP,
) -> None:
    """Run the server until interrupted (the ``repro serve`` body)."""
    server = create_server(
        service, host, port, quiet=quiet, rewarm_top=rewarm_top
    )
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MAX_BODY_BYTES",
    "MAX_BODY_ENV_VAR",
    "SHARD_RUN_DELAY_ENV_VAR",
    "ReliabilityHTTPServer",
    "ReliabilityRequestHandler",
    "create_server",
    "max_body_bytes",
    "serve",
    "shard_run_delay",
]
