"""HTTP serving layer over the :mod:`repro.api` facade (stdlib-only).

Start one from the CLI (``repro serve --dataset lastfm --scale small``)
or programmatically::

    from repro.api import ReliabilityService
    from repro.serve import create_server

    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=7)
    server = create_server(service, port=0)  # port 0 picks a free port
    server.serve_forever()
"""

from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    MAX_BODY_BYTES,
    MAX_BODY_ENV_VAR,
    SHARD_RUN_DELAY_ENV_VAR,
    ReliabilityHTTPServer,
    ReliabilityRequestHandler,
    create_server,
    max_body_bytes,
    serve,
    shard_run_delay,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MAX_BODY_BYTES",
    "MAX_BODY_ENV_VAR",
    "SHARD_RUN_DELAY_ENV_VAR",
    "ReliabilityHTTPServer",
    "ReliabilityRequestHandler",
    "create_server",
    "max_body_bytes",
    "serve",
    "shard_run_delay",
]
