"""Experiment framework: convergence, metrics, memory, orchestration."""

from repro.experiments.convergence import (
    ConvergenceCriterion,
    ConvergenceResult,
    SamplePoint,
    evaluate_at_k,
    run_convergence,
)
from repro.experiments.metrics import relative_error, relative_error_table
from repro.experiments.memory import format_bytes, traced_peak_bytes
from repro.experiments.runner import StudyConfig, StudyResult, run_study
from repro.experiments.report import (
    format_dict_rows,
    format_series,
    format_table,
    stars,
)

__all__ = [
    "ConvergenceCriterion",
    "ConvergenceResult",
    "SamplePoint",
    "evaluate_at_k",
    "run_convergence",
    "relative_error",
    "relative_error_table",
    "format_bytes",
    "traced_peak_bytes",
    "StudyConfig",
    "StudyResult",
    "run_study",
    "format_dict_rows",
    "format_series",
    "format_table",
    "stars",
]
