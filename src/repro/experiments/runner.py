"""Experiment orchestration: one *study* = one dataset, all estimators.

A study reproduces, for a single dataset, everything the paper derives from
its convergence protocol: the rho_K curves (Fig. 7), the accuracy tables
(Tables 3-8), the runtime tables (Tables 9-14), and the memory comparison
(Fig. 12).  Benchmarks configure a study per dataset and render the rows via
:mod:`repro.experiments.report`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.estimators.base import Estimator
from repro.core.registry import PAPER_ESTIMATORS, create_estimator, display_name
from repro.datasets.queries import QueryWorkload, generate_workload
from repro.datasets.suite import Dataset
from repro.experiments.convergence import (
    ConvergenceCriterion,
    ConvergenceResult,
    run_convergence,
)
from repro.experiments.metrics import deviation_of, relative_error
from repro.experiments.memory import format_bytes

REFERENCE_ESTIMATOR = "mc"  # the paper's accuracy baseline (Eq. 14)
REPORT_SAMPLE_SIZE = 1_000  # the fixed K prior work compared at


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one dataset-level study.

    The paper's full protocol is ``pair_count=100, repeats=100``; defaults
    here are sized for the Python substrate and overridable everywhere.
    """

    dataset: str
    scale: str = "small"
    pair_count: int = 10
    hop_distance: int = 2
    repeats: int = 8
    criterion: ConvergenceCriterion = ConvergenceCriterion()
    estimators: Sequence[str] = tuple(PAPER_ESTIMATORS)
    seed: int = 0
    estimator_options: Dict[str, dict] = field(default_factory=dict)
    #: Submit the whole workload as one batch per repeat through
    #: ``Estimator.estimate_batch`` — estimators with a shared-world fast
    #: path (MC via :mod:`repro.engine`) then sample each possible world
    #: once per repeat instead of once per (pair, repeat).  Off by default
    #: to keep the per-(pair, repeat) substream protocol of the paper's
    #: tables bit-for-bit stable.
    use_batch_engine: bool = False
    #: Worker processes for engine-backed batch evaluation (``None`` = the
    #: engine default).  A pure wall-clock knob: by the engine's
    #: determinism contract it cannot change any measured estimate.
    engine_workers: Optional[int] = None
    #: Directory of the persistent result-cache sidecar for engine-backed
    #: batch evaluation (``None`` = in-memory only).  Like ``workers`` a
    #: pure wall-clock knob — the cache key fully determines each
    #: estimate — but one that survives the process: re-running the same
    #: study serves every grid point from disk.
    engine_cache_dir: Optional[str] = None
    #: Hop bound for §2.9 d-hop reliability studies: every workload query
    #: measures "reaches within max_hops edges" instead of plain
    #: reachability.  Requires ``use_batch_engine=True`` and an estimator
    #: with a d-hop fast path (MC).
    max_hops: Optional[int] = None

    def options_for(self, key: str) -> dict:
        options = dict(self.estimator_options.get(key, {}))
        if key == "bfs_sharing":
            # The index must cover the largest K on the grid, and must be
            # re-sampled between queries for inter-query independence
            # (paper §3.7, Table 15).
            options.setdefault("capacity", self.criterion.k_max)
            options.setdefault("refresh_per_query", True)
        return options


@dataclass
class StudyResult:
    """All measurements of one study, with table-shaped accessors."""

    config: StudyConfig
    dataset: Dataset
    workload: QueryWorkload
    results: Dict[str, ConvergenceResult]
    prepare_seconds: Dict[str, float]
    reference_per_pair: np.ndarray  # MC per-pair means at MC's convergence

    # ------------------------------------------------------------------
    # Tables 3-8: accuracy
    # ------------------------------------------------------------------

    def accuracy_rows(self) -> List[Dict[str, str]]:
        rows = []
        errors_at_convergence = {}
        errors_at_fixed = {}
        for key in self.config.estimators:
            result = self.results[key]
            converged = result.convergence_point
            fixed = result.point_at(REPORT_SAMPLE_SIZE) or converged
            re_conv = relative_error(
                converged.per_pair_means, self.reference_per_pair
            )
            re_fixed = relative_error(
                fixed.per_pair_means, self.reference_per_pair
            )
            errors_at_convergence[key] = re_conv
            errors_at_fixed[key] = re_fixed
            rows.append(
                {
                    "estimator": display_name(key),
                    "K_conv": str(converged.samples),
                    "R_conv": f"{converged.average_reliability:.4f}",
                    "RE_conv_%": f"{100 * re_conv:.2f}",
                    "R_1000": f"{fixed.average_reliability:.4f}",
                    "RE_1000_%": f"{100 * re_fixed:.2f}",
                }
            )
        rows.append(
            {
                "estimator": "Pairwise Deviation",
                "K_conv": "",
                "R_conv": "",
                "RE_conv_%": f"{100 * deviation_of(errors_at_convergence):.2f}",
                "R_1000": "",
                "RE_1000_%": f"{100 * deviation_of(errors_at_fixed):.2f}",
            }
        )
        return rows

    # ------------------------------------------------------------------
    # Tables 9-14: running time
    # ------------------------------------------------------------------

    def runtime_rows(self) -> List[Dict[str, str]]:
        rows = []
        for key in self.config.estimators:
            result = self.results[key]
            converged = result.convergence_point
            fixed = result.point_at(REPORT_SAMPLE_SIZE) or converged
            rows.append(
                {
                    "estimator": display_name(key),
                    "K_conv": str(converged.samples),
                    "time_conv_s": f"{converged.seconds_per_query:.4f}",
                    "time_1000_s": f"{fixed.seconds_per_query:.4f}",
                    "ms_per_sample": f"{converged.milliseconds_per_sample:.4f}",
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Fig. 12: memory
    # ------------------------------------------------------------------

    def memory_rows(self) -> List[Dict[str, str]]:
        rows = []
        for key in self.config.estimators:
            converged = self.results[key].convergence_point
            rows.append(
                {
                    "estimator": display_name(key),
                    "memory": format_bytes(converged.memory_bytes),
                    "memory_bytes": str(converged.memory_bytes),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Fig. 7: dispersion curves
    # ------------------------------------------------------------------

    def dispersion_series(self) -> Dict[str, List[Dict[str, float]]]:
        series = {}
        for key in self.config.estimators:
            series[key] = [
                {
                    "K": point.samples,
                    "rho_K": point.dispersion,
                    "V_K": point.average_variance,
                    "R_K": point.average_reliability,
                }
                for point in self.results[key].points
            ]
        return series

    def convergence_samples(self) -> Dict[str, Optional[int]]:
        return {
            key: self.results[key].converged_at for key in self.config.estimators
        }


def build_estimator(config: StudyConfig, key: str, graph, service=None) -> Estimator:
    """Instantiate one estimator with the study's options applied.

    With a :class:`~repro.api.service.ReliabilityService` the estimator
    is constructed through the facade's hook (same graph, same seed) —
    the study path and the request-serving path then share one
    construction story.  Estimators are always *fresh* per study: their
    RNG state must not leak between runs.
    """
    if service is not None:
        return service.create_estimator(
            key, seed=config.seed, **config.options_for(key)
        )
    return create_estimator(key, graph, seed=config.seed, **config.options_for(key))


def run_study(config: StudyConfig, *, service=None) -> StudyResult:
    """Execute a full study: all estimators, full K grid, shared workload.

    Every study runs behind the :class:`~repro.api.service.
    ReliabilityService` facade: pass one in (``service.study(config)``
    does), or one is built here from the config's ``(dataset, scale,
    seed)``.  Either way estimators come from the facade's construction
    hook, so the CLI, the HTTP server, and the experiment harness share
    a single code path into the estimator registry.
    """
    if service is None:
        # Imported lazily: experiments sit below api in the layer
        # diagram, but the harness deliberately runs *through* the
        # facade (docs/architecture.md "Serving layer").
        from repro.api.service import ReliabilityService

        service = ReliabilityService.from_dataset(
            config.dataset, config.scale, config.seed
        )
    dataset = service.dataset
    if dataset is None:
        raise ValueError(
            "run_study needs a dataset-backed service; build it with "
            "ReliabilityService.from_dataset(...)"
        )
    workload = generate_workload(
        dataset.graph,
        pair_count=config.pair_count,
        hop_distance=config.hop_distance,
        seed=config.seed,
    )

    results: Dict[str, ConvergenceResult] = {}
    prepare_seconds: Dict[str, float] = {}
    for key in config.estimators:
        estimator = build_estimator(config, key, dataset.graph, service=service)
        started = time.perf_counter()
        estimator.prepare()
        prepare_seconds[key] = time.perf_counter() - started
        results[key] = run_convergence(
            estimator,
            workload,
            criterion=config.criterion,
            repeats=config.repeats,
            seed=config.seed,
            use_batch=config.use_batch_engine,
            workers=config.engine_workers,
            max_hops=config.max_hops,
            cache_dir=config.engine_cache_dir,
        )

    reference_key = (
        REFERENCE_ESTIMATOR
        if REFERENCE_ESTIMATOR in results
        else next(iter(results))
    )
    reference = results[reference_key].convergence_point.per_pair_means
    return StudyResult(
        config=config,
        dataset=dataset,
        workload=workload,
        results=results,
        prepare_seconds=prepare_seconds,
        reference_per_pair=reference,
    )


__all__ = [
    "REFERENCE_ESTIMATOR",
    "REPORT_SAMPLE_SIZE",
    "StudyConfig",
    "StudyResult",
    "build_estimator",
    "run_study",
]
