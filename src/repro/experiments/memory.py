"""Memory accounting (paper §3.6-3.7).

Two complementary measurements:

* :func:`traced_peak_bytes` — ``tracemalloc`` peak of a callable: the actual
  Python-heap high-water mark of one query (captures NumPy buffers too).
* Estimator-reported working sets (``Estimator.memory_bytes``) — the
  structural accounting the paper discusses (index resident size, recursion
  stack, node/edge vectors); cheap enough to sample at every grid point.

The paper reports process-level usage of a C++ binary; our two views bracket
the same quantities (see DESIGN.md substitution table).
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Callable, Tuple


def traced_peak_bytes(operation: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``operation`` and return ``(result, peak_allocated_bytes)``.

    Nested use is supported: if tracing is already active, peaks are
    measured relative to the current snapshot.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    baseline, _ = tracemalloc.get_traced_memory()
    try:
        result = operation()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, max(0, peak - baseline)


def format_bytes(size: float) -> str:
    """Human-readable byte count (power-of-1024 units)."""
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"


__all__ = ["traced_peak_bytes", "format_bytes"]
