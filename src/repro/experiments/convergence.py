"""Convergence framework (paper §3.1.4).

The paper's central methodological point: comparing estimators at one fixed
sample size is unfair, because the K needed for a *stable* estimate differs
per estimator and dataset.  Their criterion: at each K on a grid
(250, 500, ...), repeat every s-t query T times, compute the average
variance ``V_K`` (Eqs. 11-12) and average reliability ``R_K`` (Eq. 13), and
declare convergence when the *index of dispersion*
``rho_K = V_K / R_K < 0.001``.

:func:`evaluate_at_k` measures one grid point; :func:`run_convergence` walks
the grid until the criterion fires (or the grid is exhausted — reported as
non-converged, which the harness treats as "converged at k_max" the way the
paper treats its largest measured K).

Per-(pair, repeat, K) RNG substreams come from
:func:`repro.util.rng.stable_substream`, so every estimator sees the same
workload under independent but reproducible randomness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.estimators.base import Estimator
from repro.datasets.queries import QueryWorkload
from repro.util.rng import stable_substream
from repro.util.stats import dispersion_index

DISPERSION_THRESHOLD = 1e-3  # the paper's rho_K cut-off
DEFAULT_K_START = 250
DEFAULT_K_STEP = 250
DEFAULT_K_MAX = 2_000
DEFAULT_REPEATS = 100  # the paper's T; experiments override with smaller T


@dataclass(frozen=True)
class ConvergenceCriterion:
    """The K grid and dispersion threshold of the paper's protocol."""

    dispersion_threshold: float = DISPERSION_THRESHOLD
    k_start: int = DEFAULT_K_START
    k_step: int = DEFAULT_K_STEP
    k_max: int = DEFAULT_K_MAX

    def grid(self) -> List[int]:
        return list(range(self.k_start, self.k_max + 1, self.k_step))


@dataclass
class SamplePoint:
    """Measurements for one estimator at one sample size K."""

    samples: int
    average_reliability: float  # R_K, Eq. 13
    average_variance: float  # V_K, Eq. 12
    dispersion: float  # rho_K = V_K / R_K
    per_pair_means: np.ndarray  # mean estimate per pair across repeats
    seconds_per_query: float  # wall time per s-t query (one repeat)
    memory_bytes: int  # estimator-reported online working set

    @property
    def milliseconds_per_sample(self) -> float:
        return 1000.0 * self.seconds_per_query / self.samples


@dataclass
class ConvergenceResult:
    """Full grid walk for one estimator on one workload."""

    estimator_key: str
    points: List[SamplePoint] = field(default_factory=list)
    converged_at: Optional[int] = None

    @property
    def convergence_point(self) -> SamplePoint:
        """The measured point at convergence (last grid point otherwise)."""
        if not self.points:
            raise ValueError("no measured points")
        if self.converged_at is not None:
            for point in self.points:
                if point.samples == self.converged_at:
                    return point
        return self.points[-1]

    def point_at(self, samples: int) -> Optional[SamplePoint]:
        for point in self.points:
            if point.samples == samples:
                return point
        return None


def _batch_repeat_seed(seed: int, repeat: int, samples: int) -> int:
    """Integer root for one (repeat, K) batch — stable across runs.

    Each repeat submits the whole workload as one batch; deriving an
    independent integer per (seed, repeat, K) keeps repeats statistically
    independent while letting the batch engine share worlds *within* a
    repeat (paper §3.7's world reuse at workload granularity).
    """
    sequence = np.random.SeedSequence((int(seed), int(repeat), int(samples)))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def evaluate_at_k(
    estimator: Estimator,
    workload: QueryWorkload,
    samples: int,
    repeats: int,
    seed: int = 0,
    use_batch: bool = False,
    workers: Optional[int] = None,
    max_hops: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> SamplePoint:
    """Measure one (estimator, K) grid point over the whole workload.

    Every (pair, repeat) cell gets its own RNG substream keyed additionally
    by K, matching the paper's protocol of fully independent runs.  Query
    wall time is averaged over all runs; the estimator's self-reported
    working set is sampled after the last query.

    With ``use_batch=True`` each repeat submits the whole workload through
    :meth:`Estimator.estimate_batch` instead of the per-pair loop, letting
    estimators with a shared-world fast path (MC via :mod:`repro.engine`)
    amortise world sampling across pairs.  Repeats remain independent
    (fresh batch seed per repeat); pairs within a repeat may share worlds,
    which leaves every per-pair marginal distribution — and hence the
    dispersion protocol's statistics — unchanged.

    ``workers`` (multiprocess chunk evaluation), ``max_hops`` (§2.9
    d-hop reliability: every query becomes "reaches within ``max_hops``
    edges"), and ``cache_dir`` (the persistent result cache: a re-run of
    the same study warm-starts from the sidecar) ride on the batch path
    and therefore require ``use_batch=True``; ``workers`` and
    ``cache_dir`` cannot change estimates, ``max_hops`` changes the
    measured quantity itself.
    """
    if max_hops is not None and not use_batch:
        raise ValueError(
            "max_hops measures d-hop reliability through the batch "
            "engine; pass use_batch=True"
        )
    if cache_dir is not None and not use_batch:
        raise ValueError(
            "cache_dir persists batch-engine results; pass use_batch=True"
        )
    pair_count = len(workload)
    estimates = np.zeros((pair_count, repeats), dtype=np.float64)
    started = time.perf_counter()
    if use_batch:
        # Forwarded only when set, so externally registered estimators
        # whose estimate_batch predates the cache_dir knob keep working.
        options = {} if cache_dir is None else {"cache_dir": cache_dir}
        for repeat in range(repeats):
            queries = [
                (source, target, samples)
                if max_hops is None
                else (source, target, samples, max_hops)
                for source, target in workload
            ]
            estimates[:, repeat] = estimator.estimate_batch(
                queries,
                seed=_batch_repeat_seed(seed, repeat, samples),
                workers=workers,
                **options,
            )
    else:
        for pair_index, (source, target) in enumerate(workload):
            for repeat in range(repeats):
                rng = stable_substream(seed, pair_index, repeat, samples)
                estimates[pair_index, repeat] = estimator.estimate(
                    source, target, samples, rng=rng
                )
    elapsed = time.perf_counter() - started

    per_pair_means = estimates.mean(axis=1)
    if repeats > 1:
        per_pair_variance = estimates.var(axis=1, ddof=1)
    else:
        per_pair_variance = np.zeros(pair_count)
    average_reliability = float(per_pair_means.mean())
    average_variance = float(per_pair_variance.mean())
    return SamplePoint(
        samples=samples,
        average_reliability=average_reliability,
        average_variance=average_variance,
        dispersion=dispersion_index(average_variance, average_reliability),
        per_pair_means=per_pair_means,
        seconds_per_query=elapsed / (pair_count * repeats),
        memory_bytes=estimator.memory_bytes(),
    )


def run_convergence(
    estimator: Estimator,
    workload: QueryWorkload,
    criterion: ConvergenceCriterion = ConvergenceCriterion(),
    repeats: int = DEFAULT_REPEATS,
    seed: int = 0,
    stop_at_convergence: bool = False,
    use_batch: bool = False,
    workers: Optional[int] = None,
    max_hops: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> ConvergenceResult:
    """Walk the K grid until the dispersion criterion fires.

    With ``stop_at_convergence=False`` (default) the full grid is measured —
    needed by the trade-off figures (9-11), which plot past convergence.
    ``use_batch`` routes each grid point through the workload-at-once path
    of :func:`evaluate_at_k`; ``workers``, ``max_hops``, and ``cache_dir``
    are forwarded to it (all require the batch path).
    """
    result = ConvergenceResult(estimator_key=getattr(estimator, "key", "?"))
    for samples in criterion.grid():
        point = evaluate_at_k(
            estimator, workload, samples, repeats, seed,
            use_batch=use_batch, workers=workers, max_hops=max_hops,
            cache_dir=cache_dir,
        )
        result.points.append(point)
        converged = (
            result.converged_at is None
            and point.dispersion < criterion.dispersion_threshold
        )
        if converged:
            result.converged_at = samples
            if stop_at_convergence:
                break
    return result


__all__ = [
    "DISPERSION_THRESHOLD",
    "ConvergenceCriterion",
    "SamplePoint",
    "ConvergenceResult",
    "evaluate_at_k",
    "run_convergence",
]
