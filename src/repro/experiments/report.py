"""Plain-text rendering of paper-style tables and figure series.

Benchmarks print through these helpers so every reproduced table and figure
looks the same: a titled, column-aligned ASCII table.  ``format_series``
renders figure data (one line per K on the sweep axis) the way the paper's
plots would read off.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
) -> str:
    """Render an aligned ASCII table with a title rule."""
    materialised = [list(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * len(line(headers))
    parts = [title, "=" * len(title), line(headers), rule]
    parts.extend(line(row) for row in materialised)
    return "\n".join(parts)


def format_dict_rows(
    title: str,
    rows: Sequence[Mapping[str, str]],
    columns: Sequence[str],
    headers: Sequence[str] | None = None,
) -> str:
    """Render dict-shaped rows (as produced by StudyResult) as a table."""
    headers = list(headers or columns)
    body = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(title, headers, body)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    value_format: str = "{:.5g}",
) -> str:
    """Render figure data: one column per named series, one row per x.

    ``series`` maps a curve name (estimator) to its y-values, aligned with
    ``x_values`` — exactly the points a plot of the figure would show.
    """
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row = [str(x)]
        for name in series:
            values = series[name]
            if index < len(values) and values[index] is not None:
                value = values[index]
                row.append(
                    value_format.format(value)
                    if isinstance(value, float)
                    else str(value)
                )
            else:
                row.append("-")
        rows.append(row)
    return format_table(title, headers, rows)


def stars(count: int, maximum: int = 4) -> str:
    """Star-rating cell for the Table 17 summary."""
    count = max(0, min(maximum, int(count)))
    return "*" * count + "." * (maximum - count)


__all__ = ["format_table", "format_dict_rows", "format_series", "stars"]
