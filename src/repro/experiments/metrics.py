"""Evaluation metrics (paper §3.1.4, Eqs. 14-15).

Relative error is always measured against *MC sampling at its variance
convergence* — the paper's reference for "the right answer" (Eq. 14) — and
the pairwise deviation D (Eq. 15) summarises how much the estimators
disagree with each other at a given K.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.util.stats import pairwise_deviation

MINIMUM_REFERENCE = 1e-12


def relative_error(
    estimates: np.ndarray, reference: np.ndarray
) -> float:
    """Mean relative error of per-pair estimates against the MC reference.

    Pairs whose reference reliability is (numerically) zero are skipped: the
    paper's ratio is undefined there, and its 2-hop workloads make them
    rare.  If every pair is skipped the error is defined as 0 when the
    estimates are all zero too, else infinity.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if estimates.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: estimates {estimates.shape} vs reference "
            f"{reference.shape}"
        )
    valid = reference > MINIMUM_REFERENCE
    if not valid.any():
        return 0.0 if np.allclose(estimates, 0.0) else float("inf")
    ratios = np.abs(estimates[valid] - reference[valid]) / reference[valid]
    return float(ratios.mean())


def relative_error_table(
    per_estimator_estimates: Dict[str, np.ndarray], reference: np.ndarray
) -> Dict[str, float]:
    """Relative error per estimator, plus the pairwise deviation D."""
    table = {
        key: relative_error(estimates, reference)
        for key, estimates in per_estimator_estimates.items()
    }
    return table


def deviation_of(table: Dict[str, float]) -> float:
    """Pairwise deviation D (Eq. 15) over a relative-error table."""
    return pairwise_deviation(list(table.values()))


__all__ = [
    "MINIMUM_REFERENCE",
    "relative_error",
    "relative_error_table",
    "deviation_of",
]
