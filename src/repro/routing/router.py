"""The adaptive query router: measured cost/accuracy beats a static table.

The paper's closing guidance (Table 17 / Fig. 18) is a *static* ranking:
true on average over its study, blind to the graph actually being served,
the K actually requested, and everything an estimator's measured behaviour
reveals at runtime.  :class:`AdaptiveRouter` replaces that with a decision
per query:

1. **Measured scoring.**  For each candidate estimator the router reads
   its :class:`~repro.routing.telemetry.QueryTelemetry` bucket for the
   query's (graph fingerprint, K band, hop band).  A bucket with at least
   ``min_observations`` observations is *warm* and gets the score

   ``seconds_per_sample * (estimate_variance + variance_floor)``

   — measured cost times measured dispersion, the product a cost/accuracy
   frontier minimises (an estimator may buy accuracy with time or vice
   versa; the product prices both).  The floor keeps a zero-variance
   bucket (deterministic answers, or too few samples to disperse) from
   scoring as free.  Lowest score wins.

2. **Exploration floor.**  Routing only to the current winner would never
   re-measure the losers, so every ``round(1 / epsilon)``-th decision in
   a bucket routes to the *least-observed* candidate instead.  The
   schedule is a deterministic counter, not a coin flip: no RNG state,
   reproducible decision sequences, and the determinism hammer in
   ``tests/serve`` can replay it exactly.

3. **Cold start.**  Until any candidate is warm the router defers to the
   paper's own decision tree (:func:`repro.core.recommend.
   recommend_estimator`), constrained to the candidates — so a fresh
   service routes exactly as the paper recommends, and measurement takes
   over only once there is measurement to act on.

Live updates need no handling here at all: bucket keys embed the graph
fingerprint, so a ``/v1/update`` lands the router in cold buckets for the
successor graph — static routing, then re-learned — while the
predecessor's buckets lie dormant (and revive if its fingerprint ever
returns).  Estimators whose index an update dropped arrive through
``unavailable`` and are excluded before scoring.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Collection, Dict, Optional, Sequence, Tuple

from repro.core.recommend import (
    HOP_CAPABLE_ESTIMATORS,
    recommend_estimator,
)
from repro.core.registry import estimator_keys
from repro.routing.telemetry import (
    BucketStats,
    QueryTelemetry,
    hops_band,
    samples_band,
)

#: Exploration floor: fraction of decisions per bucket spent re-measuring.
DEFAULT_EPSILON = 0.1

#: Observations before a bucket's measurements are trusted over the
#: static heuristic.
DEFAULT_MIN_OBSERVATIONS = 5

#: Keeps a zero-dispersion bucket from scoring as infinitely accurate.
VARIANCE_FLOOR = 1e-4

#: Candidate pool: the serving-grade per-query methods.  LP/LP+ answer
#: with a deterministic bias (no K to spend), and RHH is dominated by
#: RSS in the paper's own study — neither belongs in a budgeted router.
DEFAULT_CANDIDATES = (
    "mc",
    "bfs_sharing",
    "prob_tree",
    "rss",
    "importance",
    "strata",
)

#: Bound on distinct decision-counter keys (one per routed bucket).
DECISION_COUNTER_CAPACITY = 4096


@dataclass(frozen=True)
class RoutingDecision:
    """One routed query: the pick, why, and the evidence behind it."""

    method: str
    reason: str  # "measured" | "exploration" | "cold_start"
    fingerprint: str
    samples_band: int
    hops_band: int
    #: Per-candidate score (``None`` = bucket cold), lowest wins.
    scores: Dict[str, Optional[float]] = field(default_factory=dict)
    #: Per-candidate warm-bucket snapshots backing the scores.
    evidence: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: The static tree's branch decisions (cold-start routes only).
    static_path: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "method": self.method,
            "reason": self.reason,
            "fingerprint": self.fingerprint,
            "samples_band": self.samples_band,
            "hops_band": self.hops_band,
            "scores": dict(self.scores),
            "evidence": {
                method: dict(stats) for method, stats in self.evidence.items()
            },
        }
        if self.static_path:
            payload["static_path"] = list(self.static_path)
        return payload


class AdaptiveRouter:
    """Scores candidates on measured telemetry; explores; falls back."""

    def __init__(
        self,
        telemetry: QueryTelemetry,
        *,
        candidates: Sequence[str] = DEFAULT_CANDIDATES,
        epsilon: float = DEFAULT_EPSILON,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
    ) -> None:
        known = set(estimator_keys())
        unknown = [key for key in candidates if key not in known]
        if unknown:
            raise ValueError(
                f"unknown candidate estimators: {', '.join(unknown)}"
            )
        if not candidates:
            raise ValueError("a router needs at least one candidate")
        if not 0.0 <= float(epsilon) <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if int(min_observations) < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.telemetry = telemetry
        self.candidates: Tuple[str, ...] = tuple(candidates)
        self.epsilon = float(epsilon)
        self.min_observations = int(min_observations)
        #: Decisions per bucket between exploration routes (0 = never).
        self._explore_interval = (
            round(1.0 / self.epsilon) if self.epsilon > 0.0 else 0
        )
        self._lock = threading.Lock()
        self._decisions: Dict[Tuple[str, int, int], int] = {}
        self._reason_counts: Dict[str, int] = {
            "measured": 0,
            "exploration": 0,
            "cold_start": 0,
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _eligible(
        self, max_hops: Optional[int], unavailable: Collection[str]
    ) -> Tuple[str, ...]:
        """Candidates able to serve this query's shape right now."""
        pool = self.candidates
        if max_hops is not None:
            pool = tuple(
                key for key in pool if key in HOP_CAPABLE_ESTIMATORS
            )
        pool = tuple(key for key in pool if key not in unavailable)
        if not pool:
            # mc is index-free and hop-capable: the one always-valid route.
            return ("mc",)
        return pool

    def _bucket_decision_count(
        self, fingerprint: str, band: int, hops: int
    ) -> int:
        """Post-increment this bucket's decision counter (micro-locked)."""
        key = (fingerprint, band, hops)
        with self._lock:
            count = self._decisions.get(key)
            if count is None:
                if len(self._decisions) >= DECISION_COUNTER_CAPACITY:
                    # Counter table full: treat as a fresh bucket without
                    # tracking — exploration pacing degrades, routing does
                    # not.
                    return 0
                count = 0
            self._decisions[key] = count + 1
            return count

    def _count_reason(self, reason: str) -> None:
        with self._lock:
            self._reason_counts[reason] += 1

    def route(
        self,
        *,
        fingerprint: str,
        samples: int,
        max_hops: Optional[int] = None,
        memory_limited: bool = False,
        unavailable: Collection[str] = (),
    ) -> RoutingDecision:
        """Pick the estimator for one query shape.

        Deterministic in ``(router state, telemetry state, arguments)``:
        the exploration schedule is a counter, scoring reads are pure,
        and ties break on candidate order.
        """
        band = samples_band(samples)
        hops = hops_band(max_hops)
        eligible = self._eligible(max_hops, unavailable)

        scores: Dict[str, Optional[float]] = {}
        evidence: Dict[str, Dict[str, float]] = {}
        observations: Dict[str, int] = {}
        for method in eligible:
            stats: Optional[BucketStats] = self.telemetry.observed(
                method,
                fingerprint=fingerprint,
                samples=samples,
                max_hops=max_hops,
            )
            observations[method] = 0 if stats is None else stats.count
            if stats is None or stats.count < self.min_observations:
                scores[method] = None
                continue
            scores[method] = stats.seconds_per_sample * (
                stats.estimate_variance + VARIANCE_FLOOR
            )
            evidence[method] = stats.to_dict()

        warm = [method for method in eligible if scores[method] is not None]
        if not warm:
            recommendation = recommend_estimator(
                memory_limited=memory_limited,
                max_hops=max_hops,
                unavailable=tuple(unavailable),
            )
            picks = [
                key for key in recommendation.estimators if key in eligible
            ]
            method = picks[0] if picks else eligible[0]
            self._count_reason("cold_start")
            return RoutingDecision(
                method=method,
                reason="cold_start",
                fingerprint=fingerprint,
                samples_band=band,
                hops_band=hops,
                scores=scores,
                evidence=evidence,
                static_path=tuple(recommendation.path),
            )

        decision_index = self._bucket_decision_count(fingerprint, band, hops)
        if (
            self._explore_interval
            and decision_index % self._explore_interval
            == self._explore_interval - 1
        ):
            # The exploration slot: re-measure the least-known candidate
            # (ties broken by candidate order, so the walk is stable).
            method = min(eligible, key=lambda key: (observations[key],))
            self._count_reason("exploration")
            return RoutingDecision(
                method=method,
                reason="exploration",
                fingerprint=fingerprint,
                samples_band=band,
                hops_band=hops,
                scores=scores,
                evidence=evidence,
            )

        method = min(warm, key=lambda key: (scores[key],))
        self._count_reason("measured")
        return RoutingDecision(
            method=method,
            reason="measured",
            fingerprint=fingerprint,
            samples_band=band,
            hops_band=hops,
            scores=scores,
            evidence=evidence,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> Dict[str, object]:
        """Router-lifetime counters for ``/v1/stats`` (lock-free read)."""
        return {
            "candidates": list(self.candidates),
            "epsilon": self.epsilon,
            "min_observations": self.min_observations,
            "decisions": dict(self._reason_counts),
            "buckets_routed": len(self._decisions),
        }


__all__ = [
    "DEFAULT_CANDIDATES",
    "DEFAULT_EPSILON",
    "DEFAULT_MIN_OBSERVATIONS",
    "VARIANCE_FLOOR",
    "AdaptiveRouter",
    "RoutingDecision",
]
