"""Online per-estimator query telemetry, bucketed for routing.

Every served query teaches the service something: how long the chosen
estimator took per sample, and what it answered.  :class:`QueryTelemetry`
accumulates both as running (count, mean, variance) triples — Welford's
algorithm, so one pass, O(1) per observation, no stored histories — in
buckets keyed by

``(graph fingerprint, method, samples band, hop band)``

* the **fingerprint** versions the bucket: after a live ``/v1/update``
  the successor graph's fingerprint differs, so old observations simply
  stop matching new lookups — the exact-invalidation idiom the result
  cache established (nothing is purged; a reverted graph re-warms
  instantly);
* the **samples band** is ``K.bit_length()`` — queries within a factor
  of two of each other share a bucket, since per-sample cost is the
  stable quantity while total cost scales with K;
* the **hop band** is the ``max_hops`` value itself (``-1`` when
  unbounded) — hop bounds are small integers and change both cost and
  the answer's meaning, so they never share buckets with unbounded
  queries.

Concurrency follows the service's stats-path recipe: writes take one
micro-lock (an observation is a handful of float ops — never held
across estimator or engine work), reads take none.  A lock-free read
can see a bucket mid-update (a count one ahead of its mean); routing
tolerates that the way ``/v1/stats`` snapshots do — the next read is
consistent, and no decision depends on one observation's exactness.

The bucket map is bounded: past :data:`DEFAULT_BUCKET_CAPACITY` distinct
keys, new buckets are dropped and counted (``dropped_observations``),
never evicted — the hot buckets of a workload big enough to overflow are
in the map long before it fills, mirroring the re-warm query log.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Bound on distinct (fingerprint, method, K-band, hop-band) buckets.
DEFAULT_BUCKET_CAPACITY = 4096

#: Bucket key: (fingerprint, method, samples_band, hops_band).
BucketKey = Tuple[str, str, int, int]


def samples_band(samples: int) -> int:
    """The power-of-two band of a sample budget K."""
    return int(samples).bit_length()


def hops_band(max_hops: Optional[int]) -> int:
    """The hop-bound band: the bound itself, ``-1`` when unbounded."""
    return -1 if max_hops is None else int(max_hops)


def bucket_key(
    fingerprint: str,
    method: str,
    samples: int,
    max_hops: Optional[int],
) -> BucketKey:
    return (fingerprint, method, samples_band(samples), hops_band(max_hops))


class _Accumulator:
    """Welford running (count, mean, variance) over one scalar stream."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (0.0 until two observations exist)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)


@dataclass(frozen=True)
class BucketStats:
    """One bucket's snapshot, the evidence a routing decision cites."""

    count: int
    seconds_per_sample: float
    latency_variance: float
    estimate_mean: float
    estimate_variance: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "seconds_per_sample": self.seconds_per_sample,
            "latency_variance": self.latency_variance,
            "estimate_mean": self.estimate_mean,
            "estimate_variance": self.estimate_variance,
        }


class QueryTelemetry:
    """Bucketed per-estimator latency and dispersion accumulators."""

    def __init__(self, *, capacity: int = DEFAULT_BUCKET_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        #: key -> (latency-per-sample accumulator, estimate accumulator).
        self._buckets: Dict[  # guarded-by: _lock
            BucketKey, Tuple[_Accumulator, _Accumulator]
        ] = {}
        self._observations = 0  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Writes (micro-locked)
    # ------------------------------------------------------------------

    def record(
        self,
        method: str,
        *,
        fingerprint: str,
        samples: int,
        max_hops: Optional[int],
        seconds: float,
        estimate: float,
    ) -> None:
        """Fold one served query into its bucket.

        ``seconds`` is the whole query's wall clock; it is normalised to
        per-sample cost here so differently-sized queries in one K band
        are comparable.
        """
        key = bucket_key(fingerprint, method, samples, max_hops)
        per_sample = float(seconds) / max(int(samples), 1)
        with self._lock:
            entry = self._buckets.get(key)
            if entry is None:
                if len(self._buckets) >= self.capacity:
                    self._dropped += 1
                    return
                entry = (_Accumulator(), _Accumulator())
                self._buckets[key] = entry
            entry[0].update(per_sample)
            entry[1].update(float(estimate))
            self._observations += 1

    # ------------------------------------------------------------------
    # Reads (lock-free, stats-path tolerance)
    # ------------------------------------------------------------------

    def observed(
        self,
        method: str,
        *,
        fingerprint: str,
        samples: int,
        max_hops: Optional[int],
    ) -> Optional[BucketStats]:
        """The bucket snapshot a lookup would route on, or ``None`` (cold)."""
        key = bucket_key(fingerprint, method, samples, max_hops)
        entry = self._buckets.get(key)
        if entry is None:
            return None
        latency, estimate = entry
        return BucketStats(
            count=latency.count,
            seconds_per_sample=latency.mean,
            latency_variance=latency.variance,
            estimate_mean=estimate.mean,
            estimate_variance=estimate.variance,
        )

    def observation_count(
        self,
        method: str,
        *,
        fingerprint: str,
        samples: int,
        max_hops: Optional[int],
    ) -> int:
        """How many observations ``method``'s bucket holds (0 when cold)."""
        entry = self._buckets.get(
            bucket_key(fingerprint, method, samples, max_hops)
        )
        return 0 if entry is None else entry[0].count

    def snapshot(self, fingerprint: Optional[str] = None) -> Dict[str, object]:
        """Aggregate view for ``/v1/stats``.

        Per-method totals are aggregated over buckets (restricted to
        ``fingerprint``'s when one is given — the live graph's view);
        the bucket map itself is too wide to serialise per request.
        """
        methods: Dict[str, Dict[str, float]] = {}
        # Lock-free read: ``sorted`` first materialises a shallow copy
        # (so concurrent inserts cannot raise mid-iteration), and the
        # sort pins the float-fold order to the key order — the totals
        # must not depend on which thread inserted its bucket first.
        for (key_fp, method, _, _), (latency, _) in sorted(
            self._buckets.items()
        ):
            if fingerprint is not None and key_fp != fingerprint:
                continue
            into = methods.setdefault(
                method, {"observations": 0, "buckets": 0, "seconds": 0.0}
            )
            into["observations"] += latency.count
            into["buckets"] += 1
            into["seconds"] += latency.mean * latency.count
        return {
            "observations": self._observations,
            "buckets": len(self._buckets),
            "dropped_observations": self._dropped,
            "methods": {
                method: {
                    "observations": int(totals["observations"]),
                    "buckets": int(totals["buckets"]),
                    "seconds_per_sample": (
                        totals["seconds"] / totals["observations"]
                        if totals["observations"]
                        else 0.0
                    ),
                }
                for method, totals in sorted(methods.items())
            },
        }


__all__ = [
    "DEFAULT_BUCKET_CAPACITY",
    "BucketKey",
    "BucketStats",
    "QueryTelemetry",
    "bucket_key",
    "samples_band",
    "hops_band",
]
