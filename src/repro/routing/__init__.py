"""Adaptive query routing: telemetry-driven estimator selection.

A decision-making layer between core (the estimators and the paper's
static recommendation) and the service facade: :class:`QueryTelemetry`
accumulates what every served query measured, and :class:`AdaptiveRouter`
turns those measurements into a per-query estimator choice with a
deterministic exploration floor and a static-heuristic cold start.  The
service wires it up behind ``estimator="auto"`` and ``/v1/recommend``;
see ``docs/routing.md``.
"""

from repro.routing.router import (
    DEFAULT_CANDIDATES,
    DEFAULT_EPSILON,
    DEFAULT_MIN_OBSERVATIONS,
    VARIANCE_FLOOR,
    AdaptiveRouter,
    RoutingDecision,
)
from repro.routing.telemetry import (
    DEFAULT_BUCKET_CAPACITY,
    BucketStats,
    QueryTelemetry,
    bucket_key,
    hops_band,
    samples_band,
)

__all__ = [
    "AdaptiveRouter",
    "BucketStats",
    "DEFAULT_BUCKET_CAPACITY",
    "DEFAULT_CANDIDATES",
    "DEFAULT_EPSILON",
    "DEFAULT_MIN_OBSERVATIONS",
    "QueryTelemetry",
    "RoutingDecision",
    "VARIANCE_FLOOR",
    "bucket_key",
    "hops_band",
    "samples_band",
]
