"""HTTP coverage for ``POST /v1/topk`` and ``POST /v1/bounds``.

Both endpoints existed in ``ReliabilityService.ENDPOINTS`` (and the
CLI) since PR 4 but were never reachable over HTTP — the drift
``repro lint``'s wire-contract rule (W302) now catches.  These tests
pin the served behaviour: bit-identical agreement with the facade,
strict unknown-key rejection, structured errors, and stats counting.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import BoundsRequest, ReliabilityService, TopKRequest
from repro.serve import create_server


@pytest.fixture(scope="module")
def service():
    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
    yield service
    service.close()


@pytest.fixture(scope="module")
def server(service):
    http_server = create_server(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    thread.join(timeout=5)


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestTopKEndpoint:
    def test_round_trip_matches_facade(self, server, service):
        body = {"source": 0, "k": 3, "samples": 120, "seed": 11}
        status, payload = post(server, "/v1/topk", body)
        assert status == 200
        expected = service.topk(TopKRequest.from_dict(body)).to_dict()
        assert payload == expected
        assert len(payload["ranking"]) <= 3

    def test_unknown_key_is_structured_400(self, server):
        status, payload = post(
            server, "/v1/topk", {"source": 0, "k": 3, "sample": 10}
        )
        assert status == 400
        assert payload["error"]["type"] == "InvalidQueryError"
        assert "sample" in payload["error"]["message"]

    def test_unknown_method_is_structured_400(self, server):
        status, payload = post(
            server, "/v1/topk", {"source": 0, "method": "probtree"}
        )
        assert status == 400
        assert payload["error"]["type"] == "UnknownEstimatorError"

    def test_get_is_405(self, server):
        status, payload = get(server, "/v1/topk")
        assert status == 405
        assert payload["error"]["type"] == "MethodNotAllowed"

    def test_counted_in_stats(self, server):
        post(server, "/v1/topk", {"source": 0, "k": 2, "samples": 50})
        status, payload = get(server, "/v1/stats")
        assert status == 200
        assert payload["requests"].get("topk", 0) >= 1


class TestBoundsEndpoint:
    def test_round_trip_matches_facade(self, server, service):
        body = {"source": 0, "target": 5}
        status, payload = post(server, "/v1/bounds", body)
        assert status == 200
        expected = service.bounds(BoundsRequest.from_dict(body)).to_dict()
        assert payload == expected
        assert 0.0 <= payload["lower"] <= payload["upper"] <= 1.0

    def test_unknown_key_is_structured_400(self, server):
        status, payload = post(
            server, "/v1/bounds", {"source": 0, "target": 5, "samples": 10}
        )
        assert status == 400
        assert payload["error"]["type"] == "InvalidQueryError"
        assert "samples" in payload["error"]["message"]

    def test_missing_target_is_structured_400(self, server):
        status, payload = post(server, "/v1/bounds", {"source": 0})
        assert status == 400
        assert payload["error"]["type"] == "InvalidQueryError"

    def test_out_of_range_node_is_structured_400(self, server):
        status, payload = post(
            server, "/v1/bounds", {"source": 0, "target": 10**9}
        )
        assert status == 400
        assert payload["error"]["type"] == "InvalidQueryError"

    def test_counted_in_stats(self, server):
        post(server, "/v1/bounds", {"source": 0, "target": 3})
        status, payload = get(server, "/v1/stats")
        assert status == 200
        assert payload["requests"].get("bounds", 0) >= 1
