"""Tests for ``POST /v1/update``: live mutation over real sockets.

Three layers: endpoint semantics on an in-process server, a mid-traffic
hammer asserting every response is bit-identical to the sequential
oracle *of the version that answered it* (the fingerprint in the engine
report is the provenance), and a subprocess acceptance test driving the
actual ``repro serve`` command through an update round trip including
the background re-warm worker.
"""

import http.client
import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import ReliabilityService
from repro.core.mutation import apply_update
from repro.engine.batch import BatchEngine
from repro.engine.cache import graph_fingerprint
from repro.serve import create_server

REPO_ROOT = Path(__file__).resolve().parents[2]

SEED = 3

QUERIES = [[0, 5, 200], [3, 9, 150]]
RESOLVED = [(0, 5, 200, None), (3, 9, 150, None)]


@pytest.fixture
def served():
    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=SEED)
    server = create_server(service, port=0, rewarm_top=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return json.loads(response.read())


def first_edge(graph):
    source, target, probability = next(iter(graph.iter_edges()))
    return int(source), int(target), float(probability)


def sequential_oracle(graph):
    return [
        float(estimate)
        for estimate in BatchEngine(graph, seed=SEED)
        .run_sequential(RESOLVED)
        .estimates
    ]


class TestUpdateEndpoint:
    def test_round_trip_updates_version_and_invalidates(self, served):
        service = served.service
        u, v, _ = first_edge(service.graph)
        before = graph_fingerprint(service.graph)

        _, warm = post(served, "/v1/batch", {"queries": QUERIES})
        assert warm["engine"]["fingerprint"] == before

        status, update = post(
            served, "/v1/update", {"set_edges": [[u, v, 0.5]]}
        )
        assert status == 200
        assert update["previous_fingerprint"] == before
        assert update["fingerprint"] != before
        assert update["version"] == 1
        assert update["edges_set"] == 1
        assert update["structural"] is False

        # Stats expose the new version...
        stats = get(served, "/v1/stats")
        assert stats["graph"]["fingerprint"] == update["fingerprint"]
        assert stats["graph"]["version"] == 1
        assert stats["requests"]["update"] == 1

        # ...old keys miss, and the answers are bit-identical to a
        # fresh sequential oracle over the mutated graph.
        status, after = post(served, "/v1/batch", {"queries": QUERIES})
        assert after["engine"]["fingerprint"] == update["fingerprint"]
        assert after["engine"]["cache_hits"] == 0
        assert [row["estimate"] for row in after["results"]] == (
            sequential_oracle(service.graph)
        )

    def test_structural_update_round_trip(self, served):
        u, v, _ = first_edge(served.service.graph)
        status, update = post(
            served, "/v1/update", {"remove_edges": [[u, v]]}
        )
        assert status == 200
        assert update["edges_removed"] == 1
        assert update["structural"] is True

    def test_invalid_update_is_structured_400(self, served):
        status, payload = post(
            served, "/v1/update", {"remove_edges": [[999999, 0]]}
        )
        assert status == 400
        assert payload["error"]["type"] == "InvalidQueryError"

    def test_empty_update_rejected(self, served):
        status, payload = post(served, "/v1/update", {})
        assert status == 400
        assert "at least one" in payload["error"]["message"]

    def test_unknown_key_rejected(self, served):
        status, payload = post(
            served, "/v1/update", {"set_edges": [], "flush": True}
        )
        assert status == 400
        assert "'flush'" in payload["error"]["message"]


class TestContentLengthGuards:
    def test_negative_content_length_is_structured_400(self, served):
        host, port = served.server_address[:2]
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/batch")
            connection.putheader("Content-Length", "-5")
            connection.endheaders()
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["type"] == "InvalidQueryError"
            assert "non-negative" in payload["error"]["message"]
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()
        # The server survived the malformed header.
        assert get(served, "/v1/health")["status"] == "ok"

    def test_env_knob_lowers_the_cap_to_a_413(self, served, monkeypatch):
        from repro.serve import MAX_BODY_ENV_VAR

        monkeypatch.setenv(MAX_BODY_ENV_VAR, "64")
        status, payload = post(
            served, "/v1/batch", {"queries": [[0, 5, 100]] * 40}
        )
        assert status == 413
        assert payload["error"]["type"] == "PayloadTooLargeError"
        assert "64-byte limit" in payload["error"]["message"]
        monkeypatch.delenv(MAX_BODY_ENV_VAR)
        status, _ = post(served, "/v1/batch", {"queries": [[0, 5, 100]]})
        assert status == 200

    def test_malformed_env_knob_falls_back_to_default(self, monkeypatch):
        from repro.serve import MAX_BODY_BYTES, max_body_bytes

        monkeypatch.setenv("REPRO_SERVE_MAX_BODY", "not-a-number")
        assert max_body_bytes() == MAX_BODY_BYTES
        monkeypatch.setenv("REPRO_SERVE_MAX_BODY", "-3")
        assert max_body_bytes() == MAX_BODY_BYTES


class TestMidTrafficUpdate:
    """Updates landing under concurrent batch traffic stay exact.

    Every response reports the fingerprint of the graph version that
    answered it; each must be bit-identical to the sequential oracle of
    *that* version — no response may blend worlds across versions, and
    no request may error while the pool is torn down mid-flight.
    """

    CLIENTS = 4
    ROUNDS = 6

    def test_hammer_is_bitwise_exact_per_version(self, served):
        service = served.service
        u, v, _ = first_edge(service.graph)
        predecessor = service.graph
        successor = apply_update(
            predecessor, set_edges=[(u, v, 0.5)]
        ).graph
        oracles = {
            graph_fingerprint(predecessor): sequential_oracle(predecessor),
            graph_fingerprint(successor): sequential_oracle(successor),
        }

        results = []
        errors = []
        barrier = threading.Barrier(self.CLIENTS + 1)

        def client():
            try:
                barrier.wait(timeout=30)
                for _ in range(self.ROUNDS):
                    status, payload = post(
                        served, "/v1/batch", {"queries": QUERIES}
                    )
                    assert status == 200, payload
                    results.append(
                        (
                            payload["engine"]["fingerprint"],
                            [r["estimate"] for r in payload["results"]],
                        )
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=client) for _ in range(self.CLIENTS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=30)
        time.sleep(0.02)  # let some pre-update traffic through
        status, update = post(
            served, "/v1/update", {"set_edges": [[u, v, 0.5]]}
        )
        assert status == 200
        assert update["fingerprint"] == graph_fingerprint(successor)
        for thread in threads:
            thread.join(timeout=120)
        assert not errors

        assert len(results) == self.CLIENTS * self.ROUNDS
        for fingerprint, estimates in results:
            assert fingerprint in oracles, fingerprint
            assert estimates == oracles[fingerprint]

        # The traffic after the join is firmly on the successor.
        _, final = post(served, "/v1/batch", {"queries": QUERIES})
        assert final["engine"]["fingerprint"] == graph_fingerprint(successor)


class TestServeUpdateAcceptance:
    """The acceptance path: a real `repro serve` process over sockets.

    Drives the full lifecycle: warm traffic builds the query log, an
    update lands, stale keys miss, answers match the oracle on the
    mutated graph, and the background re-warm worker (``--rewarm-top
    1``) repopulates the hottest key — observable via ``/v1/stats``.
    """

    A = {"queries": [[0, 5, 200]]}
    B = {"queries": [[3, 9, 150]]}

    @pytest.fixture
    def process(self, tmp_path):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--dataset", "lastfm",
             "--scale", "tiny", "--seed", str(SEED), "--port", "0",
             "--rewarm-top", "1"],
            stdout=subprocess.PIPE,
            text=True,
            env=environment,
            cwd=tmp_path,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://\S+", banner)
            assert match, f"no URL in serve banner: {banner!r}"
            yield match.group(0)
        finally:
            process.terminate()
            process.wait(timeout=30)

    @staticmethod
    def _post(url, path, payload):
        request = urllib.request.Request(
            url + path, data=json.dumps(payload).encode("utf-8")
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    @staticmethod
    def _get(url, path):
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return json.loads(response.read())

    def test_update_round_trip_with_background_rewarm(self, process):
        from repro.datasets.suite import load_dataset

        url = process
        graph = load_dataset("lastfm", "tiny", SEED).graph
        u, v, _ = first_edge(graph)
        mutated = apply_update(graph, set_edges=[(u, v, 0.5)]).graph

        # A is the hottest key (3 hits), B a cold one (1 hit): with
        # --rewarm-top 1 only A is replayed after the update.
        for _ in range(3):
            status, a_before = self._post(url, "/v1/batch", self.A)
            assert status == 200
        status, _ = self._post(url, "/v1/batch", self.B)
        assert status == 200

        status, update = self._post(
            url, "/v1/update", {"set_edges": [[u, v, 0.5]]}
        )
        assert status == 200
        assert update["fingerprint"] == graph_fingerprint(mutated)

        # B was not re-warmed: its first post-update request samples.
        status, b_after = self._post(url, "/v1/batch", self.B)
        assert status == 200
        assert b_after["engine"]["cache_hits"] == 0
        assert b_after["engine"]["fingerprint"] == update["fingerprint"]

        # The new-version answers are bit-identical to the fresh
        # sequential oracle on the mutated graph.
        oracle = BatchEngine(mutated, seed=SEED).run_sequential(
            [(0, 5, 200, None), (3, 9, 150, None)]
        )
        assert b_after["results"][0]["estimate"] == float(
            oracle.estimates[1]
        )

        # The background worker re-warmed the top-1 key (A): once the
        # stats counters show the pass finished, replaying A samples
        # nothing.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            stats = self._get(url, "/v1/stats")
            if stats["rewarm"]["runs"] >= 1:
                break
            time.sleep(0.1)
        assert stats["rewarm"]["runs"] >= 1
        assert stats["rewarm"]["queries"] >= 1

        status, a_after = self._post(url, "/v1/batch", self.A)
        assert status == 200
        assert a_after["engine"]["worlds_sampled"] == 0
        assert a_after["engine"]["cache_hits"] == 1
        assert a_after["results"][0]["estimate"] == float(
            oracle.estimates[0]
        )
        # And the update genuinely moved the number (probability 0.5 on
        # a touched edge vs the dataset's original value).
        assert a_after["results"][0]["estimate"] != (
            a_before["results"][0]["estimate"]
        )
