"""Tests for the HTTP serving layer.

The server is driven in-process (a real ThreadingHTTPServer on an
ephemeral port, real sockets through ``urllib``): concurrent clients
must observe bit-identical estimates, malformed requests must come back
as structured 400s, and the health/stats endpoints must round-trip.
A subprocess test drives the actual ``repro serve`` command against the
actual ``repro batch`` CLI — the serving acceptance criterion.
"""

import json
import os
import re
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import ReliabilityService
from repro.cli import main
from repro.serve import create_server

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def server():
    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
    http_server = create_server(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    service.close()
    thread.join(timeout=5)


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(server, path, payload, raw=None):
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        server.url + path,
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


BATCH_BODY = {"queries": [[0, 5, 200], [3, 9, 150], [0, 7, 100, 2]]}


class TestHealthAndStats:
    def test_health_round_trip(self, server):
        status, payload = get(server, "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["dataset"] == "lastfm"
        assert payload["nodes"] > 0

    def test_stats_round_trip_counts_requests(self, server):
        post(server, "/v1/estimate", {"source": 0, "target": 5, "samples": 50})
        status, payload = get(server, "/v1/stats")
        assert status == 200
        assert payload["requests"].get("estimate", 0) >= 1
        assert "cache" in payload
        assert payload["uptime_seconds"] >= 0

    def test_unknown_path_is_structured_404(self, server):
        status, payload = get(server, "/v1/nope")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"
        status, payload = post(server, "/v1/nope", {})
        assert status == 404


class TestEstimateEndpoint:
    def test_matches_the_facade(self, server):
        status, payload = post(
            server, "/v1/estimate",
            {"source": 0, "target": 5, "samples": 200},
        )
        assert status == 200
        assert payload["method_display"] == "MC"
        assert 0.0 <= payload["estimate"] <= 1.0
        # Replaying the request replays the estimate bit-for-bit.
        _, again = post(
            server, "/v1/estimate",
            {"source": 0, "target": 5, "samples": 200},
        )
        assert again["estimate"] == payload["estimate"]


class TestBatchEndpoint:
    def test_identical_json_to_the_cli(self, server, tmp_path, capsys):
        status, served = post(server, "/v1/batch", BATCH_BODY)
        assert status == 200
        queries = tmp_path / "queries.txt"
        queries.write_text("0 5 200\n3 9 150\n0 7 100 2\n", encoding="utf-8")
        assert main(
            ["batch", "--queries", str(queries), "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3"]
        ) == 0
        cli = json.loads(capsys.readouterr().out)
        served["engine"].pop("seconds")
        cli["engine"].pop("seconds")
        # The long-lived server may already hold the results in cache;
        # provenance and counters differ, the estimates never do.
        served["engine"].pop("worlds_sampled")
        cli["engine"].pop("worlds_sampled")
        for report in (served, cli):
            report["engine"].pop("sweeps")
            report["engine"].pop("cache_hits")
            report["engine"].pop("cache_misses")
            for row in report["results"]:
                row.pop("cached")
        assert served == cli

    def test_second_request_served_from_cache(self, server):
        body = {"queries": [[1, 6, 128], [2, 8, 128]]}
        _, first = post(server, "/v1/batch", body)
        status, second = post(server, "/v1/batch", body)
        assert status == 200
        assert second["engine"]["worlds_sampled"] == 0
        assert [r["cached"] for r in second["results"]] == [True, True]
        assert [r["estimate"] for r in first["results"]] == [
            r["estimate"] for r in second["results"]
        ]


class TestWarmEndpoint:
    def test_warm_then_batch_samples_nothing(self, server):
        body = {"queries": [[4, 11, 96], [5, 12, 96]]}
        status, warm = post(server, "/v1/warm", body)
        assert status == 200
        assert warm["newly_written"] + warm["already_warm"] == 2
        status, batch = post(server, "/v1/batch", body | {"samples": 96})
        assert status == 200
        assert batch["engine"]["worlds_sampled"] == 0


class TestMalformedRequests:
    def test_invalid_json_body(self, server):
        status, payload = post(
            server, "/v1/batch", None, raw=b"this is not json"
        )
        assert status == 400
        assert payload["error"]["type"] == "InvalidQueryError"
        assert "not valid JSON" in payload["error"]["message"]

    def test_empty_body(self, server):
        status, payload = post(server, "/v1/batch", None, raw=b"")
        assert status == 400
        assert payload["error"]["type"] == "InvalidQueryError"

    def test_missing_queries_key(self, server):
        status, payload = post(server, "/v1/batch", {"method": "mc"})
        assert status == 400
        assert "queries" in payload["error"]["message"]

    def test_unknown_request_key(self, server):
        status, payload = post(
            server, "/v1/batch", {"queries": [[0, 5]], "turbo": True}
        )
        assert status == 400
        assert "'turbo'" in payload["error"]["message"]

    def test_malformed_entry_names_its_position(self, server):
        status, payload = post(server, "/v1/batch", {"queries": [[0]]})
        assert status == 400
        assert "entry 0" in payload["error"]["message"]

    def test_unknown_estimator_is_structured(self, server):
        status, payload = post(
            server, "/v1/batch",
            {"queries": [[0, 5, 100]], "method": "quantum"},
        )
        assert status == 400
        assert payload["error"]["type"] == "UnknownEstimatorError"

    def test_out_of_range_query_names_its_position(self, server):
        status, payload = post(
            server, "/v1/batch", {"queries": [[0, 5, 100], [0, 9999, 100]]}
        )
        assert status == 400
        assert "query 1" in payload["error"]["message"]

    def test_estimate_missing_fields(self, server):
        status, payload = post(server, "/v1/estimate", {"source": 0})
        assert status == 400
        assert "'source' and 'target'" in payload["error"]["message"]


class TestConcurrentClients:
    def test_concurrent_batches_bit_identical_to_the_cli(
        self, server, tmp_path, capsys
    ):
        """N threads hitting /v1/batch == `repro batch` at equal seed."""
        queries = tmp_path / "queries.txt"
        queries.write_text("0 5 200\n3 9 150\n0 7 100 2\n", encoding="utf-8")
        assert main(
            ["batch", "--queries", str(queries), "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3"]
        ) == 0
        expected = [
            row["estimate"]
            for row in json.loads(capsys.readouterr().out)["results"]
        ]

        results = [None] * 8
        errors = []

        def client(slot):
            try:
                status, payload = post(server, "/v1/batch", BATCH_BODY)
                assert status == 200
                results[slot] = [
                    row["estimate"] for row in payload["results"]
                ]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result == expected for result in results)


class TestServeCommand:
    """The acceptance path: a real `repro serve` process over sockets."""

    @pytest.fixture
    def served(self, tmp_path):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3", "--port", "0"],
            stdout=subprocess.PIPE,
            text=True,
            env=environment,
            cwd=tmp_path,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://\S+", banner)
            assert match, f"no URL in serve banner: {banner!r}"
            yield match.group(0), environment, tmp_path
        finally:
            process.terminate()
            process.wait(timeout=30)

    def test_serve_matches_repro_batch_and_caches(self, served):
        url, environment, tmp_path = served
        queries = tmp_path / "queries.txt"
        queries.write_text("0 5 200\n3 9 150\n", encoding="utf-8")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "batch", "--queries",
             str(queries), "--dataset", "lastfm", "--scale", "tiny",
             "--seed", "3"],
            capture_output=True,
            text=True,
            env=environment,
            cwd=tmp_path,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        cli = json.loads(completed.stdout)

        body = json.dumps(
            {"queries": [[0, 5, 200], [3, 9, 150]]}
        ).encode("utf-8")
        request = urllib.request.Request(url + "/v1/batch", data=body)
        with urllib.request.urlopen(request, timeout=60) as response:
            served_report = json.loads(response.read())
        assert [r["estimate"] for r in served_report["results"]] == [
            r["estimate"] for r in cli["results"]
        ]

        request = urllib.request.Request(url + "/v1/batch", data=body)
        with urllib.request.urlopen(request, timeout=60) as response:
            again = json.loads(response.read())
        assert again["engine"]["worlds_sampled"] == 0
        assert [r["estimate"] for r in again["results"]] == [
            r["estimate"] for r in cli["results"]
        ]


class TestMethodRouting:
    def test_get_on_post_endpoint_is_405_with_allow(self, server):
        status, payload = get(server, "/v1/batch")
        assert status == 405
        assert payload["error"]["type"] == "MethodNotAllowed"
        status, payload = get(server, "/v1/estimate")
        assert status == 405

    def test_post_on_get_endpoint_is_405(self, server):
        status, payload = post(server, "/v1/health", {})
        assert status == 405
        assert payload["error"]["type"] == "MethodNotAllowed"


class TestOversizedBody:
    def test_oversized_body_gets_structured_413(self, server):
        from repro.serve import MAX_BODY_BYTES

        # The server refuses by Content-Length and closes the
        # connection; the client still receives the structured error.
        request = urllib.request.Request(
            server.url + "/v1/batch",
            data=b"x" * (MAX_BODY_BYTES + 1),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                status, payload = response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            status, payload = error.code, json.loads(error.read())
        assert status == 413
        assert payload["error"]["type"] == "PayloadTooLargeError"
        assert "exceeds" in payload["error"]["message"]
        # The server is still healthy for the next (fresh) connection.
        status, _ = get(server, "/v1/health")
        assert status == 200


class TestPersistentCacheAcrossThreads:
    def test_handler_threads_reach_the_sidecar(self, tmp_path):
        """The sidecar opened on the main thread must serve HTTP threads.

        Regression test: sqlite3's default check_same_thread=True made
        the first handler-thread request silently disable persistence.
        """
        cache_dir = str(tmp_path / "cache")
        service = ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=3, cache_dir=cache_dir
        )
        http_server = create_server(service, port=0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        try:
            body = {"queries": [[0, 5, 120], [3, 9, 120]]}
            status, payload = post(http_server, "/v1/batch", body)
            assert status == 200
            assert payload["engine"]["cache"]["persistent"] is True
            assert payload["engine"]["cache"]["disk_size"] == 2
            status, warm = post(http_server, "/v1/warm", body)
            assert status == 200
            assert warm["persistent"] is True
            assert warm["already_warm"] == 2
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.close()
            thread.join(timeout=5)
        # A fresh service over the same sidecar warm-starts from disk.
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=3, cache_dir=cache_dir
        ) as reopened:
            from repro.api import BatchRequest, QuerySpec

            response = reopened.estimate_batch(
                BatchRequest(
                    queries=(QuerySpec(0, 5, 120), QuerySpec(3, 9, 120))
                )
            )
            assert response.engine.worlds_sampled == 0


class TestQueryStringRouting:
    """GET routing matches the path, not the raw request target."""

    def test_health_with_query_string(self, server):
        status, payload = get(server, "/v1/health?verbose=1")
        assert status == 200
        assert payload["status"] == "ok"

    def test_stats_with_query_string(self, server):
        status, payload = get(server, "/v1/stats?pretty=1&x=2")
        assert status == 200
        assert "requests" in payload

    def test_post_endpoint_with_query_string(self, server):
        status, payload = post(
            server, "/v1/estimate?trace=1",
            {"source": 0, "target": 5, "samples": 50},
        )
        assert status == 200
        assert 0.0 <= payload["estimate"] <= 1.0

    def test_unknown_path_with_query_string_still_404s(self, server):
        status, payload = get(server, "/v1/nope?x=1")
        assert status == 404
        # The error names the path, not the query.
        assert payload["error"]["message"].endswith("/v1/nope")


class TestWildcardBindUrl:
    def test_url_substitutes_loopback_for_wildcard_host(self):
        service = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
        http_server = create_server(service, host="0.0.0.0", port=0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        try:
            assert http_server.url.startswith("http://127.0.0.1:")
            status, payload = get(http_server, "/v1/health")
            assert status == 200
            assert payload["status"] == "ok"
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.close()
            thread.join(timeout=5)


class TestInternalErrorPath:
    """An unexpected exception answers a clean 500 and closes cleanly."""

    def test_500_closes_the_connection_and_keeps_serving(
        self, server, monkeypatch
    ):
        import http.client

        def explode(request):
            raise RuntimeError("synthetic failure for the 500 path")

        monkeypatch.setattr(server.service, "estimate", explode)
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            body = json.dumps(
                {"source": 0, "target": 5, "samples": 10}
            ).encode("utf-8")
            connection.request(
                "POST", "/v1/estimate", body,
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 500
            assert payload["error"]["type"] == "InternalError"
            # The handler cannot resume keep-alive after an arbitrary
            # failure; it must *say so* instead of resetting the socket.
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()
        monkeypatch.undo()
        # The server survived and serves fresh connections.
        status, payload = get(server, "/v1/health")
        assert status == 200
        status, payload = post(
            server, "/v1/estimate", {"source": 0, "target": 5, "samples": 50}
        )
        assert status == 200

    def test_get_500_closes_the_connection_and_keeps_serving(
        self, server, monkeypatch
    ):
        import http.client

        def explode():
            raise RuntimeError("synthetic failure for the GET 500 path")

        monkeypatch.setattr(server.service, "stats", explode)
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request("GET", "/v1/stats")
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 500
            assert payload["error"]["type"] == "InternalError"
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()
        monkeypatch.undo()
        status, payload = get(server, "/v1/stats")
        assert status == 200
        assert "requests" in payload
