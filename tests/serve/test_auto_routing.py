"""The auto-routing hammer (ISSUE 9 acceptance).

``estimator="auto"`` must be a pure *selection* layer: whatever the
router picks, the served estimate is bit-identical to a request naming
that method directly against the same server — under concurrency, and
across a mid-traffic ``/v1/update``.

The oracle is therefore the server itself, per graph version: every
candidate method is asked directly before the hammer (predecessor
answers) and after it (successor answers).  Those maps are exact —
the serving contract makes a named request's answer a pure function of
``(service, graph version, method, query)``, however threads interleave
(index-backed methods answer from their live index, so a *fresh*
estimator is deliberately not the reference; what auto must match is
what naming the method would have returned).  Each auto response is
then checked against the map of whichever version could have served
it: strictly-before responses against the predecessor, requests that
started after the update completed against the successor, straddlers
against either.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.api import ReliabilityService
from repro.routing import DEFAULT_CANDIDATES
from repro.serve import create_server

SEED = 3

#: The auto-query shapes the hammer interleaves.
QUERIES = (
    {"source": 0, "target": 5, "samples": 150},
    {"source": 3, "target": 9, "samples": 150},
)

#: The mid-traffic mutation: re-weight an edge on a hammered pair so the
#: pre- and post-update answers visibly differ.
UPDATE_BODY = {"set_edges": [[0, 5, 0.9]]}


def http_post(url, path, body):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def direct_answers(url):
    """Every candidate method's direct answer for every query shape."""
    return {
        (method, body["source"], body["target"]): http_post(
            url, "/v1/estimate", dict(body, method=method)
        )["estimate"]
        for method in DEFAULT_CANDIDATES
        for body in QUERIES
    }


@pytest.fixture
def served():
    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=SEED)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.url
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


class TestAutoRoutingHammer:
    def test_auto_bit_identical_to_logged_method_across_update(self, served):
        url = served
        # Directly name every candidate once (the predecessor oracle —
        # this also builds every index and gives every telemetry bucket
        # its first observation), then push two candidates past the
        # trust threshold so the hammer crosses cold_start, measured,
        # and exploration decisions rather than one static fallback.
        pre_answers = direct_answers(url)
        for _ in range(6):
            for method in ("mc", "rss"):
                http_post(
                    url, "/v1/estimate", dict(QUERIES[0], method=method)
                )

        responses = []  # (body, payload, strictly_pre, strictly_post)
        failures = []
        update_started = threading.Event()
        update_done = threading.Event()
        barrier = threading.Barrier(7)

        def client(slot):
            barrier.wait(timeout=60)
            body = dict(QUERIES[slot % len(QUERIES)], method="auto")
            for _ in range(8):
                # Sampled around the request: only a request that began
                # after the update completed is guaranteed the successor
                # graph; only one that returned before the update was
                # even sent is guaranteed the predecessor.
                started_after = update_done.is_set()
                payload = http_post(url, "/v1/estimate", body)
                finished_before = not update_started.is_set()
                responses.append(
                    (body, payload, finished_before, started_after)
                )
                if payload["routing"]["method"] != payload["method"]:
                    failures.append(("annotation", payload))

        def updater():
            barrier.wait(timeout=60)
            time.sleep(0.05)  # land mid-traffic
            update_started.set()
            http_post(url, "/v1/update", UPDATE_BODY)
            update_done.set()

        workers = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(6)
        ] + [threading.Thread(target=updater)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=300)
        assert not failures
        assert any(started for *_, started in responses), (
            "no request started after the update; hammer too short"
        )

        # The successor oracle: the same direct questions, now answered
        # by the post-update service (lazily-rebuilt indexes included).
        post_answers = direct_answers(url)

        for body, payload, strictly_pre, strictly_post in responses:
            key = (payload["method"], body["source"], body["target"])
            allowed = {pre_answers[key], post_answers[key]}
            if strictly_pre:
                allowed = {pre_answers[key]}
            elif strictly_post:
                allowed = {post_answers[key]}
            assert payload["estimate"] in allowed, (key, payload)

        # The update visibly changed the mutated pair's answers (the
        # per-version check above is vacuous otherwise)...
        assert pre_answers[("mc", 0, 5)] != post_answers[("mc", 0, 5)]
        # ...and the router actually routed: measured or exploration
        # decisions drawn from warm telemetry, not one static fallback.
        reasons = {
            payload["routing"]["reason"] for _, payload, *_ in responses
        }
        assert "measured" in reasons or "exploration" in reasons
