"""The serving concurrency hammer (PR 5 acceptance).

Fine-grained locking is only worth having if it is invisible in the
numbers: N threads issuing mixed ``/v1/estimate``, ``/v1/batch``, and
``/v1/stats`` requests against one ``repro serve`` process must receive
estimates **bit-identical** to sequential execution at the same seed,
with no deadlock and no cache corruption.  Two hammers enforce it:

* a subprocess hammer against the real ``repro serve`` process (the
  acceptance criterion, verbatim);
* an in-process hammer against a persistent-cache server, which
  additionally reopens the SQLite sidecar afterwards and checks every
  row survived the stampede bit-exactly.

The sequential oracles are computed from the building blocks, not from
the server: :meth:`BatchEngine.run_sequential` for workloads (the
engine's per-query loop over the same world stream) and the historical
``stable_substream(seed, s, t)`` protocol for single estimates.
"""

import json
import os
import re
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.api import ReliabilityService
from repro.core.registry import create_estimator
from repro.datasets.suite import load_dataset
from repro.engine.batch import BatchEngine
from repro.serve import create_server
from repro.util.rng import stable_substream

REPO_ROOT = Path(__file__).resolve().parents[2]

SEED = 3

#: The two batch workloads the hammer interleaves (distinct cache keys).
BATCH_BODIES = (
    {"queries": [[0, 5, 200], [3, 9, 150], [0, 7, 100, 2]]},
    {"queries": [[1, 6, 160], [2, 8, 120]]},
)

#: The single-estimate requests the hammer interleaves.
ESTIMATE_BODIES = (
    {"source": 0, "target": 5, "samples": 150},
    {"source": 3, "target": 9, "samples": 120},
)


def sequential_batch_oracle(graph):
    """Per-body estimates from the engine's sequential per-query loop."""
    oracles = []
    for body in BATCH_BODIES:
        result = BatchEngine(graph, seed=SEED).run_sequential(
            [tuple(query) for query in body["queries"]]
        )
        oracles.append([float(estimate) for estimate in result.estimates])
    return oracles


def sequential_estimate_oracle(graph):
    """Per-body estimates via the historical single-query protocol."""
    estimator = create_estimator("mc", graph, seed=SEED)
    return [
        float(
            estimator.estimate(
                body["source"],
                body["target"],
                body["samples"],
                rng=stable_substream(SEED, body["source"], body["target"]),
            )
        )
        for body in ESTIMATE_BODIES
    ]


def http_post(url, path, body):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def http_get(url, path):
    with urllib.request.urlopen(url + path, timeout=120) as response:
        return json.loads(response.read())


def run_hammer(url, batch_expected, estimate_expected, rounds=3):
    """Drive mixed clients at ``url``; return the list of failures."""
    failures = []
    barrier = threading.Barrier(10)

    def batch_client(slot):
        barrier.wait(timeout=60)
        body = BATCH_BODIES[slot % len(BATCH_BODIES)]
        expected = batch_expected[slot % len(BATCH_BODIES)]
        for _ in range(rounds):
            payload = http_post(url, "/v1/batch", body)
            got = [row["estimate"] for row in payload["results"]]
            if got != expected:
                failures.append(("batch", slot, got, expected))

    def estimate_client(slot):
        barrier.wait(timeout=60)
        body = ESTIMATE_BODIES[slot % len(ESTIMATE_BODIES)]
        expected = estimate_expected[slot % len(ESTIMATE_BODIES)]
        for _ in range(rounds):
            payload = http_post(url, "/v1/estimate", body)
            if payload["estimate"] != expected:
                failures.append(
                    ("estimate", slot, payload["estimate"], expected)
                )

    def stats_client(slot):
        barrier.wait(timeout=60)
        for _ in range(rounds * 4):
            payload = http_get(url, "/v1/stats")
            if "requests" not in payload or "cache" not in payload:
                failures.append(("stats", slot, payload))

    workers = (
        [
            threading.Thread(target=batch_client, args=(slot,))
            for slot in range(4)
        ]
        + [
            threading.Thread(target=estimate_client, args=(slot,))
            for slot in range(4)
        ]
        + [
            threading.Thread(target=stats_client, args=(slot,))
            for slot in range(2)
        ]
    )
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=300)
    stuck = [worker for worker in workers if worker.is_alive()]
    if stuck:  # pragma: no cover - deadlock diagnostics
        failures.append(("deadlock", f"{len(stuck)} workers never finished"))
    return failures


class TestServeProcessHammer:
    """The acceptance hammer: 10 mixed clients, one real serve process."""

    @pytest.fixture(scope="class")
    def served(self):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--dataset", "lastfm",
             "--scale", "tiny", "--seed", str(SEED), "--port", "0"],
            stdout=subprocess.PIPE,
            text=True,
            env=environment,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://\S+", banner)
            assert match, f"no URL in serve banner: {banner!r}"
            yield match.group(0)
        finally:
            process.terminate()
            process.wait(timeout=30)

    def test_mixed_hammer_bit_identical_to_sequential(self, served):
        graph = load_dataset("lastfm", "tiny", SEED).graph
        failures = run_hammer(
            served,
            sequential_batch_oracle(graph),
            sequential_estimate_oracle(graph),
        )
        assert not failures

        # No cache corruption: the whole workload replays from cache.
        for body in BATCH_BODIES:
            payload = http_post(served, "/v1/batch", body)
            assert payload["engine"]["worlds_sampled"] == 0
        # Counters survived the stampede (4 batch + 4 estimate clients x
        # 3 rounds, plus the 2 replays above).
        stats = http_get(served, "/v1/stats")
        assert stats["requests"]["batch"] == 4 * 3 + len(BATCH_BODIES)
        assert stats["requests"]["estimate"] == 4 * 3


class TestInProcessPersistentHammer:
    """Same hammer over a sidecar-backed server, then audit the sidecar."""

    def test_hammer_leaves_an_exact_reusable_sidecar(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        service = ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED, cache_dir=cache_dir
        )
        http_server = create_server(service, port=0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        graph = service.graph
        try:
            failures = run_hammer(
                http_server.url,
                sequential_batch_oracle(graph),
                sequential_estimate_oracle(graph),
                rounds=2,
            )
            assert not failures
            stats = http_get(http_server.url, "/v1/stats")
            assert stats["cache"]["persistent"] is True
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.close()
            thread.join(timeout=5)

        # A fresh service over the surviving sidecar answers the whole
        # workload without sampling a single world — and bit-identically.
        from repro.api import BatchRequest, QuerySpec

        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED, cache_dir=cache_dir
        ) as reopened:
            for body, expected in zip(
                BATCH_BODIES, sequential_batch_oracle(graph)
            ):
                response = reopened.estimate_batch(
                    BatchRequest(
                        queries=tuple(
                            QuerySpec(*query) for query in body["queries"]
                        )
                    )
                )
                assert response.engine.worlds_sampled == 0
                assert [
                    row.estimate for row in response.results
                ] == expected
