"""The worker-pool serving hammer (PR 6 acceptance).

One ``repro serve --workers 2`` process owns one shared
:class:`~repro.engine.pool.WorkerPool`; N concurrent batch clients must
all be served from it — no per-request pool forking — and every response
must be **bit-identical** to the engine's sequential per-query oracle at
the same seed.  Each round uses a fresh seed so requests genuinely sweep
worlds through the pooled workers instead of replaying the result cache.
"""

import json
import os
import re
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.datasets.suite import load_dataset
from repro.engine.batch import BatchEngine

REPO_ROOT = Path(__file__).resolve().parents[2]

SEED = 3
ROUNDS = 3
CLIENTS = 4

#: Workloads big enough to fan out: at --chunk-size 64, the 300-sample
#: budget splits into 5 chunk tasks per run.
BATCH_BODIES = (
    {"queries": [[0, 5, 300], [3, 9, 300], [0, 7, 260, 2]]},
    {"queries": [[1, 6, 300], [2, 8, 280]]},
)


def round_seed(round_index):
    return SEED + 50 + round_index


def http_post(url, path, body):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def http_get(url, path):
    with urllib.request.urlopen(url + path, timeout=120) as response:
        return json.loads(response.read())


def sequential_oracles(graph):
    """``oracle[(body_index, round)]`` from the per-query sequential loop."""
    oracles = {}
    for body_index, body in enumerate(BATCH_BODIES):
        for round_index in range(ROUNDS):
            result = BatchEngine(
                graph, seed=round_seed(round_index)
            ).run_sequential([tuple(query) for query in body["queries"]])
            oracles[(body_index, round_index)] = [
                float(estimate) for estimate in result.estimates
            ]
    return oracles


class TestServePoolHammer:
    @pytest.fixture(scope="class")
    def served(self):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--dataset", "lastfm",
             "--scale", "tiny", "--seed", str(SEED), "--port", "0",
             "--workers", "2", "--chunk-size", "64"],
            stdout=subprocess.PIPE,
            text=True,
            env=environment,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://\S+", banner)
            assert match, f"no URL in serve banner: {banner!r}"
            yield match.group(0)
        finally:
            process.terminate()
            process.wait(timeout=30)

    def test_concurrent_batches_share_pool_bit_identically(self, served):
        graph = load_dataset("lastfm", "tiny", SEED).graph
        oracles = sequential_oracles(graph)
        failures = []
        barrier = threading.Barrier(CLIENTS)

        def batch_client(slot):
            barrier.wait(timeout=60)
            body_index = slot % len(BATCH_BODIES)
            for round_index in range(ROUNDS):
                body = dict(BATCH_BODIES[body_index])
                body["seed"] = round_seed(round_index)
                payload = http_post(served, "/v1/batch", body)
                got = [row["estimate"] for row in payload["results"]]
                expected = oracles[(body_index, round_index)]
                if got != expected:
                    failures.append((slot, round_index, got, expected))

        clients = [
            threading.Thread(target=batch_client, args=(slot,))
            for slot in range(CLIENTS)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=300)
        stuck = [client for client in clients if client.is_alive()]
        if stuck:  # pragma: no cover - deadlock diagnostics
            failures.append(("deadlock", f"{len(stuck)} clients never finished"))
        assert not failures

        # The shared pool — not per-request forking — served the sweeps:
        # one long-lived pool, started, sized by the serve flag, with at
        # least one pooled run per fresh-seed round.
        stats = http_get(served, "/v1/stats")
        pool = stats["pool"]
        assert pool is not None
        assert pool["workers"] == 2
        assert pool["started"] is True
        assert pool["closed"] is False
        assert pool["runs"] >= ROUNDS
        assert stats["requests"]["batch"] == CLIENTS * ROUNDS

    def test_kernels_knob_served_bit_identically(self, served):
        graph = load_dataset("lastfm", "tiny", SEED).graph
        body = dict(BATCH_BODIES[0])
        body["seed"] = SEED + 99
        body["kernels"] = "vectorized"
        payload = http_post(served, "/v1/batch", body)
        oracle = BatchEngine(graph, seed=SEED + 99).run_sequential(
            [tuple(query) for query in BATCH_BODIES[0]["queries"]]
        )
        assert [row["estimate"] for row in payload["results"]] == [
            float(estimate) for estimate in oracle.estimates
        ]

    def test_unknown_kernels_rejected(self, served):
        body = {"queries": [[0, 5, 100]], "kernels": "simd"}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_post(served, "/v1/batch", body)
        assert excinfo.value.code == 400
