"""Self-tests for the lock-discipline rules (L201-L203)."""

import textwrap


def rules(findings):
    return [finding.rule for finding in findings]


GUARDED_CLASS_HEADER = '''\
import threading


class Service:
    # lock-order: _prepare_lock -> _counts_lock -> _pool_lock

    def __init__(self):
        self._prepare_lock = threading.Lock()
        self._counts_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._estimators = {}  # guarded-by: _prepare_lock
        self._counts = 0  # guarded-by: _counts_lock
        self._pool = None  # guarded-by: _pool_lock
'''


def service_class(methods: str) -> str:
    body = textwrap.dedent(methods).strip("\n")
    return GUARDED_CLASS_HEADER + "\n" + textwrap.indent(body, "    ") + "\n"


class TestUnguardedWriteL201:
    def test_fires_on_unlocked_assignment(self, lint):
        findings = lint(
            service_class(
                """
                def reset(self):
                    self._counts = 0
                """
            )
        )
        assert rules(findings) == ["L201"]
        assert "_counts_lock" in findings[0].message

    def test_fires_on_unlocked_item_write_and_mutation(self, lint):
        findings = lint(
            service_class(
                """
                def publish(self, method, entry):
                    self._estimators[method] = entry
                    self._estimators.update({method: entry})
                """
            )
        )
        assert rules(findings) == ["L201", "L201"]

    def test_fires_on_write_under_wrong_lock(self, lint):
        findings = lint(
            service_class(
                """
                def wrong(self):
                    with self._pool_lock:
                        self._counts = 1
                """
            )
        )
        assert rules(findings) == ["L201"]

    def test_silent_on_locked_writes(self, lint):
        findings = lint(
            service_class(
                """
                def bump(self):
                    with self._counts_lock:
                        self._counts += 1

                def swap(self):
                    with self._pool_lock:
                        stale, self._pool = self._pool, None
                    return stale
                """
            )
        )
        assert findings == []

    def test_tuple_target_write_is_detected(self, lint):
        findings = lint(
            service_class(
                """
                def swap(self):
                    stale, self._pool = self._pool, None
                    return stale
                """
            )
        )
        assert rules(findings) == ["L201"]

    def test_init_and_init_only_methods_are_exempt(self, lint):
        findings = lint(
            service_class(
                """
                def _bootstrap(self):  # init-only
                    self._pool = object()
                """
            )
        )
        assert findings == []

    def test_holds_annotation_exempts_internal_method(self, lint):
        findings = lint(
            service_class(
                """
                def _bump_held(self):  # holds: _counts_lock
                    self._counts += 1
                """
            )
        )
        assert findings == []

    def test_locked_suffix_holds_the_single_lock(self, lint):
        findings = lint(
            """
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # guarded-by: _lock
                    self.hits = 0  # guarded-by: _lock

                def get(self, key):
                    with self._lock:
                        return self._get_locked(key)

                def _get_locked(self, key):
                    self.hits += 1
                    return self._entries.get(key)
            """
        )
        assert findings == []

    def test_module_global_write_requires_module_lock(self, lint):
        findings = lint(
            """
            import threading

            _CACHE_LOCK = threading.Lock()
            _CACHE = {}  # guarded-by: _CACHE_LOCK


            def load_bad(key):
                if key not in _CACHE:
                    _CACHE[key] = object()
                return _CACHE[key]


            def load_good(key):
                with _CACHE_LOCK:
                    if key not in _CACHE:
                        _CACHE[key] = object()
                    return _CACHE[key]
            """
        )
        assert rules(findings) == ["L201"]
        assert findings[0].message.count("load_bad") == 1


class TestLockOrderL202:
    def test_fires_on_inverted_nesting(self, lint):
        findings = lint(
            service_class(
                """
                def inverted(self):
                    with self._pool_lock:
                        with self._prepare_lock:
                            pass
                """
            )
        )
        assert rules(findings) == ["L202"]
        assert "_prepare_lock" in findings[0].message

    def test_silent_on_declared_nesting(self, lint):
        findings = lint(
            service_class(
                """
                def nested(self):
                    with self._prepare_lock:
                        with self._counts_lock:
                            with self._pool_lock:
                                pass
                """
            )
        )
        assert findings == []

    def test_undeclared_locks_are_ignored(self, lint):
        findings = lint(
            service_class(
                """
                def other(self, resource):
                    with resource.lock:
                        with self._counts_lock:
                            pass
                """
            )
        )
        assert findings == []


class TestAnnotationGapL203:
    def test_fires_on_unannotated_locked_write(self, lint):
        findings = lint(
            service_class(
                """
                def close(self):
                    with self._pool_lock:
                        self._closed = True
                """
            )
        )
        assert rules(findings) == ["L203"]
        assert "_closed" in findings[0].message

    def test_silent_once_annotated(self, lint):
        findings = lint(
            """
            import threading


            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._runs = 0  # guarded-by: _lock
                    self._closed = False  # guarded-by: _lock

                def close(self):
                    with self._lock:
                        self._closed = True
            """
        )
        assert findings == []

    def test_unaudited_classes_are_skipped(self, lint):
        findings = lint(
            """
            import threading


            class Legacy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def bump(self):
                    with self._lock:
                        self._value += 1
            """
        )
        assert findings == []

    def test_subclass_inherits_guarded_annotations(self, lint):
        findings = lint(
            """
            import threading


            class Base:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock


            class Derived(Base):
                def bump_bad(self):
                    self.hits += 1

                def bump_good(self):
                    with self._lock:
                        self.hits += 1
            """
        )
        assert rules(findings) == ["L201"]
        assert "bump_bad" in findings[0].message
