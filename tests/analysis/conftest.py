"""Shared fixtures for the analyzer self-tests.

Every rule is tested against *fixture files with seeded violations*:
the test writes a positive fixture (the violation) and a negative one
(the fixed shape) to disk, runs the real analyzer entry point over the
file, and asserts the rule fires exactly where seeded — and nowhere on
the fixed version.
"""

import textwrap
from pathlib import Path
from typing import List

import pytest

from repro.analysis import Finding, analyze_file


@pytest.fixture
def lint(tmp_path: Path):
    """Write ``code`` to a fixture file and return its findings."""

    def run(code: str, name: str = "fixture.py") -> List[Finding]:
        path = tmp_path / name
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        return analyze_file(path)

    return run
