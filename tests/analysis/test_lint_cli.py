"""The analyzer as a gate: tree-clean, CLI contract, suppressions.

``test_full_tree_is_clean`` is the same check CI runs (`repro lint`
exits 0): any regression against the determinism, lock-discipline, or
wire-contract rules fails the suite locally before it fails the CI
job.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_repo, find_repo_root
from repro.analysis.cli import main, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def requires_src_tree():
    if not (REPO_ROOT / "src" / "repro").is_dir():
        pytest.skip("analyzer gate needs the src/ tree (repo checkout)")


class TestTreeClean:
    def test_full_tree_is_clean(self):
        requires_src_tree()
        findings = analyze_repo(REPO_ROOT)
        rendered = "\n".join(finding.render() for finding in findings)
        assert findings == [], f"repro lint must stay clean:\n{rendered}"

    def test_find_repo_root_locates_checkout(self):
        requires_src_tree()
        assert find_repo_root(REPO_ROOT / "src" / "repro") == REPO_ROOT

    def test_module_entry_point_exits_zero(self):
        requires_src_tree()
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout


class TestCliContract:
    def test_exit_one_and_text_rendering_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "D101" in out
        assert "bad.py:1:" in out
        assert "1 finding" in out

    def test_exit_zero_and_json_on_clean_file(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("VALUE = 1\n", encoding="utf-8")
        assert main([str(good), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_json_findings_are_structured(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "D101"
        assert payload[0]["line"] == 1

    def test_paths_and_changed_are_mutually_exclusive(self, tmp_path):
        assert run_lint(paths=[tmp_path], changed=True) == 2

    def test_syntax_errors_are_findings_not_crashes(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        assert main([str(broken)]) == 1
        assert "E000" in capsys.readouterr().out

    def test_directory_scan_skips_pycache(self, tmp_path, capsys):
        package = tmp_path / "pkg"
        (package / "__pycache__").mkdir(parents=True)
        (package / "__pycache__" / "stale.py").write_text(
            "import random\n", encoding="utf-8"
        )
        (package / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
        assert main([str(package)]) == 0
        capsys.readouterr()


class TestSuppressions:
    def test_previous_line_comment_suppresses_next_line(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            textwrap.dedent(
                """
                def total(extra):
                    out = 0.0
                    # lint: ok[D103] fixture: order-insensitive sum
                    for value in {1.0, 2.0, extra}:
                        out += value
                    return out
                """
            ),
            encoding="utf-8",
        )
        assert main([str(fixture)]) == 0
        capsys.readouterr()

    def test_suppression_is_rule_specific(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            "import random  # lint: ok[D102] wrong rule id\n", encoding="utf-8"
        )
        assert main([str(fixture)]) == 1
        assert "D101" in capsys.readouterr().out

    def test_suppression_covers_multiple_rules(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            "import random  # lint: ok[D101, D103] fixture\n", encoding="utf-8"
        )
        assert main([str(fixture)]) == 0
        capsys.readouterr()
