"""Self-tests for the determinism rules (D101-D103).

Each test seeds a violation into a fixture file and asserts the rule
fires there — then checks the corrected shape stays silent, so the
rule can never rot into either a dead letter or a noise source.
"""

def rules(findings):
    return [finding.rule for finding in findings]


class TestGlobalRngD101:
    def test_fires_on_stdlib_random_import(self, lint):
        findings = lint(
            """
            import random

            def pick(values):
                return random.choice(values)
            """
        )
        assert rules(findings) == ["D101"]
        assert findings[0].line == 2

    def test_fires_on_from_random_import(self, lint):
        findings = lint(
            """
            from random import shuffle

            def mix(values):
                shuffle(values)
            """
        )
        assert rules(findings) == ["D101"]

    def test_fires_on_np_random_module_function(self, lint):
        findings = lint(
            """
            import numpy as np

            def draw(n):
                return np.random.rand(n)
            """
        )
        assert rules(findings) == ["D101"]
        assert "np.random.rand" in findings[0].message

    def test_fires_on_from_numpy_random_import(self, lint):
        findings = lint(
            """
            from numpy.random import shuffle

            def mix(values):
                shuffle(values)
            """
        )
        assert rules(findings) == ["D101"]

    def test_silent_on_generator_construction(self, lint):
        findings = lint(
            """
            import numpy as np

            def fresh(seed):
                sequence = np.random.SeedSequence(seed)
                return np.random.default_rng(sequence)
            """
        )
        assert findings == []

    def test_exempt_inside_util_rng(self, lint, tmp_path):
        (tmp_path / "util").mkdir()
        findings = lint(
            """
            import numpy as np

            def legacy(n):
                return np.random.rand(n)
            """,
            name="util/rng.py",
        )
        assert findings == []

    def test_suppression_comment_silences(self, lint):
        findings = lint(
            """
            import random  # lint: ok[D101] fixture exercising the analyzer

            def pick(values):
                return random.choice(values)
            """
        )
        assert findings == []


class TestWallClockD102:
    def test_fires_on_clock_into_cache_key(self, lint):
        findings = lint(
            """
            import time

            def lookup(cache, query):
                stamp = time.time()
                return cache.get(make_key(query, stamp))

            def make_key(query, salt):
                return (query, salt)
            """
        )
        assert rules(findings) == ["D102"]

    def test_fires_on_clock_as_seed_kwarg(self, lint):
        findings = lint(
            """
            import time

            def run(engine):
                return engine.run(seed=int(time.time()))
            """
        )
        assert rules(findings) == ["D102"]

    def test_fires_on_clock_in_estimate_return(self, lint):
        findings = lint(
            """
            import time

            def estimate_reliability(graph):
                return {"value": 0.5, "stamp": time.time()}
            """
        )
        assert rules(findings) == ["D102"]

    def test_silent_on_monotonic_telemetry(self, lint):
        findings = lint(
            """
            import time

            def estimate_reliability(graph):
                started = time.perf_counter()
                value = graph.sweep()
                return {"value": value, "seconds": time.perf_counter() - started}
            """
        )
        assert findings == []

    def test_silent_on_clock_into_plain_telemetry_call(self, lint):
        findings = lint(
            """
            import time

            def heartbeat(log):
                log.append(time.time())
            """
        )
        assert findings == []


class TestUnorderedIterationD103:
    def test_fires_on_set_literal_iteration(self, lint):
        findings = lint(
            """
            def total(extra):
                out = 0.0
                for value in {1.0, 2.0, extra}:
                    out += value
                return out
            """
        )
        assert rules(findings) == ["D103"]

    def test_fires_on_local_set_comprehension_source(self, lint):
        findings = lint(
            """
            def fold(pairs):
                seen = set(pairs)
                return [transform(item) for item in seen]

            def transform(item):
                return item
            """
        )
        assert rules(findings) == ["D103"]

    def test_sorted_wrapping_is_silent(self, lint):
        findings = lint(
            """
            def total(extra):
                out = 0.0
                for value in sorted({1.0, 2.0, extra}):
                    out += value
                return tuple(sorted({1, 2}))
            """
        )
        assert findings == []

    def test_fires_on_lock_free_guarded_dict_iteration(self, lint):
        findings = lint(
            """
            import threading


            class Telemetry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._buckets = {}  # guarded-by: _lock

                def record(self, key, value):
                    with self._lock:
                        self._buckets[key] = value

                def snapshot(self):
                    total = 0.0
                    for _key, value in self._buckets.items():
                        total += value
                    return total
            """
        )
        assert rules(findings) == ["D103"]
        assert "_buckets" in findings[0].message

    def test_guarded_iteration_under_lock_is_silent(self, lint):
        findings = lint(
            """
            import threading


            class Telemetry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._buckets = {}  # guarded-by: _lock

                def record(self, key, value):
                    with self._lock:
                        self._buckets[key] = value

                def snapshot(self):
                    with self._lock:
                        return {key: value for key, value in self._buckets.items()}
            """
        )
        assert findings == []

    def test_sorted_lock_free_iteration_is_silent(self, lint):
        findings = lint(
            """
            import threading


            class Telemetry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._buckets = {}  # guarded-by: _lock

                def record(self, key, value):
                    with self._lock:
                        self._buckets[key] = value

                def snapshot(self):
                    total = 0.0
                    for _key, value in sorted(self._buckets.items()):
                        total += value
                    return total
            """
        )
        assert findings == []

    def test_fires_on_unsorted_set_attribute_iteration(self, lint):
        findings = lint(
            """
            class Tracker:
                def __init__(self):
                    self._dropped = set()

                def drop(self, index):
                    self._dropped.add(index)

                def snapshot(self):
                    return [index for index in self._dropped]
            """
        )
        assert rules(findings) == ["D103"]
