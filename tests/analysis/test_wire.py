"""Self-tests for the wire-contract rules (W301-W303).

Each check runs against a miniature service/server/docs triple written
to disk, seeded with exactly one drift at a time.
"""

import textwrap

import pytest

from repro.analysis.wire import (
    check_docs_table,
    check_endpoint_routes,
    check_request_types,
)

TYPES_OK = """
    class EstimateRequest:
        _KEYS = ("source", "target")

        @classmethod
        def from_dict(cls, payload):
            _reject_unknown_keys(payload, cls._KEYS)
            return cls()


    class EstimateResponse:
        pass


    def _reject_unknown_keys(payload, keys):
        unknown = sorted(set(payload) - set(keys))
        if unknown:
            raise ValueError(unknown)
"""

TYPES_MISSING_FROM_DICT = """
    class WarmRequest:
        pass
"""

TYPES_LOOSE_FROM_DICT = """
    class WarmRequest:
        @classmethod
        def from_dict(cls, payload):
            return cls(**payload)
"""

SERVICE = """
    class ReliabilityService:
        ENDPOINTS = (
            "estimate",
            "shard_run",
            "study",  # wire: local-only
        )
"""

SERVER = """
    _GET_PATHS = ("/v1/health", "/v1/stats")


    class Handler:
        def _post_routes(self):
            return {
                "/v1/estimate": self._handle_estimate,
                "/v1/shard/run": self._handle_shard_run,
            }
"""

DOCS = """
    | endpoint | returns |
    |----------|---------|
    | `POST /v1/estimate` | `EstimateResponse` |
    | `POST /v1/shard/run` | `ShardRunResponse` |
    | `GET /v1/health` | liveness |
    | `GET /v1/stats` | counters |
"""


@pytest.fixture
def write(tmp_path):
    def put(name, content):
        path = tmp_path / name
        path.write_text(textwrap.dedent(content), encoding="utf-8")
        return path

    return put


class TestStrictFromDictW301:
    def test_silent_on_strict_request_types(self, write):
        assert check_request_types(write("types.py", TYPES_OK)) == []

    def test_fires_on_missing_from_dict(self, write):
        findings = check_request_types(
            write("types.py", TYPES_MISSING_FROM_DICT)
        )
        assert [finding.rule for finding in findings] == ["W301"]
        assert "no `from_dict`" in findings[0].message

    def test_fires_on_from_dict_without_rejection(self, write):
        findings = check_request_types(write("types.py", TYPES_LOOSE_FROM_DICT))
        assert [finding.rule for finding in findings] == ["W301"]
        assert "_reject_unknown_keys" in findings[0].message

    def test_response_types_are_not_required_to_decode(self, write):
        findings = check_request_types(write("types.py", TYPES_OK))
        assert findings == []


class TestEndpointRoutesW302:
    def test_silent_when_endpoints_and_routes_agree(self, write):
        service = write("service.py", SERVICE)
        server = write("server.py", SERVER)
        assert check_endpoint_routes(service, server) == []

    def test_fires_on_endpoint_without_route(self, write):
        service = write(
            "service.py",
            SERVICE.replace('"shard_run",', '"shard_run",\n        "topk",'),
        )
        server = write("server.py", SERVER)
        findings = check_endpoint_routes(service, server)
        assert [finding.rule for finding in findings] == ["W302"]
        assert "/v1/topk" in findings[0].message

    def test_local_only_marker_exempts_endpoint(self, write):
        # `study` carries the marker in SERVICE: no route, yet silent.
        service = write("service.py", SERVICE)
        server = write("server.py", SERVER)
        assert check_endpoint_routes(service, server) == []

    def test_fires_on_route_without_endpoint(self, write):
        service = write("service.py", SERVICE)
        server = write(
            "server.py",
            SERVER.replace(
                '"/v1/estimate": self._handle_estimate,',
                '"/v1/estimate": self._handle_estimate,\n'
                '                "/v1/extra": self._handle_extra,',
            ),
        )
        findings = check_endpoint_routes(service, server)
        assert [finding.rule for finding in findings] == ["W302"]
        assert "/v1/extra" in findings[0].message


class TestDocsTableW303:
    def test_silent_when_docs_match_routes(self, write):
        server = write("server.py", SERVER)
        docs = write("api.md", DOCS)
        assert check_docs_table(server, docs) == []

    def test_fires_on_undocumented_route(self, write):
        server = write("server.py", SERVER)
        docs = write(
            "api.md",
            DOCS.replace("| `POST /v1/shard/run` | `ShardRunResponse` |\n", ""),
        )
        findings = check_docs_table(server, docs)
        assert [finding.rule for finding in findings] == ["W303"]
        assert "/v1/shard/run" in findings[0].message

    def test_fires_on_documented_ghost_endpoint(self, write):
        server = write("server.py", SERVER)
        docs = write(
            "api.md",
            DOCS + "| `POST /v1/ghost` | `GhostResponse` |\n",
        )
        findings = check_docs_table(server, docs)
        assert [finding.rule for finding in findings] == ["W303"]
        assert "/v1/ghost" in findings[0].message
