"""Tests for the adaptive router's decision logic."""

import pytest

from repro.core.recommend import recommend_estimator
from repro.routing import (
    DEFAULT_CANDIDATES,
    AdaptiveRouter,
    QueryTelemetry,
)


def warm(telemetry, method, *, seconds, estimates, fingerprint="fp",
         samples=1_000, max_hops=None):
    """Feed a bucket past the trust threshold with a known profile."""
    for estimate in estimates:
        telemetry.record(
            method,
            fingerprint=fingerprint,
            samples=samples,
            max_hops=max_hops,
            seconds=seconds,
            estimate=estimate,
        )


@pytest.fixture
def telemetry():
    return QueryTelemetry()


@pytest.fixture
def router(telemetry):
    return AdaptiveRouter(telemetry)


class TestColdStart:
    def test_cold_routes_follow_static_tree(self, router):
        decision = router.route(fingerprint="fp", samples=1_000)
        static = recommend_estimator(memory_limited=False)
        expected = [
            key for key in static.estimators if key in DEFAULT_CANDIDATES
        ]
        assert decision.reason == "cold_start"
        assert decision.method == expected[0]
        assert decision.static_path == tuple(static.path)
        assert all(score is None for score in decision.scores.values())

    def test_cold_start_respects_memory_limit(self, router):
        decision = router.route(
            fingerprint="fp", samples=1_000, memory_limited=True
        )
        static = recommend_estimator(memory_limited=True)
        picks = [
            key for key in static.estimators if key in DEFAULT_CANDIDATES
        ]
        assert decision.method == picks[0]


class TestMeasuredRouting:
    def test_lowest_cost_times_dispersion_wins(self, telemetry, router):
        # mc: slow but steady; rss: fast and steady -> rss wins.
        warm(telemetry, "mc", seconds=1.0, estimates=[0.5] * 6)
        warm(telemetry, "rss", seconds=0.1, estimates=[0.5] * 6)
        decision = router.route(fingerprint="fp", samples=1_000)
        assert decision.reason == "measured"
        assert decision.method == "rss"
        assert decision.scores["rss"] < decision.scores["mc"]
        assert decision.evidence["rss"]["count"] == 6

    def test_dispersion_penalises_noisy_estimator(self, telemetry, router):
        # Same speed, but one answers with huge spread: steady one wins.
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 8)
        warm(
            telemetry,
            "rss",
            seconds=0.1,
            estimates=[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
        )
        decision = router.route(fingerprint="fp", samples=1_000)
        assert decision.method == "mc"

    def test_below_min_observations_stays_cold(self, telemetry, router):
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 4)  # < 5
        decision = router.route(fingerprint="fp", samples=1_000)
        assert decision.reason == "cold_start"

    def test_new_fingerprint_is_cold(self, telemetry, router):
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 6)
        assert router.route(fingerprint="fp", samples=1_000).reason == "measured"
        assert (
            router.route(fingerprint="fp2", samples=1_000).reason
            == "cold_start"
        )


class TestExploration:
    def test_every_tenth_decision_explores(self, telemetry, router):
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 6)
        reasons = [
            router.route(fingerprint="fp", samples=1_000).reason
            for _ in range(20)
        ]
        assert reasons.count("exploration") == 2
        assert reasons[9] == "exploration"
        assert reasons[19] == "exploration"

    def test_exploration_picks_least_observed(self, telemetry, router):
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 6)
        warm(telemetry, "rss", seconds=0.1, estimates=[0.5] * 5)
        decisions = [
            router.route(fingerprint="fp", samples=1_000) for _ in range(10)
        ]
        explored = decisions[9]
        assert explored.reason == "exploration"
        # Every candidate except mc/rss has zero observations; the stable
        # tie-break picks the first zero-count candidate in pool order.
        zero_counts = [
            key for key in router.candidates if key not in ("mc", "rss")
        ]
        assert explored.method == zero_counts[0]

    def test_epsilon_zero_never_explores(self, telemetry):
        router = AdaptiveRouter(telemetry, epsilon=0.0)
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 6)
        reasons = {
            router.route(fingerprint="fp", samples=1_000).reason
            for _ in range(30)
        }
        assert reasons == {"measured"}


class TestEligibility:
    def test_hop_bound_restricts_to_engine_methods(self, telemetry, router):
        warm(telemetry, "rss", seconds=0.01, estimates=[0.5] * 6)
        decision = router.route(fingerprint="fp", samples=1_000, max_hops=3)
        assert decision.method in ("mc", "bfs_sharing")
        assert "rss" not in decision.scores

    def test_unavailable_methods_excluded(self, telemetry, router):
        warm(telemetry, "mc", seconds=0.01, estimates=[0.5] * 6)
        warm(telemetry, "rss", seconds=1.0, estimates=[0.5] * 6)
        decision = router.route(
            fingerprint="fp", samples=1_000, unavailable=("mc",)
        )
        assert decision.method == "rss"

    def test_everything_blacklisted_falls_back_to_mc(self, router):
        decision = router.route(
            fingerprint="fp",
            samples=1_000,
            unavailable=DEFAULT_CANDIDATES,
        )
        assert decision.method == "mc"


class TestConstruction:
    def test_unknown_candidate_rejected(self, telemetry):
        with pytest.raises(ValueError, match="unknown candidate"):
            AdaptiveRouter(telemetry, candidates=("mc", "nope"))

    def test_empty_candidates_rejected(self, telemetry):
        with pytest.raises(ValueError, match="at least one"):
            AdaptiveRouter(telemetry, candidates=())

    def test_invalid_epsilon_rejected(self, telemetry):
        with pytest.raises(ValueError, match="epsilon"):
            AdaptiveRouter(telemetry, epsilon=1.5)

    def test_invalid_min_observations_rejected(self, telemetry):
        with pytest.raises(ValueError, match="min_observations"):
            AdaptiveRouter(telemetry, min_observations=0)


class TestIntrospection:
    def test_statistics_counts_reasons(self, telemetry, router):
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 6)
        for _ in range(10):
            router.route(fingerprint="fp", samples=1_000)
        router.route(fingerprint="cold-fp", samples=1_000)
        stats = router.statistics()
        assert stats["decisions"]["measured"] == 9
        assert stats["decisions"]["exploration"] == 1
        assert stats["decisions"]["cold_start"] == 1
        assert stats["buckets_routed"] == 1  # cold routes skip the counter
        assert stats["candidates"] == list(DEFAULT_CANDIDATES)

    def test_decision_serialises(self, telemetry, router):
        warm(telemetry, "mc", seconds=0.1, estimates=[0.5] * 6)
        payload = router.route(fingerprint="fp", samples=1_000).to_dict()
        assert payload["method"] == "mc"
        assert payload["reason"] == "measured"
        assert "static_path" not in payload
        cold = router.route(fingerprint="fresh", samples=1_000).to_dict()
        assert cold["static_path"]
