"""Tests for the query-telemetry accumulator layer."""

import threading

import numpy as np
import pytest

from repro.routing.telemetry import (
    QueryTelemetry,
    bucket_key,
    hops_band,
    samples_band,
)


class TestBucketing:
    def test_samples_band_is_power_of_two_wide(self):
        assert samples_band(1) == 1
        assert samples_band(1_000) == samples_band(1_023)
        assert samples_band(1_024) == samples_band(2_047)
        assert samples_band(1_023) != samples_band(1_024)

    def test_hops_band(self):
        assert hops_band(None) == -1
        assert hops_band(3) == 3

    def test_bucket_key_separates_every_dimension(self):
        base = bucket_key("fp", "mc", 1_000, None)
        assert bucket_key("fp2", "mc", 1_000, None) != base
        assert bucket_key("fp", "rss", 1_000, None) != base
        assert bucket_key("fp", "mc", 5_000, None) != base
        assert bucket_key("fp", "mc", 1_000, 3) != base


class TestAccumulation:
    def test_cold_bucket_reads_none(self):
        telemetry = QueryTelemetry()
        assert (
            telemetry.observed("mc", fingerprint="fp", samples=100, max_hops=None)
            is None
        )
        assert (
            telemetry.observation_count(
                "mc", fingerprint="fp", samples=100, max_hops=None
            )
            == 0
        )

    def test_welford_matches_numpy(self):
        telemetry = QueryTelemetry()
        rng = np.random.default_rng(0)
        latencies = rng.uniform(0.001, 0.1, size=50)
        estimates = rng.uniform(0.0, 1.0, size=50)
        for seconds, estimate in zip(latencies, estimates):
            telemetry.record(
                "mc",
                fingerprint="fp",
                samples=100,
                max_hops=None,
                seconds=float(seconds),
                estimate=float(estimate),
            )
        stats = telemetry.observed(
            "mc", fingerprint="fp", samples=100, max_hops=None
        )
        assert stats.count == 50
        per_sample = latencies / 100
        assert stats.seconds_per_sample == pytest.approx(per_sample.mean())
        assert stats.latency_variance == pytest.approx(
            per_sample.var(ddof=1)
        )
        assert stats.estimate_mean == pytest.approx(estimates.mean())
        assert stats.estimate_variance == pytest.approx(
            estimates.var(ddof=1)
        )

    def test_seconds_normalised_per_sample(self):
        telemetry = QueryTelemetry()
        telemetry.record(
            "mc",
            fingerprint="fp",
            samples=1_000,
            max_hops=None,
            seconds=2.0,
            estimate=0.5,
        )
        stats = telemetry.observed(
            "mc", fingerprint="fp", samples=1_000, max_hops=None
        )
        assert stats.seconds_per_sample == pytest.approx(0.002)

    def test_capacity_drops_new_buckets_not_old(self):
        telemetry = QueryTelemetry(capacity=2)
        for fingerprint in ("a", "b", "c"):
            telemetry.record(
                "mc",
                fingerprint=fingerprint,
                samples=100,
                max_hops=None,
                seconds=0.01,
                estimate=0.5,
            )
        assert (
            telemetry.observed("mc", fingerprint="a", samples=100, max_hops=None)
            is not None
        )
        assert (
            telemetry.observed("mc", fingerprint="c", samples=100, max_hops=None)
            is None
        )
        snapshot = telemetry.snapshot()
        assert snapshot["buckets"] == 2
        assert snapshot["dropped_observations"] == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryTelemetry(capacity=0)


class TestSnapshot:
    def test_snapshot_aggregates_per_method(self):
        telemetry = QueryTelemetry()
        for samples in (100, 100, 5_000):
            telemetry.record(
                "mc",
                fingerprint="fp",
                samples=samples,
                max_hops=None,
                seconds=0.01,
                estimate=0.5,
            )
        telemetry.record(
            "rss",
            fingerprint="fp",
            samples=100,
            max_hops=None,
            seconds=0.05,
            estimate=0.4,
        )
        snapshot = telemetry.snapshot()
        assert snapshot["observations"] == 4
        assert snapshot["methods"]["mc"]["observations"] == 3
        assert snapshot["methods"]["mc"]["buckets"] == 2
        assert snapshot["methods"]["rss"]["observations"] == 1

    def test_snapshot_filters_by_fingerprint(self):
        telemetry = QueryTelemetry()
        for fingerprint in ("old", "new"):
            telemetry.record(
                "mc",
                fingerprint=fingerprint,
                samples=100,
                max_hops=None,
                seconds=0.01,
                estimate=0.5,
            )
        snapshot = telemetry.snapshot("new")
        assert snapshot["methods"]["mc"]["observations"] == 1
        # Lifetime totals stay lifetime-wide; only the method view filters.
        assert snapshot["observations"] == 2


class TestConcurrency:
    def test_hammered_writes_lose_nothing(self):
        telemetry = QueryTelemetry()
        per_thread = 500

        def writer(method):
            for _ in range(per_thread):
                telemetry.record(
                    method,
                    fingerprint="fp",
                    samples=100,
                    max_hops=None,
                    seconds=0.01,
                    estimate=0.5,
                )

        threads = [
            threading.Thread(target=writer, args=(method,))
            for method in ("mc", "rss", "mc", "rss")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = telemetry.snapshot()
        assert snapshot["observations"] == 4 * per_thread
        assert snapshot["methods"]["mc"]["observations"] == 2 * per_thread
