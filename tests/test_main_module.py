"""Smoke test for the ``python -m repro`` entry point."""

import subprocess
import sys


class TestMainModule:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "recommend", "--memory-limited"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "ProbTree" in result.stdout

    def test_help_exits_cleanly(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "estimate" in result.stdout
        assert "topk" in result.stdout
