"""Unit tests for the shard-tier building blocks.

Partitioning is where exactness lives (chunk-aligned cuts keep every
shard's sweep bookkeeping identical to the single-process run), the
config module is the operator surface (``REPRO_SHARD_*``), and the
client helpers decide which failures are retryable — so all three are
pinned without any network in sight.
"""

import pytest

from repro.api import (
    FingerprintMismatchError,
    InvalidQueryError,
    ShardUnavailableError,
)
from repro.distributed import (
    BACKOFF_ENV_VAR,
    COOLDOWN_ENV_VAR,
    LOCAL_FALLBACK_ENV_VAR,
    RETRIES_ENV_VAR,
    TIMEOUT_ENV_VAR,
    ShardTierConfig,
    normalize_shard_url,
    parse_shard_list,
    partition_ranges,
    rejection_from_body,
)


class TestPartitionRanges:
    def test_covers_the_range_contiguously(self):
        ranges = partition_ranges(1000, 64, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1000
        for (_, stop), (next_start, _) in zip(ranges, ranges[1:]):
            assert stop == next_start

    def test_cuts_fall_on_chunk_boundaries(self):
        for total, chunk, parts in [
            (1000, 64, 3),
            (999, 7, 5),
            (512, 256, 4),
            (100, 1, 9),
        ]:
            ranges = partition_ranges(total, chunk, parts)
            for start, stop in ranges[:-1]:
                assert start % chunk == 0
                assert stop % chunk == 0
            assert ranges[-1][1] == total

    def test_never_more_parts_than_chunks(self):
        # 100 worlds at chunk 64 is two chunks: at most two ranges no
        # matter how many shards are available.
        assert len(partition_ranges(100, 64, 8)) == 2
        assert len(partition_ranges(64, 64, 8)) == 1

    def test_balanced_within_one_chunk(self):
        sizes = [stop - start for start, stop in partition_ranges(1024, 64, 3)]
        assert max(sizes) - min(sizes) <= 64

    def test_degenerate_inputs(self):
        assert partition_ranges(0, 64, 3) == []
        assert partition_ranges(-5, 64, 3) == []
        assert partition_ranges(10, 64, 0) == [(0, 10)]

    @pytest.mark.parametrize("total", [1, 63, 64, 65, 1000, 4096])
    @pytest.mark.parametrize("parts", [1, 2, 3, 7])
    def test_disjoint_cover_property(self, total, parts):
        ranges = partition_ranges(total, 64, parts)
        covered = 0
        for start, stop in ranges:
            assert start == covered
            assert stop > start
            covered = stop
        assert covered == total


class TestShardTierConfig:
    def test_defaults(self):
        config = ShardTierConfig()
        assert config.timeout == 30.0
        assert config.retries == 2
        assert config.backoff == 0.1
        assert config.cooldown == 5.0
        assert config.local_fallback is True

    def test_from_env_reads_every_knob(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV_VAR, "2.5")
        monkeypatch.setenv(RETRIES_ENV_VAR, "4")
        monkeypatch.setenv(BACKOFF_ENV_VAR, "0.01")
        monkeypatch.setenv(COOLDOWN_ENV_VAR, "1.5")
        monkeypatch.setenv(LOCAL_FALLBACK_ENV_VAR, "off")
        config = ShardTierConfig.from_env()
        assert config == ShardTierConfig(
            timeout=2.5,
            retries=4,
            backoff=0.01,
            cooldown=1.5,
            local_fallback=False,
        )

    def test_malformed_values_fall_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV_VAR, "fast")
        monkeypatch.setenv(RETRIES_ENV_VAR, "-3")
        monkeypatch.setenv(LOCAL_FALLBACK_ENV_VAR, "maybe")
        config = ShardTierConfig.from_env()
        assert config.timeout == 30.0
        assert config.retries == 2  # below the minimum -> the default
        assert config.local_fallback is True

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_boolean_spellings(self, monkeypatch, value, expected):
        monkeypatch.setenv(LOCAL_FALLBACK_ENV_VAR, value)
        assert ShardTierConfig.from_env().local_fallback is expected

    def test_to_dict_echoes_every_knob(self):
        document = ShardTierConfig().to_dict()
        assert set(document) == {
            "timeout", "retries", "backoff", "cooldown", "local_fallback"
        }


class TestShardAddresses:
    def test_bare_host_port_gains_scheme(self):
        assert normalize_shard_url("127.0.0.1:8311") == "http://127.0.0.1:8311"

    def test_explicit_scheme_and_trailing_slash(self):
        assert normalize_shard_url("http://worker-a:80/") == "http://worker-a:80"

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            normalize_shard_url("   ")

    def test_parse_shard_list(self):
        assert parse_shard_list("a:1, b:2 ,http://c:3/") == (
            "http://a:1",
            "http://b:2",
            "http://c:3",
        )

    def test_parse_empty_list_rejected(self):
        with pytest.raises(ValueError):
            parse_shard_list(" , ,")


def encoded(document):
    import json

    return json.dumps(document).encode("utf-8")


class TestRejectionMapping:
    def test_known_types_reconstruct_with_status(self):
        body = encoded(
            {
                "error": {
                    "type": "FingerprintMismatchError",
                    "message": "stale shard",
                }
            }
        )
        rejection = rejection_from_body(body)
        assert isinstance(rejection, FingerprintMismatchError)
        assert rejection.http_status == 409
        assert "stale shard" in str(rejection)

    def test_invalid_query_maps_to_400(self):
        rejection = rejection_from_body(
            encoded(
                {"error": {"type": "InvalidQueryError", "message": "bad"}}
            )
        )
        assert isinstance(rejection, InvalidQueryError)
        assert rejection.http_status == 400

    def test_shard_unavailable_maps_to_503(self):
        rejection = rejection_from_body(
            encoded(
                {"error": {"type": "ShardUnavailableError", "message": "x"}}
            )
        )
        assert isinstance(rejection, ShardUnavailableError)

    @pytest.mark.parametrize("body", [
        b"",
        b"not json at all",
        b"\xff\xfe garbage",
        encoded("oops"),
        encoded({}),
        encoded({"error": "string"}),
        encoded({"error": {"message": "typeless"}}),
        encoded({"error": {"type": "KeyboardInterrupt", "message": "n"}}),
        encoded({"error": {"type": 7, "message": "numeric type"}}),
    ])
    def test_everything_else_is_not_a_rejection(self, body):
        assert rejection_from_body(body) is None
