"""In-process tests for :class:`CoordinatedReliabilityService`.

Real HTTP workers (``create_server`` on ephemeral ports, background
threads) behind a real coordinator — everything short of separate
processes, which :mod:`tests.distributed.test_two_process_integration`
covers.  The properties pinned here are the tier's whole contract:

* a coordinated ``/v1/batch`` document equals a single-process one
  after normalising only ``engine.mode``, ``engine.workers``, and
  ``engine.seconds``;
* the coordinator owns the caches (second pass never dispatches);
* a vanished worker means re-dispatch, not wrong numbers;
* with every shard down the coordinator either falls back locally or
  fails with a structured 503, by configuration;
* a worker's structured rejection (fingerprint mismatch after an
  un-synced ``/v1/update``) surfaces to the coordinator's client with
  its original type and status — never a generic 500.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import (
    BatchRequest,
    EstimateRequest,
    QuerySpec,
    ReliabilityService,
    ShardUnavailableError,
)
from repro.datasets.suite import load_dataset
from repro.distributed import (
    CoordinatedReliabilityService,
    ShardTierConfig,
)
from repro.serve import create_server

SEED = 7

WORKLOAD = BatchRequest(
    queries=(
        QuerySpec(0, 5, 300),
        QuerySpec(3, 9, 250),
        QuerySpec(0, 5, 300),  # duplicate on purpose
        QuerySpec(1, 7, 150, 2),  # hop-bounded
    ),
    samples=300,
)

FAST = ShardTierConfig(
    timeout=10.0, retries=1, backoff=0.0, cooldown=300.0, local_fallback=True
)


def start_worker():
    """A real shard worker: plain service + HTTP server on a free port."""
    service = ReliabilityService.from_dataset("lastfm", "tiny", seed=SEED)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return service, server, thread


def stop_worker(worker):
    service, server, thread = worker
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def make_coordinator(shard_urls, config=FAST):
    loaded = load_dataset("lastfm", "tiny", SEED)
    return CoordinatedReliabilityService(
        loaded.graph,
        seed=SEED,
        dataset=loaded,
        shards=shard_urls,
        shard_config=config,
    )


def normalized(document):
    """A batch document minus the three honestly-divergent fields."""
    document = json.loads(json.dumps(document))  # deep copy
    for field in ("mode", "workers", "seconds"):
        document["engine"].pop(field, None)
    return document


@pytest.fixture()
def tier():
    workers = [start_worker(), start_worker()]
    coordinator = make_coordinator([w[1].url for w in workers])
    try:
        yield coordinator, workers
    finally:
        coordinator.close()
        for worker in workers:
            try:
                stop_worker(worker)
            except Exception:
                pass


class TestWireCompatibility:
    def test_batch_document_matches_single_process(self, tier):
        coordinator, _ = tier
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED
        ) as plain:
            reference = plain.estimate_batch(WORKLOAD).to_dict()
        distributed = coordinator.estimate_batch(WORKLOAD).to_dict()
        assert normalized(distributed) == normalized(reference)
        assert distributed["engine"]["mode"] == "distributed"
        assert distributed["engine"]["workers"] == 2

    def test_deterministic_counters_match_exactly(self, tier):
        coordinator, _ = tier
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED
        ) as plain:
            reference = plain.estimate_batch(WORKLOAD).engine
        report = coordinator.estimate_batch(WORKLOAD).engine
        assert report.worlds_sampled == reference.worlds_sampled
        assert report.sweeps == reference.sweeps
        assert report.cache_hits == reference.cache_hits
        assert report.cache_misses == reference.cache_misses
        assert report.fingerprint == reference.fingerprint

    def test_second_pass_is_served_from_coordinator_cache(self, tier):
        coordinator, _ = tier
        coordinator.estimate_batch(WORKLOAD)
        replay = coordinator.estimate_batch(WORKLOAD)
        assert replay.engine.worlds_sampled == 0
        assert replay.engine.cache_hits == 3
        # No new dispatches happened for the replay.
        assert coordinator.coordinator.statistics()["batches"] == 1

    def test_sequential_oracle_runs_locally(self, tier):
        coordinator, _ = tier
        request = BatchRequest(queries=WORKLOAD.queries, sequential=True)
        response = coordinator.estimate_batch(request)
        assert response.engine.mode == "sequential"
        assert coordinator.coordinator.statistics()["batches"] == 0

    def test_single_estimates_run_locally(self, tier):
        coordinator, _ = tier
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED
        ) as plain:
            expected = plain.estimate(
                EstimateRequest(source=0, target=5, samples=150)
            ).estimate
        response = coordinator.estimate(
            EstimateRequest(source=0, target=5, samples=150)
        )
        assert response.estimate == expected
        assert coordinator.coordinator.statistics()["batches"] == 0

    def test_stats_carries_the_shard_section(self, tier):
        coordinator, workers = tier
        coordinator.estimate_batch(WORKLOAD)
        shards = coordinator.stats()["shards"]
        assert shards["total"] == 2
        assert shards["healthy"] == 2
        assert shards["batches"] == 1
        assert shards["ranges_dispatched"] == 2
        assert {m["url"] for m in shards["members"]} == {
            w[1].url for w in workers
        }
        assert shards["config"]["retries"] == FAST.retries


class TestFailover:
    def test_killed_worker_means_redispatch_not_wrong_numbers(self, tier):
        coordinator, workers = tier
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED
        ) as plain:
            reference = plain.estimate_batch(WORKLOAD).to_dict()
        stop_worker(workers.pop(0))
        distributed = coordinator.estimate_batch(WORKLOAD).to_dict()
        assert normalized(distributed) == normalized(reference)
        shards = coordinator.stats()["shards"]
        assert shards["healthy"] == 1
        assert shards["redispatches"] >= 1
        downed = [m for m in shards["members"] if not m["healthy"]]
        assert len(downed) == 1
        assert downed[0]["failures"] >= 1
        assert downed[0]["last_error"]

    def test_all_workers_down_falls_back_locally(self, tier):
        coordinator, workers = tier
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED
        ) as plain:
            reference = plain.estimate_batch(WORKLOAD).to_dict()
        while workers:
            stop_worker(workers.pop())
        distributed = coordinator.estimate_batch(WORKLOAD).to_dict()
        assert normalized(distributed) == normalized(reference)
        shards = coordinator.stats()["shards"]
        assert shards["healthy"] == 0
        assert shards["local_fallbacks"] >= 1
        # Every range was served by the coordinator itself.
        assert distributed["engine"]["workers"] == 1

    def test_fallback_disabled_fails_with_structured_503(self):
        workers = [start_worker()]
        coordinator = make_coordinator(
            [workers[0][1].url],
            config=ShardTierConfig(
                timeout=5.0,
                retries=0,
                backoff=0.0,
                cooldown=300.0,
                local_fallback=False,
            ),
        )
        try:
            stop_worker(workers.pop())
            with pytest.raises(ShardUnavailableError) as excinfo:
                coordinator.estimate_batch(WORKLOAD)
            assert excinfo.value.http_status == 503
            assert "local fallback is disabled" in str(excinfo.value)
        finally:
            coordinator.close()

    def test_recovered_worker_is_revived_after_cooldown(self):
        workers = [start_worker(), start_worker()]
        coordinator = make_coordinator(
            [w[1].url for w in workers],
            # Zero cooldown: a downed shard is immediately eligible for
            # the optimistic re-probe.
            config=ShardTierConfig(
                timeout=5.0,
                retries=0,
                backoff=0.0,
                cooldown=0.0,
                local_fallback=True,
            ),
        )
        try:
            victim_service, victim_server, victim_thread = workers[0]
            port = victim_server.server_address[1]
            stop_worker(workers[0])
            coordinator.estimate_batch(WORKLOAD)
            assert coordinator.stats()["shards"]["healthy"] == 1
            # Resurrect a worker on the same port; the next dispatch is
            # the health probe and marks the member back up.
            service = ReliabilityService.from_dataset(
                "lastfm", "tiny", seed=SEED
            )
            server = create_server(service, port=port)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            workers[0] = (service, server, thread)
            coordinator.estimate_batch(
                BatchRequest(queries=(QuerySpec(2, 8, 500),))
            )
            assert coordinator.stats()["shards"]["healthy"] == 2
        finally:
            coordinator.close()
            for worker in workers:
                try:
                    stop_worker(worker)
                except Exception:
                    pass


class TestStructuredRejectionSurfacing:
    """The bugfix satellite: worker verdicts keep their status code."""

    def post(self, url, path, payload):
        request = urllib.request.Request(
            url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_fingerprint_mismatch_is_409_not_500(self, tier):
        coordinator, _ = tier
        server = create_server(coordinator, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # Mutate the coordinator's graph only: the workers now serve
            # a stale fingerprint and reject every dispatch.
            status, body = self.post(
                server.url, "/v1/update", {"set_edges": [[0, 1, 0.5]]}
            )
            assert status == 200
            status, body = self.post(
                server.url,
                "/v1/batch",
                {"queries": [[0, 5, 320]], "samples": 320},
            )
            assert status == 409
            assert body["error"]["type"] == "FingerprintMismatchError"
            # Actionable message: names both graph versions.
            assert "re-sync" in body["error"]["message"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_coordinator_is_itself_a_valid_shard_worker(self, tier):
        coordinator, _ = tier
        server = create_server(coordinator, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            from repro.engine.cache import graph_fingerprint

            status, body = self.post(
                server.url,
                "/v1/shard/run",
                {
                    "queries": [[0, 5, 100]],
                    "start": 0,
                    "stop": 100,
                    "seed": SEED,
                    "fingerprint": graph_fingerprint(coordinator.graph),
                },
            )
            assert status == 200
            assert body["worlds_evaluated"] == 100
            assert len(body["hits"]) == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
