"""The distributed tier's acceptance test: real processes, real kills.

Two shard workers and one coordinator, each a separate ``repro serve``
process on localhost.  The coordinator's ``/v1/batch`` must be
byte-compatible with a single-process server answering the identical
request (a shard worker *is* one — it serves the reference document),
normalising only ``engine.mode``, ``engine.workers``, and
``engine.seconds``.

The hard part is the SIGKILL scenario: workers are started with
``REPRO_SHARD_RUN_DELAY`` (a fault-injection sleep inside
``/v1/shard/run``) so a batch is reliably in flight when one worker is
killed with ``SIGKILL`` — no shutdown hooks, the socket just dies.  The
coordinator must re-dispatch the dead worker's range and return a
document bit-identical to the healthy run, with the casualty visible in
``/v1/stats``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.suite import load_dataset
from repro.engine.batch import BatchEngine

REPO_ROOT = Path(__file__).resolve().parents[2]

SEED = 3

BATCH_BODY = {
    "queries": [[0, 5, 400], [3, 9, 250], [0, 5, 400], [1, 7, 150, 2]],
    "samples": 400,
}


def spawn_serve(extra_args=(), extra_env=None):
    """Start a ``repro serve`` subprocess; return ``(process, url)``."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else ""
    )
    environment.update(extra_env or {})
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "lastfm", "--scale", "tiny",
            "--seed", str(SEED), "--port", "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=environment,
    )
    banner = process.stdout.readline()
    match = re.search(r"http://\S+", banner)
    assert match, f"no URL in serve banner: {banner!r}"
    return process, match.group(0)


def terminate(process):
    if process.poll() is None:
        process.terminate()
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - diagnostics
        process.kill()
        process.wait(timeout=10)


def http_post(url, path, body, timeout=120):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def http_get(url, path, timeout=120):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read())


def normalized(document):
    document = json.loads(json.dumps(document))
    for field in ("mode", "workers", "seconds"):
        document["engine"].pop(field, None)
    return document


def coordinator_env():
    """Tight robustness knobs so failover is fast under test."""
    return {
        "REPRO_SHARD_TIMEOUT": "15",
        "REPRO_SHARD_RETRIES": "0",
        "REPRO_SHARD_BACKOFF": "0",
        "REPRO_SHARD_COOLDOWN": "300",
    }


def sequential_oracle():
    """The engine's per-query loop — the paper-faithful reference."""
    graph = load_dataset("lastfm", "tiny", SEED).graph
    result = BatchEngine(graph, seed=SEED).run_sequential(
        [tuple(query) for query in BATCH_BODY["queries"]]
    )
    return [float(estimate) for estimate in result.estimates]


class TestTwoProcessTier:
    def test_coordinated_batch_is_byte_compatible(self):
        processes = []
        try:
            worker_a, url_a = spawn_serve()
            processes.append(worker_a)
            worker_b, url_b = spawn_serve()
            processes.append(worker_b)
            shards = ",".join(
                url.replace("http://", "") for url in (url_a, url_b)
            )
            coordinator, url_c = spawn_serve(
                ("--coordinator", "--shards", shards),
                extra_env=coordinator_env(),
            )
            processes.append(coordinator)

            # Worker A is a plain single-process serve: its document is
            # the wire-compatibility reference.
            reference = http_post(url_a, "/v1/batch", BATCH_BODY)
            distributed = http_post(url_c, "/v1/batch", BATCH_BODY)
            assert normalized(distributed) == normalized(reference)
            assert distributed["engine"]["mode"] == "distributed"
            assert distributed["engine"]["workers"] == 2

            # And both agree with the sequential per-query oracle.
            estimates = [row["estimate"] for row in distributed["results"]]
            assert estimates == sequential_oracle()

            stats = http_get(url_c, "/v1/stats")
            assert stats["shards"]["total"] == 2
            assert stats["shards"]["healthy"] == 2
            assert stats["shards"]["batches"] == 1
        finally:
            for process in processes:
                terminate(process)

    def test_sigkilled_worker_mid_batch_is_bit_identical(self):
        processes = []
        try:
            # The fault-injection sleep holds every /v1/shard/run open
            # for half a second — a wide-open window to kill into.
            delay = {"REPRO_SHARD_RUN_DELAY": "0.5"}
            worker_a, url_a = spawn_serve(extra_env=delay)
            processes.append(worker_a)
            worker_b, url_b = spawn_serve(extra_env=delay)
            processes.append(worker_b)
            shards = ",".join(
                url.replace("http://", "") for url in (url_a, url_b)
            )
            coordinator, url_c = spawn_serve(
                ("--coordinator", "--shards", shards),
                extra_env=coordinator_env(),
            )
            processes.append(coordinator)

            # The delay only slows /v1/shard/run; worker B's /v1/batch
            # answers at full speed and is the reference document.
            reference = http_post(url_b, "/v1/batch", BATCH_BODY)

            outcome = {}

            def client():
                outcome["document"] = http_post(
                    url_c, "/v1/batch", BATCH_BODY
                )

            thread = threading.Thread(target=client)
            thread.start()
            # Both workers are now inside their injected sleep; SIGKILL
            # worker A mid-request — its socket dies with no goodbye.
            threading.Event().wait(0.25)
            os.kill(worker_a.pid, signal.SIGKILL)
            worker_a.wait(timeout=10)
            thread.join(timeout=120)
            assert "document" in outcome, "coordinated batch never returned"

            distributed = outcome["document"]
            assert normalized(distributed) == normalized(reference)
            estimates = [row["estimate"] for row in distributed["results"]]
            assert estimates == sequential_oracle()

            stats = http_get(url_c, "/v1/stats")
            assert stats["shards"]["healthy"] == 1
            assert stats["shards"]["redispatches"] >= 1
            casualties = [
                member
                for member in stats["shards"]["members"]
                if not member["healthy"]
            ]
            assert len(casualties) == 1
            assert casualties[0]["failures"] >= 1
        finally:
            for process in processes:
                terminate(process)

    def test_counts_merge_exactly_across_processes(self):
        # Belt and braces for the merge arithmetic over real HTTP: the
        # two shard sub-ranges must sum to the full-range hit counts.
        processes = []
        try:
            worker, url = spawn_serve()
            processes.append(worker)
            fingerprint = http_get(url, "/v1/stats")["graph"]["fingerprint"]
            body = {
                "queries": BATCH_BODY["queries"],
                "seed": SEED,
                "fingerprint": fingerprint,
            }
            low = http_post(
                url, "/v1/shard/run", {**body, "start": 0, "stop": 256}
            )
            high = http_post(
                url, "/v1/shard/run", {**body, "start": 256, "stop": 400}
            )
            full = http_post(
                url, "/v1/shard/run", {**body, "start": 0, "stop": 400}
            )
            merged = np.asarray(low["hits"]) + np.asarray(high["hits"])
            np.testing.assert_array_equal(merged, np.asarray(full["hits"]))
            assert low["sweeps"] + high["sweeps"] == full["sweeps"]
        finally:
            for process in processes:
                terminate(process)

    def test_stale_shard_rejection_reaches_the_client_as_409(self):
        processes = []
        try:
            worker, url_w = spawn_serve()
            processes.append(worker)
            coordinator, url_c = spawn_serve(
                ("--coordinator", "--shards", url_w.replace("http://", "")),
                extra_env={
                    **coordinator_env(),
                    "REPRO_SHARD_LOCAL_FALLBACK": "off",
                },
            )
            processes.append(coordinator)
            # Update the coordinator's graph only; the worker is stale.
            http_post(url_c, "/v1/update", {"set_edges": [[0, 1, 0.5]]})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_post(url_c, "/v1/batch", BATCH_BODY)
            assert excinfo.value.code == 409
            body = json.loads(excinfo.value.read())
            assert body["error"]["type"] == "FingerprintMismatchError"
        finally:
            for process in processes:
                terminate(process)
