"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestEstimate:
    def test_basic_query(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "--target", "5",
                "--samples", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "R(0, 5)" in out
        assert "MC" in out

    def test_method_selection(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "--target", "5",
                "--method", "rhh",
                "--samples", "200",
            ]
        )
        assert code == 0
        assert "RHH" in capsys.readouterr().out

    def test_deterministic_under_seed(self, capsys):
        args = [
            "estimate", "--dataset", "lastfm", "--scale", "tiny",
            "--source", "0", "--target", "5", "--samples", "200",
            "--seed", "3",
        ]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second


class TestDatasets:
    def test_table(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "LastFM" in out
        assert "BioMine" in out


class TestTopK:
    def test_ranking(self, capsys):
        code = main(
            [
                "topk",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "-k", "3",
                "--samples", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-3" in out
        assert "rank" in out


class TestBounds:
    def test_bracket(self, capsys):
        code = main(
            [
                "bounds",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "--target", "5",
            ]
        )
        assert code == 0
        assert "<=" in capsys.readouterr().out


class TestRecommend:
    def test_memory_limited(self, capsys):
        assert main(["recommend", "--memory-limited"]) == 0
        out = capsys.readouterr().out
        assert "ProbTree" in out

    def test_large_memory_low_variance(self, capsys):
        assert main(["recommend", "--lowest-variance"]) == 0
        out = capsys.readouterr().out
        assert "RSS" in out


class TestStudy:
    def test_mini_study(self, capsys):
        code = main(
            [
                "study",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--pairs", "2",
                "--repeats", "2",
                "--kmax", "500",
                "--estimators", "mc", "rhh",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Accuracy" in out
        assert "Running time" in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport"])


class TestBatch:
    def _write_queries(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_text_workload(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n0 7\n# comment\n3 9 100\n")
        code = main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--samples", "150"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["query_count"] == 3
        assert report["engine"]["mode"] == "shared_worlds"
        assert report["engine"]["worlds_sampled"] == 200  # max K once
        assert report["results"][1]["samples"] == 150  # default K applied
        for row in report["results"]:
            assert 0.0 <= row["estimate"] <= 1.0

    def test_json_workload(self, capsys, tmp_path):
        path = self._write_queries(
            tmp_path,
            '[[0, 5, 200], {"source": 0, "target": 7}, [3, 9]]',
        )
        code = main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["query_count"] == 3
        assert report["results"][1]["samples"] == 1000  # CLI default K

    def test_sequential_agrees_exactly(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 300\n3 9 150\n")
        args = ["batch", "--queries", path, "--dataset", "lastfm",
                "--scale", "tiny", "--seed", "3"]
        main(args)
        shared = json.loads(capsys.readouterr().out)
        main(args + ["--sequential"])
        sequential = json.loads(capsys.readouterr().out)
        assert shared["engine"]["mode"] == "shared_worlds"
        assert sequential["engine"]["mode"] == "sequential"
        assert [r["estimate"] for r in shared["results"]] == [
            r["estimate"] for r in sequential["results"]
        ]

    def test_fallback_method_loops_per_query(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100\n")
        code = main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--method", "rhh"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engine"]["mode"] == "per_query_loop"

    def test_output_file(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100\n")
        out = tmp_path / "report.json"
        code = main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--output", str(out)]
        )
        assert code == 0
        assert "wrote 1 results" in capsys.readouterr().out
        assert json.loads(out.read_text())["query_count"] == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100 7 9\n")
        with pytest.raises(ValueError):
            main(
                ["batch", "--queries", path, "--dataset", "lastfm",
                 "--scale", "tiny"]
            )

    def test_workers_runs_and_agrees_with_serial(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n3 9 150\n")
        args = ["batch", "--queries", path, "--dataset", "lastfm",
                "--scale", "tiny", "--seed", "3", "--chunk-size", "64"]
        main(args + ["--workers", "1"])
        serial = json.loads(capsys.readouterr().out)
        main(args + ["--workers", "2"])
        parallel = json.loads(capsys.readouterr().out)
        assert serial["engine"]["workers"] == 1
        assert parallel["engine"]["workers"] == 2
        assert [r["estimate"] for r in serial["results"]] == [
            r["estimate"] for r in parallel["results"]
        ]

    def test_max_hops_bounds_all_queries(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n3 9 150\n")
        code = main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--max-hops", "3"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert [r["max_hops"] for r in report["results"]] == [3, 3]

    def test_per_query_hop_bound_beats_global_default(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200 1\n3 9 150\n")
        code = main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--max-hops", "4"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert [r["max_hops"] for r in report["results"]] == [1, 4]

    def test_json_object_carries_max_hops(self, capsys, tmp_path):
        path = self._write_queries(
            tmp_path,
            '[{"source": 0, "target": 5, "samples": 100, "max_hops": 2}]',
        )
        code = main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results"][0]["max_hops"] == 2


class TestBatchFastPaths:
    """CLI dispatch of the estimator batch fast paths (PR 3)."""

    def _write_queries(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def _run(self, path, *extra):
        return main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3", *extra]
        )

    def test_bfs_sharing_served_by_the_engine(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n3 9 150\n")
        assert self._run(path) == 0
        mc = json.loads(capsys.readouterr().out)
        assert self._run(path, "--method", "bfs_sharing") == 0
        bfs = json.loads(capsys.readouterr().out)
        assert bfs["engine"]["mode"] == "shared_worlds"
        assert bfs["engine"]["worlds_sampled"] == 200
        # Same seed, same engine world stream: bit-identical to mc.
        assert [r["estimate"] for r in bfs["results"]] == [
            r["estimate"] for r in mc["results"]
        ]

    def test_bfs_sharing_serves_hop_bounded_queries(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200 2\n")
        assert self._run(path, "--method", "bfs_sharing") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results"][0]["max_hops"] == 2

    def test_bfs_sharing_accepts_chunk_size(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n")
        assert self._run(path, "--method", "bfs_sharing") == 0
        default = json.loads(capsys.readouterr().out)
        assert self._run(
            path, "--method", "bfs_sharing", "--chunk-size", "64"
        ) == 0
        chunked = json.loads(capsys.readouterr().out)
        assert [r["estimate"] for r in default["results"]] == [
            r["estimate"] for r in chunked["results"]
        ]

    def test_prob_tree_bag_grouped_mode(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n0 7 200\n3 9 150\n")
        assert self._run(path, "--method", "prob_tree") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engine"]["mode"] == "bag_grouped"
        for row in report["results"]:
            assert 0.0 <= row["estimate"] <= 1.0

    def test_cache_dir_warm_starts_within_a_process(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n3 9 150\n")
        cache_dir = str(tmp_path / "cache")
        assert self._run(path, "--cache-dir", cache_dir) == 0
        cold = json.loads(capsys.readouterr().out)
        assert self._run(path, "--cache-dir", cache_dir) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["engine"]["worlds_sampled"] == 200
        assert warm["engine"]["worlds_sampled"] == 0
        assert warm["engine"]["cache"]["disk_hits"] == 2
        assert [r["estimate"] for r in warm["results"]] == [
            r["estimate"] for r in cold["results"]
        ]

    def test_bfs_sharing_reports_cache_statistics(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n3 9 150\n")
        cache_dir = str(tmp_path / "cache")
        assert self._run(
            path, "--method", "bfs_sharing", "--cache-dir", cache_dir
        ) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["engine"]["cache"]["persistent"] is True
        assert self._run(
            path, "--method", "bfs_sharing", "--cache-dir", cache_dir
        ) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["engine"]["worlds_sampled"] == 0
        assert warm["engine"]["cache"]["disk_hits"] == 2

    def test_sequential_oracle_refuses_cache_dir(self, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100\n")
        with pytest.raises(SystemExit, match="--sequential oracle bypasses"):
            self._run(path, "--sequential", "--cache-dir", str(tmp_path))

    def test_prob_tree_accepts_cache_dir(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n")
        cache_dir = str(tmp_path / "cache")
        assert self._run(
            path, "--method", "prob_tree", "--cache-dir", cache_dir
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert self._run(
            path, "--method", "prob_tree", "--cache-dir", cache_dir
        ) == 0
        second = json.loads(capsys.readouterr().out)
        # Inner engine results are cached under the lifted graph's own
        # fingerprint, so the re-run replays identical estimates.
        assert [r["estimate"] for r in first["results"]] == [
            r["estimate"] for r in second["results"]
        ]


class TestStudyBatch:
    def test_batched_study_runs(self, capsys):
        code = main(
            [
                "study", "--dataset", "lastfm", "--scale", "tiny",
                "--pairs", "2", "--repeats", "2", "--kmax", "500",
                "--estimators", "mc", "--batch",
            ]
        )
        assert code == 0
        assert "Accuracy" in capsys.readouterr().out

    def test_workers_ride_the_batch_path(self, capsys):
        code = main(
            [
                "study", "--dataset", "lastfm", "--scale", "tiny",
                "--pairs", "2", "--repeats", "2", "--kmax", "250",
                "--estimators", "mc", "--batch", "--workers", "2",
            ]
        )
        assert code == 0
        assert "Accuracy" in capsys.readouterr().out

    def test_workers_without_batch_rejected(self):
        with pytest.raises(SystemExit, match="--batch"):
            main(
                [
                    "study", "--dataset", "lastfm", "--scale", "tiny",
                    "--pairs", "2", "--repeats", "2", "--kmax", "250",
                    "--estimators", "mc", "--workers", "2",
                ]
            )

    def test_cache_dir_without_batch_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--batch"):
            main(
                [
                    "study", "--dataset", "lastfm", "--scale", "tiny",
                    "--pairs", "2", "--repeats", "2", "--kmax", "250",
                    "--estimators", "mc", "--cache-dir", str(tmp_path),
                ]
            )

    def test_cached_study_replays_identically(self, capsys, tmp_path):
        arguments = [
            "study", "--dataset", "lastfm", "--scale", "tiny",
            "--pairs", "2", "--repeats", "2", "--kmax", "250",
            "--estimators", "mc", "--batch",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert main(arguments) == 0
        second = capsys.readouterr().out
        # Estimates replay bit-for-bit from the sidecar; wall-clock rows
        # differ (the warm run is faster), so compare the accuracy table.
        assert first.split("Running time")[0] == (
            second.split("Running time")[0]
        )


class TestBatchValidation:
    def _write(self, tmp_path, text):
        path = tmp_path / "queries.json"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_short_json_entry_rejected_with_context(self, tmp_path):
        path = self._write(tmp_path, "[[5]]")
        with pytest.raises(ValueError, match="entry 0"):
            main(["batch", "--queries", path, "--dataset", "lastfm",
                  "--scale", "tiny"])

    def test_long_json_entry_rejected(self, tmp_path):
        path = self._write(tmp_path, "[[0, 5, 100, 2, 999]]")
        with pytest.raises(ValueError, match="entry 0"):
            main(["batch", "--queries", path, "--dataset", "lastfm",
                  "--scale", "tiny"])

    def test_object_missing_target_rejected(self, tmp_path):
        path = self._write(tmp_path, '[{"source": 0}]')
        with pytest.raises(ValueError, match="'source' and 'target'"):
            main(["batch", "--queries", path, "--dataset", "lastfm",
                  "--scale", "tiny"])

    def test_sequential_requires_mc(self, tmp_path):
        path = self._write(tmp_path, "[[0, 5, 100]]")
        with pytest.raises(SystemExit, match="--method mc"):
            main(["batch", "--queries", path, "--dataset", "lastfm",
                  "--scale", "tiny", "--method", "rhh", "--sequential"])

    def test_chunk_size_requires_mc(self, tmp_path):
        path = self._write(tmp_path, "[[0, 5, 100]]")
        with pytest.raises(SystemExit, match="--method mc"):
            main(["batch", "--queries", path, "--dataset", "lastfm",
                  "--scale", "tiny", "--method", "rhh", "--chunk-size", "8"])


class TestBatchFailurePaths:
    """Malformed workload files fail *early*, with entry-level context."""

    def _write(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def _run(self, path, *extra):
        return main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", *extra]
        )

    def test_out_of_range_source_names_the_query(self, tmp_path):
        path = self._write(tmp_path, "0 5 100\n999 5 100\n")
        with pytest.raises(SystemExit, match="query 1.*source 999 out of range"):
            self._run(path)

    def test_out_of_range_target_names_the_query(self, tmp_path):
        path = self._write(tmp_path, "0 12345 100\n")
        with pytest.raises(SystemExit, match="query 0.*target 12345 out of range"):
            self._run(path)

    def test_negative_samples_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 5 -100\n")
        with pytest.raises(SystemExit, match="samples must be a positive integer"):
            self._run(path)

    def test_zero_samples_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 5 0\n")
        with pytest.raises(SystemExit, match="samples must be a positive integer"):
            self._run(path)

    def test_nonpositive_hop_bound_in_file_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 5 100 0\n")
        with pytest.raises(SystemExit, match="max_hops must be a positive integer"):
            self._run(path)

    def test_nonpositive_max_hops_flag_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 5 100\n")
        with pytest.raises(SystemExit, match="--max-hops must be a positive"):
            self._run(path, "--max-hops", "0")

    def test_nonpositive_workers_flag_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 5 100\n")
        with pytest.raises(SystemExit, match="--workers must be a positive"):
            self._run(path, "--workers", "0")

    def test_validation_precedes_sampling_for_fallback_methods(self, tmp_path):
        # The per-query loop would only hit the bad entry after answering
        # the good ones; early validation fails before any sampling.
        path = self._write(tmp_path, "0 5 100\n0 99999 100\n")
        with pytest.raises(SystemExit, match="query 1"):
            self._run(path, "--method", "rhh")

    def test_workers_requires_a_fast_path(self, tmp_path):
        path = self._write(tmp_path, "0 5 100\n")
        with pytest.raises(SystemExit, match="--workers rides on a batch fast path"):
            self._run(path, "--method", "rhh", "--workers", "2")

    def test_cache_dir_requires_a_fast_path(self, tmp_path):
        path = self._write(tmp_path, "0 5 100\n")
        with pytest.raises(SystemExit, match="--cache-dir rides on a batch fast path"):
            self._run(path, "--method", "rhh", "--cache-dir", str(tmp_path))

    def test_hop_bounded_queries_require_the_engine(self, tmp_path):
        path = self._write(tmp_path, "0 5 100 2\n")
        with pytest.raises(SystemExit, match="shared-world engine"):
            self._run(path, "--method", "rhh")

    def test_hop_bounded_queries_reject_prob_tree(self, tmp_path):
        # ProbTree's lifted graph does not preserve hop counts; the CLI
        # rejects the combination before any index is built.
        path = self._write(tmp_path, "0 5 100 2\n")
        with pytest.raises(SystemExit, match="shared-world engine"):
            self._run(path, "--method", "prob_tree")

    def test_sequential_oracle_refuses_workers(self, tmp_path):
        path = self._write(tmp_path, "0 5 100\n")
        with pytest.raises(SystemExit, match="--sequential"):
            self._run(path, "--sequential", "--workers", "2")


class TestBatchJsonForms:
    def _write(self, tmp_path, text):
        path = tmp_path / "queries.json"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_unwrapped_single_object_accepted(self, capsys, tmp_path):
        path = self._write(tmp_path, '{"source": 0, "target": 5}')
        code = main(["batch", "--queries", path, "--dataset", "lastfm",
                     "--scale", "tiny", "--samples", "120"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["query_count"] == 1
        assert report["results"][0]["samples"] == 120

    def test_scalar_entry_rejected_with_context(self, tmp_path):
        path = self._write(tmp_path, "[5, 7]")
        with pytest.raises(ValueError, match="entry 0"):
            main(["batch", "--queries", path, "--dataset", "lastfm",
                  "--scale", "tiny"])

    def test_null_hop_bound_in_list_entry_means_unbounded(
        self, capsys, tmp_path
    ):
        path = self._write(tmp_path, "[[0, 5, 100, null]]")
        code = main(["batch", "--queries", path, "--dataset", "lastfm",
                     "--scale", "tiny"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results"][0]["max_hops"] is None

    def test_null_in_required_position_rejected_with_context(self, tmp_path):
        path = self._write(tmp_path, "[[null, 5, 100]]")
        with pytest.raises(ValueError, match="entry 0.*non-numeric"):
            main(["batch", "--queries", path, "--dataset", "lastfm",
                  "--scale", "tiny"])


class TestWarm:
    """`repro warm`: speculative evaluation into the persistent sidecar."""

    def _write_queries(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def _warm(self, path, cache_dir, *extra):
        return main(
            ["warm", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3", "--cache-dir", cache_dir,
             *extra]
        )

    def test_first_pass_writes_second_is_already_warm(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n3 9 150\n0 5 200\n")
        cache_dir = str(tmp_path / "cache")
        assert self._warm(path, cache_dir) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["query_count"] == 3
        assert cold["unique_queries"] == 2  # the duplicate collapses
        assert cold["newly_written"] == 2
        assert cold["already_warm"] == 0
        assert cold["persistent"] is True
        assert self._warm(path, cache_dir) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["newly_written"] == 0
        assert warm["already_warm"] == 2
        assert warm["worlds_sampled"] == 0

    def test_warmed_sidecar_serves_repro_batch(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 200\n3 9 150\n")
        cache_dir = str(tmp_path / "cache")
        assert self._warm(path, cache_dir) == 0
        capsys.readouterr()
        assert main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3", "--cache-dir", cache_dir]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engine"]["worlds_sampled"] == 0
        assert [row["cached"] for row in report["results"]] == [True, True]

    def test_warm_is_method_agnostic(self, capsys, tmp_path):
        # The cache key carries no estimator: a warm pass serves
        # bfs_sharing batches just as well as mc ones.
        path = self._write_queries(tmp_path, "0 5 200\n")
        cache_dir = str(tmp_path / "cache")
        assert self._warm(path, cache_dir) == 0
        capsys.readouterr()
        assert main(
            ["batch", "--queries", path, "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3", "--cache-dir", cache_dir,
             "--method", "bfs_sharing"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engine"]["worlds_sampled"] == 0

    def test_warm_accepts_hop_bounded_queries(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100 2\n0 5 100\n")
        cache_dir = str(tmp_path / "cache")
        assert self._warm(path, cache_dir) == 0
        report = json.loads(capsys.readouterr().out)
        # A d-hop query and its unbounded twin are distinct cache keys.
        assert report["unique_queries"] == 2

    def test_warm_requires_cache_dir(self, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100\n")
        with pytest.raises(SystemExit):
            main(
                ["warm", "--queries", path, "--dataset", "lastfm",
                 "--scale", "tiny"]
            )

    def test_warm_validates_queries_with_context(self, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100\n0 99999 100\n")
        with pytest.raises(SystemExit, match="query 1"):
            self._warm(path, str(tmp_path / "cache"))

    def test_warm_output_file(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, "0 5 100\n")
        out = tmp_path / "warm.json"
        assert self._warm(
            path, str(tmp_path / "cache"), "--output", str(out)
        ) == 0
        assert "warmed 1 of 1" in capsys.readouterr().out
        assert json.loads(out.read_text())["newly_written"] == 1
