"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestEstimate:
    def test_basic_query(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "--target", "5",
                "--samples", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "R(0, 5)" in out
        assert "MC" in out

    def test_method_selection(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "--target", "5",
                "--method", "rhh",
                "--samples", "200",
            ]
        )
        assert code == 0
        assert "RHH" in capsys.readouterr().out

    def test_deterministic_under_seed(self, capsys):
        args = [
            "estimate", "--dataset", "lastfm", "--scale", "tiny",
            "--source", "0", "--target", "5", "--samples", "200",
            "--seed", "3",
        ]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second


class TestDatasets:
    def test_table(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "LastFM" in out
        assert "BioMine" in out


class TestTopK:
    def test_ranking(self, capsys):
        code = main(
            [
                "topk",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "-k", "3",
                "--samples", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-3" in out
        assert "rank" in out


class TestBounds:
    def test_bracket(self, capsys):
        code = main(
            [
                "bounds",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--source", "0",
                "--target", "5",
            ]
        )
        assert code == 0
        assert "<=" in capsys.readouterr().out


class TestRecommend:
    def test_memory_limited(self, capsys):
        assert main(["recommend", "--memory-limited"]) == 0
        out = capsys.readouterr().out
        assert "ProbTree" in out

    def test_large_memory_low_variance(self, capsys):
        assert main(["recommend", "--lowest-variance"]) == 0
        out = capsys.readouterr().out
        assert "RSS" in out


class TestStudy:
    def test_mini_study(self, capsys):
        code = main(
            [
                "study",
                "--dataset", "lastfm",
                "--scale", "tiny",
                "--pairs", "2",
                "--repeats", "2",
                "--kmax", "500",
                "--estimators", "mc", "rhh",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Accuracy" in out
        assert "Running time" in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
