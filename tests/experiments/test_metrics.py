"""Tests for relative error and pairwise-deviation metrics (Eqs. 14-15)."""

import numpy as np
import pytest

from repro.experiments.metrics import (
    deviation_of,
    relative_error,
    relative_error_table,
)


class TestRelativeError:
    def test_perfect_match_is_zero(self):
        reference = np.array([0.2, 0.5])
        assert relative_error(reference, reference) == 0.0

    def test_known_value(self):
        estimates = np.array([0.22, 0.45])
        reference = np.array([0.2, 0.5])
        expected = (0.02 / 0.2 + 0.05 / 0.5) / 2
        assert relative_error(estimates, reference) == pytest.approx(expected)

    def test_zero_reference_pairs_skipped(self):
        estimates = np.array([0.3, 0.123])
        reference = np.array([0.3, 0.0])
        assert relative_error(estimates, reference) == 0.0

    def test_all_zero_reference_and_estimates(self):
        assert relative_error(np.zeros(3), np.zeros(3)) == 0.0

    def test_all_zero_reference_nonzero_estimates(self):
        assert relative_error(np.array([0.1]), np.zeros(1)) == float("inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros(2), np.zeros(3))


class TestRelativeErrorTable:
    def test_per_estimator_errors(self):
        reference = np.array([0.4, 0.4])
        table = relative_error_table(
            {
                "mc": np.array([0.4, 0.4]),
                "rss": np.array([0.44, 0.36]),
            },
            reference,
        )
        assert table["mc"] == 0.0
        assert table["rss"] == pytest.approx(0.1)

    def test_deviation_of_table(self):
        table = {"a": 0.01, "b": 0.03}
        assert deviation_of(table) == pytest.approx(0.02)
