"""Tests for the plain-text table/series renderers."""

from repro.experiments.report import (
    format_dict_rows,
    format_series,
    format_table,
    stars,
)


class TestFormatTable:
    def test_contains_title_and_cells(self):
        text = format_table("My Table", ["a", "b"], [["1", "22"], ["333", "4"]])
        assert "My Table" in text
        assert "333" in text

    def test_columns_aligned(self):
        text = format_table("T", ["col", "x"], [["verylongcell", "1"]])
        lines = text.splitlines()
        header, row = lines[2], lines[4]
        # Second column starts at the same offset in header and body.
        assert header.index("x") == row.index("1")

    def test_empty_rows(self):
        text = format_table("Empty", ["a"], [])
        assert "Empty" in text


class TestFormatDictRows:
    def test_selects_columns(self):
        rows = [{"a": "1", "b": "2", "ignored": "zzz"}]
        text = format_dict_rows("T", rows, ["a", "b"])
        assert "zzz" not in text
        assert "1" in text

    def test_missing_keys_blank(self):
        text = format_dict_rows("T", [{"a": "1"}], ["a", "b"])
        assert "1" in text

    def test_custom_headers(self):
        text = format_dict_rows("T", [{"a": "1"}], ["a"], headers=["Alpha"])
        assert "Alpha" in text


class TestFormatSeries:
    def test_rows_per_x_value(self):
        text = format_series(
            "Fig", "K", [250, 500], {"MC": [0.1, 0.2], "RSS": [0.3, 0.4]}
        )
        lines = text.splitlines()
        assert any(line.startswith("250") for line in lines)
        assert any(line.startswith("500") for line in lines)

    def test_missing_values_dashed(self):
        text = format_series("Fig", "K", [1, 2], {"MC": [0.5]})
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_series("Fig", "K", [1], {"MC": [0.123456789]}, "{:.2f}")
        assert "0.12" in text


class TestStars:
    def test_full_and_empty(self):
        assert stars(4) == "****"
        assert stars(0) == "...."
        assert stars(2) == "**.."

    def test_clamped(self):
        assert stars(9) == "****"
        assert stars(-3) == "...."
