"""Tests for the convergence framework (paper §3.1.4)."""

import numpy as np
import pytest

from repro.core.estimators.base import Estimator
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.core.graph import UncertainGraph
from repro.datasets.queries import QueryWorkload
from repro.experiments.convergence import (
    ConvergenceCriterion,
    evaluate_at_k,
    run_convergence,
)


class StubEstimator(Estimator):
    """Deterministic noise model: estimate = R + noise/sqrt(K).

    Lets convergence tests control exactly when the dispersion criterion
    fires without any graph sampling.
    """

    key = "stub"
    display_name = "Stub"

    def __init__(self, graph, *, reliability=0.4, noise=1.0, seed=None):
        super().__init__(graph, seed=seed)
        self.reliability = reliability
        self.noise = noise

    def _estimate(self, source, target, samples, rng):
        wobble = self.noise * rng.standard_normal() / np.sqrt(samples)
        return float(np.clip(self.reliability + wobble, 0.0, 1.0))


@pytest.fixture
def workload():
    return QueryWorkload(pairs=((0, 1), (0, 2)), hop_distance=1, seed=0)


@pytest.fixture
def graph():
    return UncertainGraph(3, [(0, 1, 0.5), (0, 2, 0.5)])


class TestCriterion:
    def test_grid(self):
        criterion = ConvergenceCriterion(k_start=250, k_step=250, k_max=1000)
        assert criterion.grid() == [250, 500, 750, 1000]

    def test_default_threshold_is_paper_value(self):
        assert ConvergenceCriterion().dispersion_threshold == 1e-3


class TestEvaluateAtK:
    def test_point_fields(self, graph, workload):
        estimator = StubEstimator(graph)
        point = evaluate_at_k(estimator, workload, samples=100, repeats=6, seed=0)
        assert point.samples == 100
        assert 0.0 <= point.average_reliability <= 1.0
        assert point.average_variance >= 0.0
        assert point.per_pair_means.shape == (2,)
        assert point.seconds_per_query > 0
        assert point.memory_bytes > 0

    def test_single_repeat_has_zero_variance(self, graph, workload):
        estimator = StubEstimator(graph)
        point = evaluate_at_k(estimator, workload, samples=100, repeats=1, seed=0)
        assert point.average_variance == 0.0

    def test_reproducible(self, graph, workload):
        a = evaluate_at_k(StubEstimator(graph), workload, 100, repeats=4, seed=3)
        b = evaluate_at_k(StubEstimator(graph), workload, 100, repeats=4, seed=3)
        np.testing.assert_array_equal(a.per_pair_means, b.per_pair_means)

    def test_milliseconds_per_sample(self, graph, workload):
        point = evaluate_at_k(StubEstimator(graph), workload, 200, repeats=2, seed=0)
        expected = 1000.0 * point.seconds_per_query / 200
        assert point.milliseconds_per_sample == pytest.approx(expected)


class TestRunConvergence:
    def test_low_noise_converges_immediately(self, graph, workload):
        estimator = StubEstimator(graph, noise=0.01)
        result = run_convergence(
            estimator,
            workload,
            criterion=ConvergenceCriterion(k_start=250, k_step=250, k_max=750),
            repeats=5,
            seed=0,
        )
        assert result.converged_at == 250

    def test_high_noise_never_converges(self, graph, workload):
        estimator = StubEstimator(graph, noise=50.0)
        result = run_convergence(
            estimator,
            workload,
            criterion=ConvergenceCriterion(k_start=250, k_step=250, k_max=750),
            repeats=5,
            seed=0,
        )
        assert result.converged_at is None
        # Non-converged results still expose the last grid point.
        assert result.convergence_point.samples == 750

    def test_full_grid_measured_by_default(self, graph, workload):
        estimator = StubEstimator(graph, noise=0.01)
        criterion = ConvergenceCriterion(k_start=250, k_step=250, k_max=1000)
        result = run_convergence(
            estimator, workload, criterion=criterion, repeats=3, seed=0
        )
        assert [p.samples for p in result.points] == [250, 500, 750, 1000]

    def test_stop_at_convergence_truncates(self, graph, workload):
        estimator = StubEstimator(graph, noise=0.01)
        criterion = ConvergenceCriterion(k_start=250, k_step=250, k_max=1000)
        result = run_convergence(
            estimator,
            workload,
            criterion=criterion,
            repeats=3,
            seed=0,
            stop_at_convergence=True,
        )
        assert len(result.points) == 1

    def test_point_at(self, graph, workload):
        estimator = StubEstimator(graph, noise=0.01)
        result = run_convergence(
            estimator,
            workload,
            criterion=ConvergenceCriterion(k_start=100, k_step=100, k_max=300),
            repeats=3,
            seed=0,
        )
        assert result.point_at(200).samples == 200
        assert result.point_at(9999) is None

    def test_variance_shrinks_with_k_for_real_estimator(self, graph, workload):
        # Sanity against a real estimator: V_K decreases in K.
        estimator = MonteCarloEstimator(graph)
        result = run_convergence(
            estimator,
            workload,
            criterion=ConvergenceCriterion(
                dispersion_threshold=0.0, k_start=50, k_step=450, k_max=500
            ),
            repeats=20,
            seed=0,
        )
        assert result.points[-1].average_variance < result.points[0].average_variance


class TestCacheDirWiring:
    def test_cache_dir_requires_the_batch_path(self, graph, workload):
        mc = MonteCarloEstimator(graph, seed=0)
        with pytest.raises(ValueError, match="use_batch"):
            evaluate_at_k(
                mc, workload, samples=100, repeats=2, seed=0,
                cache_dir="/tmp/nope",
            )

    def test_cached_grid_point_replays_identically(
        self, graph, workload, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        mc = MonteCarloEstimator(graph, seed=0)
        cold = evaluate_at_k(
            mc, workload, samples=150, repeats=2, seed=1,
            use_batch=True, cache_dir=cache_dir,
        )
        warm_mc = MonteCarloEstimator(graph, seed=0)
        warm = evaluate_at_k(
            warm_mc, workload, samples=150, repeats=2, seed=1,
            use_batch=True, cache_dir=cache_dir,
        )
        np.testing.assert_array_equal(
            cold.per_pair_means, warm.per_pair_means
        )
        # The warm grid point was served from the sidecar: its last
        # repeat's batch sampled nothing, while the cold run sampled.
        assert mc.last_batch_result.worlds_sampled > 0
        assert warm_mc.last_batch_result.worlds_sampled == 0
