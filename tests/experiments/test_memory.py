"""Tests for memory accounting helpers."""

import numpy as np
import pytest

from repro.experiments.memory import format_bytes, traced_peak_bytes


class TestTracedPeak:
    def test_returns_result(self):
        result, peak = traced_peak_bytes(lambda: 42)
        assert result == 42
        assert peak >= 0

    def test_allocation_measured(self):
        def allocate():
            return np.zeros(1_000_000, dtype=np.float64)

        _, peak = traced_peak_bytes(allocate)
        assert peak >= 8_000_000

    def test_nested_tracing(self):
        def outer():
            _, inner_peak = traced_peak_bytes(lambda: np.zeros(100_000))
            return inner_peak

        inner_peak, _ = traced_peak_bytes(outer)
        assert inner_peak >= 800_000

    def test_exception_stops_tracing(self):
        import tracemalloc

        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            traced_peak_bytes(boom)
        assert not tracemalloc.is_tracing()


class TestFormatBytes:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, "0.0 B"),
            (512, "512.0 B"),
            (2048, "2.0 KiB"),
            (3 * 1024**2, "3.0 MiB"),
            (5 * 1024**3, "5.0 GiB"),
            (3000 * 1024**3, "3000.0 GiB"),
        ],
    )
    def test_units(self, size, expected):
        assert format_bytes(size) == expected
