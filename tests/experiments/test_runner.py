"""Integration tests for the study runner (small but end-to-end)."""

import pytest

from repro.experiments.convergence import ConvergenceCriterion
from repro.experiments.runner import StudyConfig, run_study


@pytest.fixture(scope="module")
def study_result():
    config = StudyConfig(
        dataset="lastfm",
        scale="tiny",
        pair_count=4,
        repeats=4,
        criterion=ConvergenceCriterion(k_start=100, k_step=400, k_max=500),
        estimators=("mc", "rhh"),
        seed=0,
    )
    return run_study(config)


class TestStudyConfig:
    def test_bfs_sharing_options_injected(self):
        config = StudyConfig(dataset="lastfm")
        options = config.options_for("bfs_sharing")
        assert options["capacity"] == config.criterion.k_max
        assert options["refresh_per_query"] is True

    def test_user_options_win(self):
        config = StudyConfig(
            dataset="lastfm",
            estimator_options={"bfs_sharing": {"capacity": 99}},
        )
        assert config.options_for("bfs_sharing")["capacity"] == 99

    def test_plain_estimator_has_no_injected_options(self):
        assert StudyConfig(dataset="lastfm").options_for("mc") == {}


class TestStudyResult:
    def test_results_per_estimator(self, study_result):
        assert set(study_result.results) == {"mc", "rhh"}

    def test_accuracy_rows_shape(self, study_result):
        rows = study_result.accuracy_rows()
        assert len(rows) == 3  # two estimators + pairwise deviation
        assert rows[0]["estimator"] == "MC"
        assert rows[-1]["estimator"] == "Pairwise Deviation"

    def test_mc_reference_has_zero_error_at_convergence(self, study_result):
        rows = study_result.accuracy_rows()
        assert float(rows[0]["RE_conv_%"]) == 0.0

    def test_runtime_rows_shape(self, study_result):
        rows = study_result.runtime_rows()
        assert len(rows) == 2
        assert float(rows[0]["time_conv_s"]) > 0

    def test_memory_rows_shape(self, study_result):
        rows = study_result.memory_rows()
        assert len(rows) == 2
        assert int(rows[0]["memory_bytes"]) > 0

    def test_dispersion_series_covers_grid(self, study_result):
        series = study_result.dispersion_series()
        assert [point["K"] for point in series["mc"]] == [100, 500]

    def test_prepare_seconds_recorded(self, study_result):
        assert set(study_result.prepare_seconds) == {"mc", "rhh"}

    def test_workload_shared_between_estimators(self, study_result):
        assert len(study_result.workload) == 4

    def test_reference_is_probability_vector(self, study_result):
        reference = study_result.reference_per_pair
        assert reference.shape == (4,)
        assert ((reference >= 0) & (reference <= 1)).all()
