"""Study-runner integration with the index-based estimators.

Verifies the options the runner injects for BFS Sharing (capacity covering
the K grid, per-query refresh for inter-query independence) and that
ProbTree's offline phase is timed separately, end-to-end on a tiny study.
"""

import pytest

from repro.experiments.convergence import ConvergenceCriterion
from repro.experiments.runner import StudyConfig, build_estimator, run_study


@pytest.fixture(scope="module")
def indexed_study():
    config = StudyConfig(
        dataset="lastfm",
        scale="tiny",
        pair_count=3,
        repeats=3,
        criterion=ConvergenceCriterion(k_start=100, k_step=200, k_max=300),
        estimators=("mc", "bfs_sharing", "prob_tree"),
        seed=1,
    )
    return run_study(config)


class TestIndexedStudy:
    def test_all_estimators_measured(self, indexed_study):
        assert set(indexed_study.results) == {"mc", "bfs_sharing", "prob_tree"}

    def test_prepare_time_positive_for_indexed(self, indexed_study):
        # Index construction must be attributed to the offline phase.
        assert indexed_study.prepare_seconds["bfs_sharing"] > 0
        assert indexed_study.prepare_seconds["prob_tree"] > 0

    def test_bfs_sharing_capacity_covers_grid(self, indexed_study):
        estimator = build_estimator(
            indexed_study.config, "bfs_sharing", indexed_study.dataset.graph
        )
        assert estimator.capacity == 300
        assert estimator.refresh_per_query is True

    def test_bfs_sharing_variance_nonzero_with_refresh(self, indexed_study):
        # Without per-query refresh the repeats would be identical and the
        # variance exactly zero at every K; refresh must prevent that for
        # at least one measured grid point with nontrivial reliability.
        points = indexed_study.results["bfs_sharing"].points
        reliabilities = [p.average_reliability for p in points]
        variances = [p.average_variance for p in points]
        if max(reliabilities) > 0.02:
            assert max(variances) > 0.0

    def test_estimates_agree_across_methods(self, indexed_study):
        final = {
            key: result.points[-1].average_reliability
            for key, result in indexed_study.results.items()
        }
        spread = max(final.values()) - min(final.values())
        assert spread < 0.12, final

    def test_accuracy_rows_include_indexed(self, indexed_study):
        names = [row["estimator"] for row in indexed_study.accuracy_rows()]
        assert "BFSSharing" in names
        assert "ProbTree" in names
