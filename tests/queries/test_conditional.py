"""Tests for conditional reliability queries."""

import pytest

from repro.core.graph import UncertainGraph
from repro.queries.conditional import (
    build_condition,
    conditional_reliability,
    failure_impact,
)


class TestBuildCondition:
    def test_present_and_absent(self, diamond_graph):
        forced = build_condition(
            diamond_graph, present_edges=[(0, 1)], absent_edges=[(2, 3)]
        )
        # CSR order: (0,1), (0,2), (1,3), (2,3)
        assert forced[0] == 1
        assert forced[3] == -1
        assert forced[1] == 0 and forced[2] == 0

    def test_failed_node_kills_incident_edges(self, diamond_graph):
        forced = build_condition(diamond_graph, failed_nodes=[1])
        assert forced[0] == -1  # (0,1) in-edge
        assert forced[2] == -1  # (1,3) out-edge
        assert forced[1] == 0

    def test_conflict_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="both present and absent"):
            build_condition(
                diamond_graph, present_edges=[(0, 1)], absent_edges=[(0, 1)]
            )

    def test_missing_edge_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="not present"):
            build_condition(diamond_graph, present_edges=[(3, 0)])


class TestConditionalReliability:
    def test_no_condition_equals_plain_reliability(self, diamond_graph):
        value = conditional_reliability(
            diamond_graph, 0, 3, samples=40_000, rng=0
        )
        assert value == pytest.approx(0.4375, abs=0.01)

    def test_conditioning_on_path_gives_one(self, diamond_graph):
        value = conditional_reliability(
            diamond_graph, 0, 3,
            present_edges=[(0, 1), (1, 3)], samples=300, rng=0,
        )
        assert value == 1.0

    def test_conditioning_out_upper_path(self, diamond_graph):
        # Remaining path: 0 -> 2 -> 3 with probability 0.25.
        value = conditional_reliability(
            diamond_graph, 0, 3, absent_edges=[(0, 1)],
            samples=40_000, rng=1,
        )
        assert value == pytest.approx(0.25, abs=0.01)

    def test_failed_intermediate_node(self, diamond_graph):
        value = conditional_reliability(
            diamond_graph, 0, 3, failed_nodes=[1], samples=40_000, rng=2
        )
        assert value == pytest.approx(0.25, abs=0.01)

    def test_failed_all_intermediates_gives_zero(self, diamond_graph):
        value = conditional_reliability(
            diamond_graph, 0, 3, failed_nodes=[1, 2], samples=500, rng=3
        )
        assert value == 0.0

    def test_source_equals_target(self, diamond_graph):
        assert conditional_reliability(diamond_graph, 2, 2, samples=10) == 1.0

    def test_matches_exact_conditional(self):
        # Chain with a bypass; condition on the bypass edge being down.
        graph = UncertainGraph(
            3, [(0, 1, 0.6), (1, 2, 0.7), (0, 2, 0.3)]
        )
        value = conditional_reliability(
            graph, 0, 2, absent_edges=[(0, 2)], samples=40_000, rng=4
        )
        assert value == pytest.approx(0.6 * 0.7, abs=0.01)


class TestFailureImpact:
    def test_critical_node_ranked_first(self):
        # 0 -> 1 -> 3 strong path; 0 -> 2 -> 3 weak path: node 1 failure
        # hurts much more than node 2 failure.
        graph = UncertainGraph(
            4, [(0, 1, 0.9), (1, 3, 0.9), (0, 2, 0.2), (2, 3, 0.2)]
        )
        ranking = failure_impact(graph, 0, 3, [1, 2], samples=8_000, rng=0)
        assert ranking[0][0] == 1
        assert ranking[0][2] > ranking[1][2]

    def test_endpoints_excluded(self, diamond_graph):
        ranking = failure_impact(
            diamond_graph, 0, 3, [0, 1, 3], samples=500, rng=0
        )
        assert [node for node, _, _ in ranking] == [1]

    def test_drop_is_nonnegative_in_expectation(self, diamond_graph):
        ranking = failure_impact(
            diamond_graph, 0, 3, [1, 2], samples=8_000, rng=1
        )
        for _, _, drop in ranking:
            assert drop > -0.02  # sampling noise only
