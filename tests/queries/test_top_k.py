"""Tests for top-k reliability search (BFS Sharing's original query)."""

import numpy as np
import pytest

from repro.core.exact import reliability_exact
from repro.core.graph import UncertainGraph
from repro.queries.top_k import all_reliabilities, top_k_reliable_targets
from tests.conftest import random_graph


@pytest.fixture(params=["bfs_sharing", "mc"])
def method(request):
    return request.param


class TestAllReliabilities:
    def test_source_reliability_is_one(self, diamond_graph, method):
        values = all_reliabilities(diamond_graph, 0, samples=400, method=method, rng=0)
        assert values[0] == 1.0

    def test_matches_exact_per_node(self, method):
        graph = random_graph(1, node_count=6, edge_probability=0.4)
        values = all_reliabilities(graph, 0, samples=20_000, method=method, rng=0)
        for node in range(1, 6):
            exact = reliability_exact(graph, 0, node)
            assert values[node] == pytest.approx(exact, abs=0.02), node

    def test_methods_agree(self, diamond_graph):
        via_index = all_reliabilities(
            diamond_graph, 0, samples=30_000, method="bfs_sharing", rng=0
        )
        via_mc = all_reliabilities(
            diamond_graph, 0, samples=30_000, method="mc", rng=1
        )
        np.testing.assert_allclose(via_index, via_mc, atol=0.02)

    def test_unknown_method_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            all_reliabilities(diamond_graph, 0, method="oracle")


class TestTopK:
    def test_ranking_order(self, method):
        # 0 -> 1 strong, 0 -> 2 weak, 0 -> 3 via 1 (medium).
        graph = UncertainGraph(
            4, [(0, 1, 0.95), (0, 2, 0.1), (1, 3, 0.6)]
        )
        ranking = top_k_reliable_targets(
            graph, 0, k=3, samples=4_000, method=method, rng=0
        )
        assert [node for node, _ in ranking] == [1, 3, 2]

    def test_k_truncates(self, diamond_graph, method):
        ranking = top_k_reliable_targets(
            diamond_graph, 0, k=2, samples=400, method=method, rng=0
        )
        assert len(ranking) == 2

    def test_source_excluded_by_default(self, diamond_graph, method):
        ranking = top_k_reliable_targets(
            diamond_graph, 0, k=4, samples=400, method=method, rng=0
        )
        assert all(node != 0 for node, _ in ranking)

    def test_source_included_on_request(self, diamond_graph, method):
        ranking = top_k_reliable_targets(
            diamond_graph, 0, k=4, samples=400, method=method, rng=0,
            include_source=True,
        )
        assert ranking[0] == (0, 1.0)

    def test_unreached_nodes_scored_zero(self, method):
        graph = UncertainGraph(4, [(0, 1, 0.9)])  # nodes 2, 3 isolated
        ranking = top_k_reliable_targets(
            graph, 0, k=4, samples=400, method=method, rng=0
        )
        scores = dict(ranking)
        assert scores[2] == 0.0
        assert scores[3] == 0.0

    def test_invalid_k(self, diamond_graph):
        with pytest.raises(ValueError):
            top_k_reliable_targets(diamond_graph, 0, k=0)
