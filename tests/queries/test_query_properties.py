"""Property-based tests for the advanced query layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import UncertainGraph
from repro.queries.conditional import conditional_reliability
from repro.queries.distance_constrained import distance_constrained_reliability
from repro.queries.top_k import all_reliabilities
from tests.conftest import small_graph_parts


class TestConditionalProperties:
    @given(small_graph_parts)
    @settings(max_examples=25, deadline=None)
    def test_conditioning_all_edges_present_is_deterministic(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        target = node_count - 1
        edges = [(u, v) for u, v, _ in graph.iter_edges()]
        value = conditional_reliability(
            graph, 0, target, present_edges=edges, samples=24, rng=0
        )
        # All edges pinned up: reachability is the certain-graph indicator.
        reachable = graph.bfs_distances(0)[target] >= 0
        assert value == (1.0 if reachable else 0.0)

    @given(small_graph_parts)
    @settings(max_examples=25, deadline=None)
    def test_conditioning_all_edges_absent_gives_zero(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        target = node_count - 1
        edges = [(u, v) for u, v, _ in graph.iter_edges()]
        value = conditional_reliability(
            graph, 0, target, absent_edges=edges, samples=24, rng=0
        )
        assert value == 0.0

    @given(small_graph_parts)
    @settings(max_examples=20, deadline=None)
    def test_failing_every_other_node_isolates(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        target = node_count - 1
        if target == 0:
            return
        others = [v for v in range(node_count) if v not in (0, target)]
        value = conditional_reliability(
            graph, 0, target, failed_nodes=others, samples=64, rng=0
        )
        direct = graph.edge_probability(0, target)
        if direct is None:
            assert value == 0.0
        else:
            assert 0.0 <= value <= 1.0


class TestDistanceProperties:
    @given(small_graph_parts, st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_constrained_never_exceeds_unconstrained(self, parts, distance):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        target = node_count - 1
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        constrained = distance_constrained_reliability(
            graph, 0, target, distance, samples=400, rng=rng_a
        )
        unconstrained = distance_constrained_reliability(
            graph, 0, target, node_count, samples=400, rng=rng_b
        )
        # Same RNG stream consumption differs, so compare with slack.
        assert constrained <= unconstrained + 0.12


class TestAllReliabilitiesProperties:
    @given(small_graph_parts)
    @settings(max_examples=20, deadline=None)
    def test_values_are_probabilities_and_source_is_one(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        values = all_reliabilities(graph, 0, samples=64, method="mc", rng=0)
        assert values.shape == (node_count,)
        assert ((values >= 0.0) & (values <= 1.0)).all()
        assert values[0] == 1.0

    @given(small_graph_parts)
    @settings(max_examples=15, deadline=None)
    def test_bfs_sharing_and_mc_agree_in_support(self, parts):
        node_count, triples = parts
        graph = UncertainGraph(node_count, triples)
        via_index = all_reliabilities(
            graph, 0, samples=64, method="bfs_sharing", rng=0
        )
        # A node unreachable in the certain graph must score 0 under both.
        unreachable = graph.bfs_distances(0) < 0
        assert (via_index[unreachable] == 0.0).all()
