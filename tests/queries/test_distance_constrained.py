"""Tests for distance-constrained reliability queries."""

import pytest

from repro.core.graph import UncertainGraph
from repro.queries.distance_constrained import (
    distance_constrained_reliability,
    distance_profile,
)


class TestDistanceConstrained:
    def test_too_short_budget_gives_zero(self, chain_graph):
        # Target is 3 hops away; 2 hops cannot reach it.
        value = distance_constrained_reliability(
            chain_graph, 0, 3, distance=2, samples=500, rng=0
        )
        assert value == 0.0

    def test_exact_budget_matches_unconstrained(self, chain_graph):
        value = distance_constrained_reliability(
            chain_graph, 0, 3, distance=3, samples=30_000, rng=0
        )
        assert value == pytest.approx(0.8**3, abs=0.01)

    def test_monotone_in_distance(self):
        # Direct unreliable edge vs a longer reliable detour.
        graph = UncertainGraph(
            4, [(0, 3, 0.2), (0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)]
        )
        short = distance_constrained_reliability(
            graph, 0, 3, distance=1, samples=20_000, rng=1
        )
        long = distance_constrained_reliability(
            graph, 0, 3, distance=3, samples=20_000, rng=1
        )
        assert short == pytest.approx(0.2, abs=0.01)
        assert long > short + 0.4  # detour adds 0.9^3 ~ 0.73 of mass

    def test_source_equals_target(self, chain_graph):
        assert (
            distance_constrained_reliability(chain_graph, 2, 2, 1, 10, rng=0)
            == 1.0
        )

    def test_invalid_distance(self, chain_graph):
        with pytest.raises(ValueError):
            distance_constrained_reliability(chain_graph, 0, 3, distance=0)


class TestDistanceProfile:
    def test_profile_monotone_and_saturating(self, diamond_graph):
        profile = distance_profile(
            diamond_graph, 0, 3, max_distance=4, samples=20_000, rng=2
        )
        assert profile.shape == (4,)
        # d=1: no direct edge -> 0; d>=2: both 2-hop paths -> 0.4375.
        assert profile[0] == 0.0
        for d in range(1, 4):
            assert profile[d] == pytest.approx(0.4375, abs=0.015)

    def test_invalid_max_distance(self, diamond_graph):
        with pytest.raises(ValueError):
            distance_profile(diamond_graph, 0, 3, max_distance=0)
