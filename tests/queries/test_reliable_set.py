"""Tests for reliable-set (threshold) queries."""

import pytest

from repro.core.graph import UncertainGraph
from repro.queries.reliable_set import reliable_set


@pytest.fixture
def star_graph():
    """Hub 0 with spokes of descending probability."""
    return UncertainGraph(
        5, [(0, 1, 0.9), (0, 2, 0.6), (0, 3, 0.3), (0, 4, 0.05)]
    )


class TestReliableSet:
    def test_threshold_filters(self, star_graph):
        members = reliable_set(star_graph, 0, threshold=0.5, samples=4_000, rng=0)
        assert [node for node, _ in members] == [1, 2]

    def test_low_threshold_includes_more(self, star_graph):
        members = reliable_set(star_graph, 0, threshold=0.02, samples=4_000, rng=0)
        assert len(members) == 4

    def test_sorted_by_reliability(self, star_graph):
        members = reliable_set(star_graph, 0, threshold=0.02, samples=4_000, rng=0)
        values = [value for _, value in members]
        assert values == sorted(values, reverse=True)

    def test_source_excluded_by_default(self, star_graph):
        members = reliable_set(star_graph, 0, threshold=0.5, samples=500, rng=0)
        assert all(node != 0 for node, _ in members)

    def test_source_included_on_request(self, star_graph):
        members = reliable_set(
            star_graph, 0, threshold=0.5, samples=500, rng=0, include_source=True
        )
        assert members[0] == (0, 1.0)

    def test_mc_method(self, star_graph):
        members = reliable_set(
            star_graph, 0, threshold=0.5, samples=4_000, method="mc", rng=0
        )
        assert [node for node, _ in members] == [1, 2]

    def test_invalid_threshold(self, star_graph):
        with pytest.raises(ValueError):
            reliable_set(star_graph, 0, threshold=0.0)
        with pytest.raises(ValueError):
            reliable_set(star_graph, 0, threshold=1.5)
