"""Tests for the shard-worker facade hook: ``shard_run``.

``ReliabilityService.shard_run`` is what a worker executes for
``POST /v1/shard/run``: evaluate a world sub-range against the pinned
graph version and return raw integer hit counts with provenance.  The
fingerprint gate is the tier's only runtime defence against mixed
graph versions, so its rejection shape (409, structured, actionable)
is pinned here too.
"""

import numpy as np
import pytest

from repro.api import (
    BatchRequest,
    FingerprintMismatchError,
    InvalidQueryError,
    QuerySpec,
    ReliabilityError,
    ReliabilityService,
    ShardRunRequest,
    ShardRunResponse,
    UpdateRequest,
)
from repro.engine.batch import BatchEngine
from repro.engine.cache import graph_fingerprint

SEED = 3

QUERIES = (
    QuerySpec(0, 5, 300),
    QuerySpec(3, 9, 250),
    QuerySpec(0, 7, 200, 2),
)


@pytest.fixture(scope="module")
def service():
    with ReliabilityService.from_dataset("lastfm", "tiny", seed=SEED) as svc:
        yield svc


def shard_request(service, start, stop, **overrides):
    fields = {
        "queries": QUERIES,
        "start": start,
        "stop": stop,
        "seed": SEED,
        "fingerprint": graph_fingerprint(service.graph),
    }
    fields.update(overrides)
    return ShardRunRequest(**fields)


class TestShardRunEvaluation:
    def test_matches_run_range_bit_for_bit(self, service):
        response = service.shard_run(shard_request(service, 0, 300))
        engine = BatchEngine(service.graph, seed=SEED, workers=1)
        oracle = engine.run_range(
            [(0, 5, 300), (3, 9, 250), (0, 7, 200, 2)], 0, 300
        )
        assert list(response.hits) == [int(h) for h in oracle.hits]
        assert response.sweeps == oracle.sweeps
        assert response.worlds_evaluated == oracle.worlds_evaluated
        assert response.fingerprint == engine.fingerprint
        assert response.query_count == len(QUERIES)

    def test_subranges_sum_to_full_range(self, service):
        low = service.shard_run(shard_request(service, 0, 150))
        high = service.shard_run(shard_request(service, 150, 300))
        full = service.shard_run(shard_request(service, 0, 300))
        merged = np.asarray(low.hits) + np.asarray(high.hits)
        np.testing.assert_array_equal(merged, np.asarray(full.hits))
        assert low.sweeps + high.sweeps >= full.sweeps

    def test_never_caches_partial_counts(self, service):
        before = dict(service.stats()["cache"])
        service.shard_run(shard_request(service, 0, 120))
        after = service.stats()["cache"]
        assert after["size"] == before["size"]

    def test_batch_results_unaffected_by_shard_runs(self, service):
        request = BatchRequest(queries=QUERIES, seed=SEED)
        reference = service.estimate_batch(request)
        service.shard_run(shard_request(service, 17, 93))
        replay = service.estimate_batch(request)
        assert [r.estimate for r in replay.results] == [
            r.estimate for r in reference.results
        ]


class TestShardRunRejections:
    def test_fingerprint_mismatch_is_409(self, service):
        request = shard_request(service, 0, 100, fingerprint="deadbeef" * 8)
        with pytest.raises(FingerprintMismatchError) as excinfo:
            service.shard_run(request)
        assert excinfo.value.http_status == 409
        assert graph_fingerprint(service.graph) in str(excinfo.value)

    def test_mismatch_after_update_names_both_versions(self):
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=SEED
        ) as svc:
            stale = graph_fingerprint(svc.graph)
            svc.update(UpdateRequest(set_edges=((0, 1, 0.5),)))
            request = ShardRunRequest(
                queries=QUERIES,
                start=0,
                stop=50,
                seed=SEED,
                fingerprint=stale,
            )
            with pytest.raises(FingerprintMismatchError, match=stale[:16]):
                svc.shard_run(request)

    def test_bad_range_rejected(self, service):
        with pytest.raises(InvalidQueryError):
            service.shard_run(shard_request(service, -5, 100))
        with pytest.raises(InvalidQueryError):
            service.shard_run(shard_request(service, 100, 50))

    def test_unknown_kernels_rejected(self, service):
        with pytest.raises(ReliabilityError):
            service.shard_run(shard_request(service, 0, 50, kernels="cuda"))


class TestShardRunWireTypes:
    def test_request_roundtrip(self, service):
        request = shard_request(service, 5, 105, chunk_size=64)
        assert ShardRunRequest.from_dict(request.to_dict()) == request

    def test_request_requires_fingerprint(self):
        with pytest.raises(InvalidQueryError, match="fingerprint"):
            ShardRunRequest.from_dict(
                {"queries": [[0, 5, 100]], "start": 0, "stop": 50, "seed": 3}
            )

    def test_request_rejects_unknown_keys(self):
        with pytest.raises(InvalidQueryError, match="does not accept"):
            ShardRunRequest.from_dict(
                {
                    "queries": [[0, 5, 100]],
                    "start": 0,
                    "stop": 50,
                    "seed": 3,
                    "fingerprint": "ab",
                    "sharding": True,
                }
            )

    def test_response_roundtrip(self, service):
        response = service.shard_run(shard_request(service, 0, 80))
        document = response.to_dict()
        assert document["hits"] == list(response.hits)
        assert ShardRunResponse.from_dict(document) == response

    def test_response_rejects_non_integer_hits(self):
        with pytest.raises(InvalidQueryError):
            ShardRunResponse.from_dict(
                {
                    "hits": [1, 2.5],
                    "start": 0,
                    "stop": 10,
                    "worlds_evaluated": 10,
                    "sweeps": 1,
                    "seed": 3,
                    "fingerprint": "ab",
                    "seconds": 0.1,
                    "query_count": 2,
                }
            )
