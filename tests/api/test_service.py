"""Tests for the `ReliabilityService` facade.

The facade is the single public surface: these tests pin (a) its
equivalence to the lower-level building blocks it wraps, (b) its
structured failure modes, and (c) the amortisation a long-lived service
exists for — shared caches, shared estimator indexes, and thread-safe
bit-identical answers.
"""

import threading

import numpy as np
import pytest

from repro.api import (
    BatchRequest,
    BoundsRequest,
    EstimateRequest,
    GraphLoadError,
    InvalidQueryError,
    QuerySpec,
    RecommendRequest,
    ReliabilityService,
    TopKRequest,
    UnknownEstimatorError,
    UpdateRequest,
    WarmRequest,
)
from repro.core.bounds import reliability_bounds
from repro.core.graph import UncertainGraph
from repro.core.recommend import recommend_estimator
from repro.core.registry import create_estimator
from repro.engine.batch import BatchEngine
from repro.queries.top_k import top_k_reliable_targets
from repro.util.rng import stable_substream

WORKLOAD = (
    QuerySpec(0, 5, 200),
    QuerySpec(3, 9, 150),
    QuerySpec(0, 5, 200),  # duplicate on purpose
)


@pytest.fixture
def service():
    built = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
    yield built
    built.close()


class TestConstruction:
    def test_from_dataset_unknown_key_is_structured(self):
        with pytest.raises(GraphLoadError, match="unknown dataset"):
            ReliabilityService.from_dataset("not_a_dataset", "tiny")

    def test_from_dataset_unknown_scale_is_structured(self):
        with pytest.raises(GraphLoadError, match="unknown scale"):
            ReliabilityService.from_dataset("lastfm", "galactic")

    def test_raw_graph_service(self, diamond_graph):
        service = ReliabilityService(diamond_graph, seed=1)
        response = service.estimate(
            EstimateRequest(source=0, target=3, samples=2_000)
        )
        assert 0.0 <= response.estimate <= 1.0
        assert response.dataset is None

    def test_non_graph_rejected(self):
        with pytest.raises(GraphLoadError, match="UncertainGraph"):
            ReliabilityService("not a graph")

    def test_context_manager_closes(self, diamond_graph):
        with ReliabilityService(diamond_graph) as service:
            assert service.health()["status"] == "ok"
        assert service.health()["status"] == "closed"


class TestEstimate:
    def test_matches_direct_registry_protocol(self, service):
        """The facade replays the CLI's historical per-query protocol."""
        estimator = create_estimator("mc", service.graph, seed=3)
        expected = estimator.estimate(
            0, 5, 200, rng=stable_substream(3, 0, 5)
        )
        response = service.estimate(
            EstimateRequest(source=0, target=5, samples=200)
        )
        assert response.estimate == expected
        assert response.method_display == "MC"
        assert response.seed == 3

    def test_repeated_calls_replay_identically(self, service):
        request = EstimateRequest(source=0, target=5, samples=200)
        first = service.estimate(request)
        second = service.estimate(request)
        assert first.estimate == second.estimate

    def test_unknown_method_is_structured(self, service):
        with pytest.raises(UnknownEstimatorError, match="unknown estimator"):
            service.estimate(
                EstimateRequest(source=0, target=5, method="quantum")
            )

    def test_out_of_range_node_is_structured(self, service):
        with pytest.raises(InvalidQueryError, match="source 999 out of range"):
            service.estimate(EstimateRequest(source=999, target=5))

    def test_nonpositive_samples_rejected(self, service):
        with pytest.raises(InvalidQueryError, match="samples"):
            service.estimate(EstimateRequest(source=0, target=5, samples=0))

    def test_estimators_are_cached_per_method(self, service):
        service.estimate(EstimateRequest(source=0, target=5, samples=50))
        service.estimate(EstimateRequest(source=3, target=9, samples=50))
        assert service.estimator("mc") is service.estimator("mc")
        assert service.stats()["estimators_loaded"] == ["mc"]


class TestEstimateBatch:
    def test_engine_path_matches_bare_engine(self, service):
        engine = BatchEngine(service.graph, seed=3)
        expected = engine.run([(0, 5, 200), (3, 9, 150), (0, 5, 200)])
        response = service.estimate_batch(BatchRequest(queries=WORKLOAD))
        assert response.estimates == [float(e) for e in expected.estimates]
        assert response.engine.mode == "shared_worlds"
        assert response.engine.worlds_sampled == 200

    def test_second_identical_request_served_from_cache(self, service):
        request = BatchRequest(queries=WORKLOAD)
        first = service.estimate_batch(request)
        second = service.estimate_batch(request)
        assert second.engine.worlds_sampled == 0
        assert second.engine.sweeps == 0
        assert [r.cached for r in first.results] == [False, False, False]
        assert [r.cached for r in second.results] == [True, True, True]
        assert first.estimates == second.estimates

    def test_bfs_sharing_bit_identical_to_mc(self, service):
        mc = service.estimate_batch(BatchRequest(queries=WORKLOAD))
        bfs = service.estimate_batch(
            BatchRequest(queries=WORKLOAD, method="bfs_sharing")
        )
        assert mc.estimates == bfs.estimates

    def test_default_samples_applied(self, service):
        response = service.estimate_batch(
            BatchRequest(queries=(QuerySpec(0, 5),), samples=120)
        )
        assert response.results[0].samples == 120

    def test_prob_tree_matches_direct_estimator(self, service):
        direct = create_estimator("prob_tree", service.graph, seed=3)
        direct.prepare()
        expected = direct.estimate_batch(
            [(0, 5, 200), (3, 9, 150)], seed=3
        )
        response = service.estimate_batch(
            BatchRequest(
                queries=(QuerySpec(0, 5, 200), QuerySpec(3, 9, 150)),
                method="prob_tree",
            )
        )
        assert response.engine.mode == "bag_grouped"
        assert response.estimates == [float(e) for e in expected]

    def test_fallback_matches_direct_estimator(self, service):
        direct = create_estimator("rhh", service.graph, seed=3)
        expected = direct.estimate_batch([(0, 5, 100)], seed=3)
        response = service.estimate_batch(
            BatchRequest(queries=(QuerySpec(0, 5, 100),), method="rhh")
        )
        assert response.engine.mode == "per_query_loop"
        assert response.estimates == [float(expected[0])]

    def test_sequential_oracle_agrees_with_shared_worlds(self, service):
        shared = service.estimate_batch(BatchRequest(queries=WORKLOAD))
        sequential = service.estimate_batch(
            BatchRequest(queries=WORKLOAD, sequential=True)
        )
        assert sequential.engine.mode == "sequential"
        assert shared.estimates == sequential.estimates

    def test_out_of_range_query_names_its_position(self, service):
        with pytest.raises(
            InvalidQueryError, match="query 1: target 999 out of range"
        ):
            service.estimate_batch(
                BatchRequest(
                    queries=(QuerySpec(0, 5, 100), QuerySpec(0, 999, 100))
                )
            )

    def test_hop_bounded_fallback_rejected(self, service):
        with pytest.raises(InvalidQueryError, match="shared-world engine"):
            service.estimate_batch(
                BatchRequest(
                    queries=(QuerySpec(0, 5, 100, 2),), method="rhh"
                )
            )

    def test_workers_on_fallback_rejected(self, service):
        with pytest.raises(InvalidQueryError, match="fast path"):
            service.estimate_batch(
                BatchRequest(
                    queries=(QuerySpec(0, 5, 100),), method="rhh", workers=2
                )
            )

    def test_sequential_on_persistent_service_rejected(self, tmp_path):
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=3, cache_dir=str(tmp_path)
        ) as service:
            with pytest.raises(InvalidQueryError, match="bypasses"):
                service.estimate_batch(
                    BatchRequest(queries=WORKLOAD, sequential=True)
                )

    def test_request_seed_overrides_service_seed(self, service):
        engine = BatchEngine(service.graph, seed=11)
        expected = engine.run([(0, 5, 200)])
        response = service.estimate_batch(
            BatchRequest(queries=(QuerySpec(0, 5, 200),), seed=11)
        )
        assert response.seed == 11
        assert response.estimates == [float(expected.estimates[0])]

    def test_to_dict_shape_is_the_cli_contract(self, service):
        report = service.estimate_batch(
            BatchRequest(queries=WORKLOAD)
        ).to_dict()
        assert list(report) == [
            "dataset", "scale", "method", "seed", "query_count", "engine",
            "results",
        ]
        assert report["dataset"] == "lastfm"
        assert report["scale"] == "tiny"
        assert report["query_count"] == 3
        for row in report["results"]:
            assert set(row) == {
                "source", "target", "samples", "max_hops", "estimate",
                "cached",
            }


class TestWarm:
    def test_warm_reports_new_vs_already_warm(self, service):
        first = service.warm(WarmRequest(queries=WORKLOAD))
        assert first.query_count == 3
        assert first.unique_queries == 2  # the duplicate collapses
        assert first.newly_written == 2
        assert first.already_warm == 0
        second = service.warm(WarmRequest(queries=WORKLOAD))
        assert second.newly_written == 0
        assert second.already_warm == 2
        assert second.worlds_sampled == 0

    def test_warm_serves_subsequent_batches(self, service):
        service.warm(WarmRequest(queries=WORKLOAD))
        response = service.estimate_batch(BatchRequest(queries=WORKLOAD))
        assert response.engine.worlds_sampled == 0
        assert all(result.cached for result in response.results)

    def test_warm_persists_across_services(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=3, cache_dir=cache_dir
        ) as warmer:
            report = warmer.warm(WarmRequest(queries=WORKLOAD))
            assert report.persistent is True
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=3, cache_dir=cache_dir
        ) as reader:
            response = reader.estimate_batch(BatchRequest(queries=WORKLOAD))
            assert response.engine.worlds_sampled == 0

    def test_warm_validates_queries(self, service):
        with pytest.raises(InvalidQueryError, match="query 0"):
            service.warm(WarmRequest(queries=(QuerySpec(0, 9999, 10),)))


class TestOtherEndpoints:
    def test_topk_matches_direct_call(self, service):
        expected = top_k_reliable_targets(
            service.graph, 0, 3, samples=200, method="bfs_sharing", rng=3
        )
        response = service.topk(TopKRequest(source=0, k=3, samples=200))
        assert list(response.ranking) == expected

    def test_topk_unknown_method_rejected(self, service):
        with pytest.raises(UnknownEstimatorError, match="top-k"):
            service.topk(TopKRequest(source=0, method="rss"))

    def test_bounds_matches_direct_call(self, service):
        lower, upper = reliability_bounds(service.graph, 0, 5)
        response = service.bounds(BoundsRequest(source=0, target=5))
        assert (response.lower, response.upper) == (lower, upper)

    def test_recommend_static_matches_decision_tree(self):
        expected = recommend_estimator(
            memory_limited=True, want_fastest=True
        )
        response = ReliabilityService.recommend_static(
            RecommendRequest(memory_limited=True)
        )
        assert response.estimators == tuple(expected.estimators)
        assert "ProbTree" in response.display_names

    def test_instance_recommend_reports_decision_and_telemetry(self, service):
        response = service.recommend(RecommendRequest(samples=200))
        assert response.reason == "cold_start"
        assert response.estimators[0] == response.decision["method"]
        assert response.decision["static_path"]
        assert response.telemetry["observations"] == 0
        # Warm one method's bucket past the trust threshold: the router
        # switches to measured evidence and cites it.
        for _ in range(6):
            service.estimate(
                EstimateRequest(source=0, target=5, samples=200, method="mc")
            )
        warmed = service.recommend(RecommendRequest(samples=200))
        assert warmed.reason == "measured"
        assert warmed.estimators[0] == "mc"
        assert warmed.decision["evidence"]["mc"]["count"] >= 6
        assert warmed.telemetry["methods"]["mc"]["observations"] >= 6

    def test_health_and_stats(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["dataset"] == "lastfm"
        service.estimate(EstimateRequest(source=0, target=5, samples=50))
        stats = service.stats()
        assert stats["requests"]["estimate"] == 1
        assert stats["cache"]["capacity"] > 0
        assert stats["persistent"] is False
        assert stats["uptime_seconds"] >= 0


class TestStudy:
    def test_study_through_facade_matches_direct_runner(self):
        from repro.experiments.convergence import ConvergenceCriterion
        from repro.experiments.runner import StudyConfig, run_study

        config = StudyConfig(
            dataset="lastfm",
            scale="tiny",
            pair_count=2,
            repeats=2,
            criterion=ConvergenceCriterion(k_start=250, k_step=250, k_max=500),
            estimators=("mc",),
            seed=3,
        )
        direct = run_study(config)
        service = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
        via_facade = service.study(config)
        assert direct.accuracy_rows() == via_facade.accuracy_rows()

    def test_study_config_must_match_service(self, service):
        from repro.experiments.runner import StudyConfig

        config = StudyConfig(dataset="nethept", scale="tiny", seed=3)
        with pytest.raises(InvalidQueryError, match="addresses"):
            service.study(config)

    def test_raw_graph_service_refuses_studies(self, diamond_graph):
        from repro.experiments.runner import StudyConfig

        service = ReliabilityService(diamond_graph)
        with pytest.raises(GraphLoadError, match="raw graph"):
            service.study(StudyConfig(dataset="lastfm", scale="tiny"))


class TestThreadSafety:
    def test_concurrent_batches_are_bit_identical(self, service):
        request = BatchRequest(queries=WORKLOAD)
        oracle = BatchEngine(service.graph, seed=3).run(
            [(0, 5, 200), (3, 9, 150), (0, 5, 200)]
        )
        expected = [float(e) for e in oracle.estimates]
        results = [None] * 8
        errors = []

        def worker(slot):
            try:
                results[slot] = service.estimate_batch(request).estimates
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result == expected for result in results)

    def test_concurrent_mixed_endpoints(self, service):
        errors = []

        def estimate():
            try:
                service.estimate(
                    EstimateRequest(source=0, target=5, samples=100)
                )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def batch():
            try:
                service.estimate_batch(BatchRequest(queries=WORKLOAD))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=target) for target in
                   (estimate, batch, estimate, batch)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = service.stats()
        assert stats["requests"]["estimate"] == 2
        assert stats["requests"]["batch"] == 2


class TestBatchPathIntrospection:
    def test_batch_path_of(self):
        assert ReliabilityService.batch_path_of("mc") == "engine"
        assert ReliabilityService.batch_path_of("bfs_sharing") == "engine"
        assert ReliabilityService.batch_path_of("prob_tree") == "bag_grouped"
        assert ReliabilityService.batch_path_of("rhh") == "fallback"

    def test_batch_path_of_unknown_method(self):
        with pytest.raises(UnknownEstimatorError):
            ReliabilityService.batch_path_of("quantum")


def test_numpy_estimates_are_plain_floats(diamond_graph):
    service = ReliabilityService(diamond_graph, seed=0)
    response = service.estimate_batch(
        BatchRequest(queries=(QuerySpec(0, 3, 64),))
    )
    assert not isinstance(response.results[0].estimate, np.floating)


class TestEstimateSeedProvenance:
    def test_index_methods_honour_the_request_seed(self, service):
        """Regression: a request seed must govern index-backed answers.

        The long-lived bfs_sharing estimator samples its world index
        from the service seed; a request carrying its own seed gets a
        fresh estimator seeded by the request, so the reported seed is
        the estimate's true provenance.
        """
        response = service.estimate(
            EstimateRequest(
                source=0, target=5, samples=200, method="bfs_sharing",
                seed=11,
            )
        )
        direct = create_estimator("bfs_sharing", service.graph, seed=11)
        expected = direct.estimate(
            0, 5, 200, rng=stable_substream(11, 0, 5)
        )
        assert response.seed == 11
        assert response.estimate == expected

    def test_service_seed_requests_share_the_cached_index(self, service):
        first = service.estimate(
            EstimateRequest(
                source=0, target=5, samples=200, method="bfs_sharing"
            )
        )
        second = service.estimate(
            EstimateRequest(
                source=0, target=5, samples=200, method="bfs_sharing",
                seed=3,  # explicit but equal to the service seed
            )
        )
        assert first.estimate == second.estimate
        assert "bfs_sharing" in service.stats()["estimators_loaded"]


class TestFineGrainedLocking:
    """The PR 5 concurrency model: independent requests truly overlap."""

    def test_concurrent_methods_bit_identical_to_serial(self):
        # Every batch path (engine, bag_grouped, fallback) and estimate,
        # racing on one service, must equal an untouched serial service.
        serial = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
        shared = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
        requests = [
            ("batch", BatchRequest(queries=WORKLOAD, method="mc")),
            ("batch", BatchRequest(queries=WORKLOAD, method="bfs_sharing")),
            ("batch", BatchRequest(
                queries=(QuerySpec(0, 5, 120), QuerySpec(3, 9, 120)),
                method="prob_tree",
            )),
            ("batch", BatchRequest(queries=(QuerySpec(0, 5, 60),),
                                   method="rhh")),
            ("estimate", EstimateRequest(source=0, target=5, samples=150)),
            ("estimate", EstimateRequest(source=3, target=9, samples=150)),
        ]
        expected = []
        for kind, request in requests:
            if kind == "batch":
                expected.append(serial.estimate_batch(request).estimates)
            else:
                expected.append(serial.estimate(request).estimate)
        serial.close()

        results = [None] * len(requests)
        errors = []

        def worker(slot):
            kind, request = requests[slot]
            try:
                if kind == "batch":
                    results[slot] = shared.estimate_batch(request).estimates
                else:
                    results[slot] = shared.estimate(request).estimate
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shared.close()
        assert not errors
        assert results == expected

    def test_stats_never_blocks_and_counts_exactly(self, service):
        # Readers poll stats while writers drive requests; every
        # snapshot must be well-formed and the final counts exact.
        stop = threading.Event()
        errors = []

        def poll_stats():
            try:
                while not stop.is_set():
                    snapshot = service.stats()
                    assert set(snapshot["requests"]) <= set(
                        ReliabilityService.ENDPOINTS
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def drive(_):
            try:
                for _ in range(4):
                    service.estimate_batch(BatchRequest(queries=WORKLOAD))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        pollers = [threading.Thread(target=poll_stats) for _ in range(2)]
        drivers = [
            threading.Thread(target=drive, args=(slot,)) for slot in range(4)
        ]
        for thread in pollers + drivers:
            thread.start()
        for thread in drivers:
            thread.join()
        stop.set()
        for thread in pollers:
            thread.join()
        assert not errors
        assert service.stats()["requests"]["batch"] == 16

    def test_estimator_built_exactly_once_under_racing_requests(self):
        service = ReliabilityService.from_dataset("lastfm", "tiny", seed=3)
        try:
            seen = []

            def worker():
                seen.append(service.estimator("prob_tree"))

            threads = [
                threading.Thread(target=worker) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(map(id, seen))) == 1
            assert service.stats()["estimators_loaded"] == ["prob_tree"]
        finally:
            service.close()


class TestAutoRouting:
    """`estimator="auto"`: the router resolves, the answer never changes."""

    def test_auto_estimate_bit_identical_to_routed_method(self, service):
        auto = service.estimate(
            EstimateRequest(source=0, target=5, samples=200, method="auto")
        )
        assert auto.routing is not None
        assert auto.routing["reason"] == "cold_start"
        assert auto.method == auto.routing["method"]
        direct = service.estimate(
            EstimateRequest(
                source=0, target=5, samples=200, method=auto.method
            )
        )
        assert direct.estimate == auto.estimate

    def test_named_method_carries_no_routing_annotation(self, service):
        response = service.estimate(
            EstimateRequest(source=0, target=5, samples=200, method="mc")
        )
        assert response.routing is None
        assert "routing" not in response.to_dict()

    def test_auto_batch_bit_identical_to_routed_method(self, service):
        auto = service.estimate_batch(
            BatchRequest(queries=WORKLOAD, method="auto")
        )
        assert auto.routing is not None
        direct = service.estimate_batch(
            BatchRequest(queries=WORKLOAD, method=auto.method)
        )
        assert [row.estimate for row in auto.results] == [
            row.estimate for row in direct.results
        ]
        assert auto.method == direct.method

    def test_auto_warms_into_measured_routing(self, service):
        for _ in range(6):
            service.estimate(
                EstimateRequest(source=0, target=5, samples=200, method="mc")
            )
        response = service.estimate(
            EstimateRequest(source=0, target=5, samples=200, method="auto")
        )
        assert response.routing["reason"] == "measured"
        assert response.method == "mc"

    def test_hop_bounded_auto_batch_routes_hop_capable(self, service):
        response = service.estimate_batch(
            BatchRequest(
                queries=(QuerySpec(0, 5, 100),),
                method="auto",
                max_hops=2,
            )
        )
        assert response.method in ("mc", "bfs_sharing")

    def test_update_demotes_dropped_index_until_reserved(self, service):
        # Build the bfs_sharing index, then mutate structurally: its
        # survival mode is the lazy drop, and auto must not route to it
        # until a request rebuilds the index.
        service.estimate(
            EstimateRequest(
                source=0, target=5, samples=100, method="bfs_sharing"
            )
        )
        update = service.update(UpdateRequest(set_edges=((0, 5, 0.9),)))
        assert update.estimators["bfs_sharing"] == "dropped"
        assert service.stats()["routing"]["dropped_indexes"] == [
            "bfs_sharing"
        ]
        routed = service.estimate(
            EstimateRequest(source=0, target=5, samples=100, method="auto")
        )
        assert routed.method != "bfs_sharing"
        # Serving the method directly rebuilds the index and lifts the
        # demotion.
        service.estimate(
            EstimateRequest(
                source=0, target=5, samples=100, method="bfs_sharing"
            )
        )
        assert service.stats()["routing"]["dropped_indexes"] == []

    def test_stats_reports_routing_section(self, service):
        service.estimate(
            EstimateRequest(source=0, target=5, samples=100, method="auto")
        )
        routing = service.stats()["routing"]
        assert routing["telemetry"]["observations"] == 1
        assert routing["router"]["decisions"]["cold_start"] == 1
        assert routing["dropped_indexes"] == []
