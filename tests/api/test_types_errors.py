"""Tests for the API wire types and the structured error hierarchy."""

import pytest

from repro.api import (
    BatchRequest,
    EstimateRequest,
    GraphLoadError,
    InvalidQueryError,
    QuerySpec,
    RecommendRequest,
    ReliabilityError,
    UnknownEstimatorError,
    WarmRequest,
    coerce_query_specs,
)


class TestErrorHierarchy:
    def test_every_api_error_is_a_reliability_error(self):
        for cls in (UnknownEstimatorError, InvalidQueryError, GraphLoadError):
            assert issubclass(cls, ReliabilityError)

    def test_invalid_query_is_a_value_error(self):
        # Pre-facade callers caught ValueError for malformed workloads;
        # the structured type must keep satisfying those handlers.
        assert issubclass(InvalidQueryError, ValueError)
        assert issubclass(UnknownEstimatorError, ValueError)

    def test_to_dict_carries_type_and_message(self):
        error = InvalidQueryError("entry 3: bad")
        assert error.to_dict() == {
            "type": "InvalidQueryError",
            "message": "entry 3: bad",
        }

    def test_http_status_defaults_to_400(self):
        assert InvalidQueryError("x").http_status == 400


class TestQuerySpecCoercion:
    def test_list_forms(self):
        assert QuerySpec.coerce([0, 5], 0) == QuerySpec(0, 5, None, None)
        assert QuerySpec.coerce([0, 5, 200], 0) == QuerySpec(0, 5, 200, None)
        assert QuerySpec.coerce([0, 5, 200, 2], 0) == QuerySpec(0, 5, 200, 2)

    def test_trailing_null_means_unbounded(self):
        assert QuerySpec.coerce([0, 5, 200, None], 0).max_hops is None

    def test_object_form(self):
        spec = QuerySpec.coerce(
            {"source": 1, "target": 2, "samples": 50, "max_hops": 3}, 4
        )
        assert spec == QuerySpec(1, 2, 50, 3)

    def test_object_missing_target_rejected_with_position(self):
        with pytest.raises(InvalidQueryError, match="entry 7.*'source' and 'target'"):
            QuerySpec.coerce({"source": 1}, 7)

    def test_object_unknown_key_rejected(self):
        with pytest.raises(InvalidQueryError, match="'sorce'"):
            QuerySpec.coerce({"sorce": 1, "target": 2}, 0)

    def test_scalar_rejected_with_position(self):
        with pytest.raises(InvalidQueryError, match="entry 2"):
            QuerySpec.coerce(5, 2)

    def test_non_numeric_rejected(self):
        with pytest.raises(InvalidQueryError, match="non-numeric"):
            QuerySpec.coerce([None, 5, 100], 0)

    def test_wrong_arity_rejected(self):
        with pytest.raises(InvalidQueryError, match="entry 0"):
            QuerySpec.coerce([0, 5, 100, 2, 9], 0)

    def test_coerce_specs_wraps_single_object(self):
        specs = coerce_query_specs({"source": 0, "target": 5})
        assert specs == (QuerySpec(0, 5, None, None),)

    def test_coerce_specs_rejects_non_list(self):
        with pytest.raises(InvalidQueryError, match="must be a list"):
            coerce_query_specs("0 5 100")


class TestRequestParsing:
    def test_estimate_defaults(self):
        request = EstimateRequest.from_dict({"source": 0, "target": 5})
        assert request == EstimateRequest(0, 5, 1_000, "mc", None)

    def test_estimate_missing_endpoint_rejected(self):
        with pytest.raises(InvalidQueryError, match="'source' and 'target'"):
            EstimateRequest.from_dict({"source": 0})

    def test_estimate_unknown_key_rejected(self):
        with pytest.raises(InvalidQueryError, match="'smaples'"):
            EstimateRequest.from_dict(
                {"source": 0, "target": 5, "smaples": 10}
            )

    def test_estimate_non_integer_rejected(self):
        with pytest.raises(InvalidQueryError, match="samples must be an integer"):
            EstimateRequest.from_dict(
                {"source": 0, "target": 5, "samples": "many"}
            )

    def test_estimate_non_object_rejected(self):
        with pytest.raises(InvalidQueryError, match="JSON object"):
            EstimateRequest.from_dict([0, 5])

    def test_batch_round_trip(self):
        payload = {
            "queries": [[0, 5, 200], {"source": 3, "target": 9}],
            "method": "bfs_sharing",
            "samples": 150,
            "seed": 7,
            "workers": 2,
        }
        request = BatchRequest.from_dict(payload)
        assert request.method == "bfs_sharing"
        assert request.samples == 150
        assert request.seed == 7
        assert request.workers == 2
        assert request.queries == (
            QuerySpec(0, 5, 200, None),
            QuerySpec(3, 9, None, None),
        )
        # to_dict -> from_dict is the identity on requests.
        assert BatchRequest.from_dict(request.to_dict()) == request

    def test_batch_requires_queries(self):
        with pytest.raises(InvalidQueryError, match="'queries'"):
            BatchRequest.from_dict({"method": "mc"})

    def test_batch_rejects_non_boolean_sequential(self):
        with pytest.raises(InvalidQueryError, match="sequential"):
            BatchRequest.from_dict({"queries": [[0, 1]], "sequential": 1})

    def test_batch_rejects_boolean_integers(self):
        # JSON true must not silently coerce to samples=1.
        with pytest.raises(InvalidQueryError, match="samples"):
            BatchRequest.from_dict({"queries": [[0, 1]], "samples": True})

    def test_warm_requires_queries(self):
        with pytest.raises(InvalidQueryError, match="'queries'"):
            WarmRequest.from_dict({})

    def test_recommend_defaults_and_type_check(self):
        assert RecommendRequest.from_dict({}) == RecommendRequest()
        with pytest.raises(InvalidQueryError, match="memory_limited"):
            RecommendRequest.from_dict({"memory_limited": "yes"})
