"""The CLI is a pure adapter over `ReliabilityService` — pinned here.

Two guarantees:

* **Behavioural**: for the same inputs, ``repro batch`` / ``repro
  estimate`` print exactly what the facade returns — byte-identical
  JSON modulo the wall-clock ``seconds`` field.
* **Structural**: ``cli.py`` performs no estimator/engine/cache
  construction of its own; every command routes through the facade.
  A source scan enforces it so a future command cannot quietly regress
  the single-surface design.
"""

import inspect
import json

import pytest

import repro.cli as cli_module
from repro.api import (
    BatchRequest,
    EstimateRequest,
    QuerySpec,
    ReliabilityService,
)
from repro.cli import main


def _strip_volatile(report):
    """Drop wall-clock fields that legitimately differ between runs."""
    report = json.loads(json.dumps(report))  # deep copy
    report.get("engine", {}).pop("seconds", None)
    return report


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text("0 5 200\n3 9 150\n0 7 100 2\n", encoding="utf-8")
    return str(path)


class TestCliFacadeParity:
    WORKLOAD = (
        QuerySpec(0, 5, 200),
        QuerySpec(3, 9, 150),
        QuerySpec(0, 7, 100, 2),
    )

    def _cli_report(self, capsys, query_file, *extra):
        assert main(
            ["batch", "--queries", query_file, "--dataset", "lastfm",
             "--scale", "tiny", "--seed", "3", *extra]
        ) == 0
        return json.loads(capsys.readouterr().out)

    def _facade_report(self, request, cache_dir=None):
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=3, cache_dir=cache_dir
        ) as service:
            return service.estimate_batch(request).to_dict()

    def test_batch_mc_identical_json(self, capsys, query_file):
        cli = self._cli_report(capsys, query_file)
        facade = self._facade_report(BatchRequest(queries=self.WORKLOAD))
        assert _strip_volatile(cli) == _strip_volatile(facade)

    def test_batch_bfs_sharing_identical_json(self, capsys, query_file):
        cli = self._cli_report(capsys, query_file, "--method", "bfs_sharing")
        facade = self._facade_report(
            BatchRequest(queries=self.WORKLOAD, method="bfs_sharing")
        )
        assert _strip_volatile(cli) == _strip_volatile(facade)

    def test_batch_prob_tree_identical_json(self, capsys, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 5 200\n3 9 150\n", encoding="utf-8")
        cli = self._cli_report(capsys, str(path), "--method", "prob_tree")
        facade = self._facade_report(
            BatchRequest(
                queries=(QuerySpec(0, 5, 200), QuerySpec(3, 9, 150)),
                method="prob_tree",
            )
        )
        assert _strip_volatile(cli) == _strip_volatile(facade)

    def test_batch_fallback_identical_json(self, capsys, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 5 100\n", encoding="utf-8")
        cli = self._cli_report(capsys, str(path), "--method", "rhh")
        facade = self._facade_report(
            BatchRequest(queries=(QuerySpec(0, 5, 100),), method="rhh")
        )
        assert _strip_volatile(cli) == _strip_volatile(facade)

    def test_batch_cached_identical_json(self, capsys, query_file, tmp_path):
        cache_a = str(tmp_path / "a")
        cache_b = str(tmp_path / "b")
        request = BatchRequest(queries=self.WORKLOAD)
        # Cold pass each (separate sidecars), then compare the
        # deterministic warm passes.
        self._cli_report(capsys, query_file, "--cache-dir", cache_a)
        self._facade_report(request, cache_dir=cache_b)
        cli = self._cli_report(capsys, query_file, "--cache-dir", cache_a)
        facade = self._facade_report(request, cache_dir=cache_b)
        assert _strip_volatile(cli) == _strip_volatile(facade)
        assert cli["engine"]["worlds_sampled"] == 0

    def test_estimate_prints_the_facade_value(self, capsys):
        assert main(
            ["estimate", "--dataset", "lastfm", "--scale", "tiny",
             "--source", "0", "--target", "5", "--samples", "200",
             "--seed", "3"]
        ) == 0
        printed = capsys.readouterr().out
        with ReliabilityService.from_dataset(
            "lastfm", "tiny", seed=3
        ) as service:
            response = service.estimate(
                EstimateRequest(source=0, target=5, samples=200)
            )
        assert f"{response.estimate:.6f}" in printed


class TestCliPurity:
    """`cli.py` may parse, route, and print — never construct."""

    FORBIDDEN = (
        # estimator construction / registry lookups beyond key metadata
        "create_estimator",
        "estimator_class",
        "BFSSharingEstimator",
        "MonteCarloEstimator",
        "ProbTreeEstimator",
        # engine / cache construction
        "BatchEngine",
        "estimate_workload",
        "ResultCache",
        "open_result_cache",
        "PersistentResultCache",
        # query/bounds/recommend internals the facade owns
        "top_k_reliable_targets",
        "reliability_bounds",
        "recommend_estimator",
        "run_study(",
        "run_convergence",
        "stable_substream",
    )

    def test_no_direct_construction_in_cli_source(self):
        source = inspect.getsource(cli_module)
        offenders = [name for name in self.FORBIDDEN if name in source]
        assert not offenders, (
            f"cli.py must route through ReliabilityService; found direct "
            f"use of: {', '.join(offenders)}"
        )

    def test_cli_does_not_import_engine_or_estimators(self):
        source = inspect.getsource(cli_module)
        assert "from repro.engine" not in source
        assert "from repro.core.estimators" not in source

    def test_every_command_is_registered(self):
        import argparse

        parser = cli_module._build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert set(cli_module._COMMANDS) == set(subparsers.choices)
