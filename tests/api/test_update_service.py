"""Tests for ``ReliabilityService.update`` and the re-warm plumbing."""

import pytest

from repro.api import (
    BatchRequest,
    InvalidQueryError,
    ReliabilityService,
    UpdateRequest,
    coerce_query_specs,
)
from repro.core.graph import UncertainGraph
from repro.engine.batch import BatchEngine
from repro.engine.cache import graph_fingerprint

SEED = 11

EDGES = [
    (0, 1, 0.8), (1, 2, 0.6), (0, 2, 0.3), (2, 3, 0.7),
    (1, 3, 0.4), (3, 4, 0.9), (2, 4, 0.5),
]

QUERIES = [[0, 3, 300], [1, 4, 300], [0, 4, 300]]


def make_service(**options):
    return ReliabilityService(
        UncertainGraph(5, EDGES), seed=SEED, **options
    )


def batch(service, queries=None, **overrides):
    return service.estimate_batch(
        BatchRequest(
            queries=coerce_query_specs(queries or QUERIES), **overrides
        )
    )


class TestUpdateRoundTrip:
    def test_version_transition_and_counters(self):
        with make_service() as service:
            before = graph_fingerprint(service.graph)
            response = service.update(
                UpdateRequest(set_edges=((0, 1, 0.5),))
            )
            assert response.previous_fingerprint == before
            assert response.fingerprint != before
            assert response.fingerprint == graph_fingerprint(service.graph)
            assert response.version == 1
            assert response.edges_set == 1
            assert not response.structural
            assert service.stats()["requests"]["update"] == 1
            assert service.stats()["graph"]["version"] == 1

    def test_invalid_update_is_a_structured_400(self):
        with make_service() as service:
            with pytest.raises(InvalidQueryError):
                service.update(UpdateRequest(remove_edges=((4, 0),)))
            # A rejected update publishes nothing.
            assert service.graph.version == 0

    def test_stale_cache_keys_miss_and_new_version_matches_oracle(self):
        with make_service() as service:
            first = batch(service)
            assert first.engine.cache_misses == len(QUERIES)
            # Same request again: fully served from cache.
            again = batch(service)
            assert again.engine.cache_hits == len(QUERIES)
            assert again.engine.worlds_sampled == 0

            service.update(UpdateRequest(set_edges=((1, 2, 0.95),)))

            # The fingerprint changed, so every key misses...
            after = batch(service)
            assert after.engine.cache_hits == 0
            assert after.engine.cache_misses == len(QUERIES)
            assert after.engine.fingerprint != first.engine.fingerprint
            # ...and the answers are bit-identical to a fresh sequential
            # oracle over the mutated graph.
            oracle = BatchEngine(service.graph, seed=SEED).run_sequential(
                [(0, 3, 300, None), (1, 4, 300, None), (0, 4, 300, None)]
            )
            assert after.estimates == [float(e) for e in oracle.estimates]

    def test_untouched_version_entries_survive_an_update(self):
        with make_service() as service:
            batch(service)
            hits_before = service.stats()["cache"]["size"]
            service.update(UpdateRequest(set_edges=((0, 1, 0.55),)))
            # Nothing was purged: the predecessor's entries are still
            # resident (they simply stop matching new-version keys).
            assert service.stats()["cache"]["size"] == hits_before


class TestEstimatorMaintenance:
    def test_modes_reported_per_estimator(self):
        with make_service() as service:
            service.estimator("mc")
            service.estimator("prob_tree")
            service.estimator("bfs_sharing")
            response = service.update(
                UpdateRequest(set_edges=((0, 1, 0.5),))
            )
            assert response.estimators["prob_tree"] == "incremental"
            assert response.estimators["bfs_sharing"] == "dropped"
            assert response.estimators["mc"] in ("repointed", "rebuilt")

    def test_structural_update_rebuilds_prob_tree(self):
        with make_service() as service:
            service.estimator("prob_tree")
            response = service.update(UpdateRequest(remove_edges=((2, 4),)))
            assert response.structural
            assert response.estimators["prob_tree"] == "rebuilt"

    def test_incremental_prob_tree_matches_fresh_rebuild(self):
        # The estimator-index tentpole invariant: re-lifting only the
        # bags covering touched edges must be *bit-identical* to
        # decomposing the mutated graph from scratch.
        with make_service() as service:
            incremental = service.estimator("prob_tree")
            service.update(
                UpdateRequest(set_edges=((1, 2, 0.95), (3, 4, 0.15)))
            )
            fresh = service.create_estimator("prob_tree")
            fresh.ensure_prepared()
            queries = [(s, t, 200, None) for s in range(4) for t in range(5) if s != t]
            a = incremental.estimate_batch(queries, seed=SEED)
            b = fresh.estimate_batch(queries, seed=SEED)
            assert [float(x) for x in a] == [float(x) for x in b]

    def test_every_estimator_answers_on_the_new_version(self):
        # Whatever survival mode each method picked, its post-update
        # batch answers (the seed-keyed deterministic path) must match a
        # same-method estimator built fresh on the successor graph.
        methods = ("mc", "rhh", "rss", "lp", "prob_tree", "bfs_sharing")
        queries = [(0, 4, 300, None), (1, 3, 300, None)]
        with make_service() as service:
            for method in methods:
                service.estimator(method)
            service.update(UpdateRequest(set_edges=((0, 2, 0.85),)))
            for method in methods:
                served = service.estimator(method)
                fresh = service.create_estimator(method)
                a = served.estimate_batch(queries, seed=SEED)
                b = fresh.estimate_batch(queries, seed=SEED)
                assert [float(x) for x in a] == [float(x) for x in b], method


class TestPoolLifecycle:
    def test_update_retires_the_fingerprint_pinned_pool(self):
        with make_service(workers=2) as service:
            batch(service, workers=2)
            pool = service._pool
            assert pool is not None
            assert pool.fingerprint == graph_fingerprint(service.graph)
            response = service.update(
                UpdateRequest(set_edges=((0, 1, 0.5),))
            )
            assert response.pool == "respawned"
            assert pool.closed
            assert service._pool is None
            # The next multi-worker run respawns against the successor.
            batch(service, workers=2)
            assert service._pool is not None
            assert service._pool.fingerprint == graph_fingerprint(
                service.graph
            )

    def test_update_without_a_pool_reports_none(self):
        with make_service() as service:
            response = service.update(
                UpdateRequest(set_edges=((0, 1, 0.5),))
            )
            assert response.pool == "none"


class TestQueryLogAndRewarm:
    def test_top_queries_rank_by_count(self):
        with make_service() as service:
            batch(service, [[0, 3, 300]])
            batch(service, [[0, 3, 300]])
            batch(service, [[1, 4, 300]])
            top = service.top_queries(2)
            assert top[0]["source"] == 0 and top[0]["target"] == 3
            assert top[0]["count"] == 2
            assert top[1]["count"] == 1

    def test_rewarm_repopulates_the_new_version(self):
        with make_service() as service:
            batch(service, [[0, 3, 300]])
            service.update(UpdateRequest(set_edges=((0, 1, 0.5),)))
            summary = service.rewarm(1)
            assert summary == {"queries_rewarmed": 1, "warm_passes": 1}
            # The hottest key is warm again: replaying it samples nothing.
            after = batch(service, [[0, 3, 300]])
            assert after.engine.worlds_sampled == 0
            assert after.engine.cache_hits == 1
            assert service.stats()["rewarm"] == {"runs": 1, "queries": 1}

    def test_rewarm_groups_by_seed(self):
        with make_service() as service:
            batch(service, [[0, 3, 300]])
            batch(service, [[1, 4, 300]], seed=99)
            summary = service.rewarm(2)
            assert summary["warm_passes"] == 2
            # Both keys replay against their own seed: repeats hit.
            assert batch(service, [[0, 3, 300]]).engine.worlds_sampled == 0
            assert (
                batch(service, [[1, 4, 300]], seed=99).engine.worlds_sampled
                == 0
            )

    def test_rewarm_with_an_empty_log_is_a_no_op(self):
        with make_service() as service:
            assert service.rewarm() == {
                "queries_rewarmed": 0, "warm_passes": 0,
            }
