"""Tests for the synthetic topology generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    collaboration_counts,
    heterogeneous_hub_graph,
    powerlaw_cluster,
    preferential_attachment,
)


def undirected_degrees(edges, node_count):
    degrees = np.zeros(node_count, dtype=np.int64)
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return degrees


class TestPreferentialAttachment:
    def test_edge_count(self):
        n, attach = 200, 2
        edges = preferential_attachment(n, attach, rng=0)
        seed_edges = attach * (attach + 1) // 2
        assert len(edges) == seed_edges + (n - attach - 1) * attach

    def test_connected(self):
        edges = preferential_attachment(100, 2, rng=1)
        # Union-find connectivity check.
        parent = list(range(100))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in edges:
            parent[find(u)] = find(v)
        assert len({find(x) for x in range(100)}) == 1

    def test_power_law_tail(self):
        edges = preferential_attachment(2_000, 2, rng=2)
        degrees = undirected_degrees(edges, 2_000)
        # Hubs exist: the max degree dwarfs the mean (heavy tail).
        assert degrees.max() > 8 * degrees.mean()

    def test_no_self_loops_or_duplicate_attach(self):
        edges = preferential_attachment(300, 3, rng=3)
        assert all(u != v for u, v in edges)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            preferential_attachment(2, 2)

    def test_deterministic(self):
        assert preferential_attachment(50, 2, rng=9) == preferential_attachment(
            50, 2, rng=9
        )


class TestPowerlawCluster:
    def test_no_duplicate_edges(self):
        edges = powerlaw_cluster(300, 2, 0.5, rng=0)
        normalised = {tuple(sorted(edge)) for edge in edges}
        assert len(normalised) == len(edges)

    def test_no_self_loops(self):
        edges = powerlaw_cluster(300, 2, 0.5, rng=1)
        assert all(u != v for u, v in edges)

    def test_triadic_closure_raises_clustering(self):
        # Triangle count with closure >> without.
        def triangles(edges, n):
            adjacency = [set() for _ in range(n)]
            for u, v in edges:
                adjacency[u].add(v)
                adjacency[v].add(u)
            count = 0
            for u, v in edges:
                count += len(adjacency[u] & adjacency[v])
            return count

        n = 800
        clustered = triangles(powerlaw_cluster(n, 3, 0.9, rng=2), n)
        plain = triangles(powerlaw_cluster(n, 3, 0.0, rng=2), n)
        assert clustered > 1.5 * plain

    def test_invalid_triangle_probability(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(10, 2, 1.5)


class TestHeterogeneousHubGraph:
    def test_directed_edges_distinct(self):
        edges = heterogeneous_hub_graph(300, 4.0, rng=0)
        assert len(set(edges)) == len(edges)

    def test_average_out_degree(self):
        n = 500
        edges = heterogeneous_hub_graph(n, 5.0, rng=1)
        assert len(edges) >= n * 5.0
        assert len(edges) <= n * 5.0 + 2 * n  # straggler connections bounded

    def test_every_node_touched(self):
        n = 300
        edges = heterogeneous_hub_graph(n, 3.0, rng=2)
        touched = np.zeros(n, dtype=bool)
        for u, v in edges:
            touched[u] = True
            touched[v] = True
        assert touched.all()

    def test_hubs_dominate_degree(self):
        n = 1_000
        edges = heterogeneous_hub_graph(n, 5.0, hub_boost=50.0, rng=3)
        degrees = undirected_degrees(edges, n)
        assert degrees.max() > 10 * degrees.mean()


class TestCollaborationCounts:
    def test_support_is_positive(self):
        counts = collaboration_counts(10_000, 2.5, rng=0)
        assert counts.min() >= 1

    def test_mean(self):
        counts = collaboration_counts(100_000, 2.5, rng=1)
        assert counts.mean() == pytest.approx(2.5, rel=0.05)

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            collaboration_counts(10, 0.5)
