"""Tests for query-workload generation (paper §3.1.3, §3.9)."""

import pytest

from repro.core.graph import UncertainGraph
from repro.datasets.queries import (
    QueryWorkload,
    WorkloadError,
    distance_sweep_workloads,
    generate_workload,
)
from repro.datasets.suite import load_dataset


@pytest.fixture(scope="module")
def tiny_graph():
    return load_dataset("lastfm", "tiny", seed=0).graph


class TestGenerateWorkload:
    def test_pair_count(self, tiny_graph):
        workload = generate_workload(tiny_graph, pair_count=12, seed=0)
        assert len(workload) == 12

    def test_pairs_at_exact_distance(self, tiny_graph):
        workload = generate_workload(
            tiny_graph, pair_count=15, hop_distance=2, seed=1
        )
        for source, target in workload:
            distances = tiny_graph.bfs_distances(source, max_hops=2)
            assert distances[target] == 2

    def test_sources_distinct(self, tiny_graph):
        workload = generate_workload(tiny_graph, pair_count=15, seed=2)
        sources = [source for source, _ in workload]
        assert len(set(sources)) == len(sources)

    def test_deterministic(self, tiny_graph):
        a = generate_workload(tiny_graph, pair_count=8, seed=5)
        b = generate_workload(tiny_graph, pair_count=8, seed=5)
        assert a.pairs == b.pairs

    def test_different_seeds_differ(self, tiny_graph):
        a = generate_workload(tiny_graph, pair_count=8, seed=5)
        b = generate_workload(tiny_graph, pair_count=8, seed=6)
        assert a.pairs != b.pairs

    def test_impossible_distance_raises(self):
        graph = UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.5)])
        with pytest.raises(WorkloadError):
            generate_workload(graph, pair_count=2, hop_distance=9, seed=0)

    def test_invalid_parameters(self, tiny_graph):
        with pytest.raises(ValueError):
            generate_workload(tiny_graph, pair_count=0)
        with pytest.raises(ValueError):
            generate_workload(tiny_graph, pair_count=5, hop_distance=0)

    def test_save_load_roundtrip(self, tiny_graph, tmp_path):
        workload = generate_workload(tiny_graph, pair_count=6, seed=3)
        path = tmp_path / "workload.npz"
        workload.save(path)
        loaded = QueryWorkload.load(path)
        assert loaded.pairs == workload.pairs
        assert loaded.hop_distance == workload.hop_distance


class TestDistanceSweep:
    def test_one_workload_per_distance(self):
        graph = load_dataset("biomine", "tiny", seed=0).graph
        workloads = distance_sweep_workloads(
            graph, pair_count=5, hop_distances=(2, 3), seed=0
        )
        assert set(workloads) == {2, 3}
        for distance, workload in workloads.items():
            assert workload.hop_distance == distance
            for source, target in workload:
                assert graph.bfs_distances(source)[target] == distance
