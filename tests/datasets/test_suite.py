"""Tests for the six-dataset suite."""

import numpy as np
import pytest

from repro.datasets.suite import (
    DATASET_KEYS,
    DATASETS,
    SCALES,
    dataset_table,
    load_dataset,
)


class TestRegistry:
    def test_six_datasets_in_paper_order(self):
        assert DATASET_KEYS == [
            "lastfm",
            "nethept",
            "as_topology",
            "dblp02",
            "dblp005",
            "biomine",
        ]
        assert set(DATASETS) == set(DATASET_KEYS)

    def test_scales_defined_for_all(self):
        for spec in DATASETS.values():
            assert set(spec.nodes_by_scale) == set(SCALES)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("lastfm", scale="galactic")


class TestGeneratedGraphs:
    @pytest.mark.parametrize("key", DATASET_KEYS)
    def test_tiny_scale_builds(self, key):
        dataset = load_dataset(key, "tiny", seed=0)
        spec = DATASETS[key]
        assert dataset.graph.node_count == spec.nodes_by_scale["tiny"]
        assert dataset.graph.edge_count > 0

    @pytest.mark.parametrize("key", DATASET_KEYS)
    def test_probabilities_valid(self, key):
        graph = load_dataset(key, "tiny", seed=0).graph
        assert ((graph.probs > 0) & (graph.probs <= 1)).all()

    def test_deterministic_and_cached(self):
        a = load_dataset("lastfm", "tiny", seed=0)
        b = load_dataset("lastfm", "tiny", seed=0)
        assert a is b  # cache hit

    def test_different_seeds_differ(self):
        a = load_dataset("lastfm", "tiny", seed=0).graph
        b = load_dataset("lastfm", "tiny", seed=1).graph
        assert a != b

    def test_nethept_probabilities_from_choices(self):
        graph = load_dataset("nethept", "tiny", seed=0).graph
        assert set(np.unique(graph.probs)) <= {0.1, 0.01, 0.001}

    def test_lastfm_is_bidirected(self):
        graph = load_dataset("lastfm", "tiny", seed=0).graph
        for u, v, _ in list(graph.iter_edges())[:50]:
            assert graph.edge_probability(v, u) is not None

    def test_dblp_variants_share_topology(self):
        g02 = load_dataset("dblp02", "tiny", seed=0).graph
        g005 = load_dataset("dblp005", "tiny", seed=0).graph
        assert g02.node_count == g005.node_count
        assert g02.edge_count == g005.edge_count
        np.testing.assert_array_equal(g02.targets, g005.targets)
        # Same counts, different mu: 0.05 probabilities strictly smaller.
        assert (g005.probs < g02.probs).all()

    def test_biomine_is_directed(self):
        graph = load_dataset("biomine", "tiny", seed=0).graph
        asymmetric = sum(
            1
            for u, v, _ in list(graph.iter_edges())[:100]
            if graph.edge_probability(v, u) is None
        )
        assert asymmetric > 0


class TestDatasetTable:
    def test_rows_cover_all_datasets(self):
        rows = dataset_table("tiny", seed=0)
        assert [row["dataset"] for row in rows] == [
            "LastFM",
            "NetHEPT",
            "AS Topology",
            "DBLP 0.2",
            "DBLP 0.05",
            "BioMine",
        ]

    def test_rows_carry_paper_reference(self):
        rows = dataset_table("tiny", seed=0)
        assert rows[0]["paper_nodes"] == "6899"
        assert "0.29" in rows[0]["paper_probabilities"]
