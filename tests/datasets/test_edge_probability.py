"""Tests for the per-dataset edge-probability models (paper §3.1.2)."""

import numpy as np
import pytest

from repro.datasets.edge_probability import (
    NETHEPT_CHOICES,
    biomine_composite,
    exponential_cdf,
    inverse_out_degree,
    snapshot_ratio,
    uniform_choice,
)


class TestInverseOutDegree:
    def test_values(self):
        sources = np.array([0, 0, 0, 1])
        probs = inverse_out_degree(sources, 2)
        np.testing.assert_allclose(probs, [1 / 3, 1 / 3, 1 / 3, 1.0])

    def test_degree_one_gives_certain_edge(self):
        probs = inverse_out_degree(np.array([5]), 6)
        assert probs[0] == 1.0

    def test_all_probabilities_valid(self):
        rng = np.random.default_rng(0)
        sources = rng.integers(0, 50, size=500)
        probs = inverse_out_degree(sources, 50)
        assert ((probs > 0) & (probs <= 1)).all()


class TestUniformChoice:
    def test_values_from_choices(self):
        probs = uniform_choice(1_000, rng=0)
        assert set(np.unique(probs)) <= set(NETHEPT_CHOICES)

    def test_roughly_uniform(self):
        probs = uniform_choice(30_000, rng=1)
        for choice in NETHEPT_CHOICES:
            fraction = (probs == choice).mean()
            assert fraction == pytest.approx(1 / 3, abs=0.02)

    def test_custom_choices(self):
        probs = uniform_choice(100, choices=(0.5,), rng=0)
        assert (probs == 0.5).all()


class TestSnapshotRatio:
    def test_range(self):
        probs = snapshot_ratio(10_000, rng=0)
        assert probs.min() >= 1 / 120
        assert probs.max() <= 1.0

    def test_moments_match_paper(self):
        probs = snapshot_ratio(100_000, rng=1)
        assert probs.mean() == pytest.approx(0.23, abs=0.03)
        assert probs.std() == pytest.approx(0.20, abs=0.03)

    def test_granularity(self):
        # Ratios are multiples of 1/snapshots.
        snapshots = 50
        probs = snapshot_ratio(1_000, snapshots=snapshots, rng=2)
        scaled = probs * snapshots
        np.testing.assert_allclose(scaled, np.round(scaled))


class TestExponentialCdf:
    def test_paper_anchor_points(self):
        # mu=5: one collaboration ~ 0.18, two ~ 0.33, three ~ 0.45 (Table 2).
        probs = exponential_cdf(np.array([1, 2, 3]), mu=5.0)
        np.testing.assert_allclose(probs, [0.181, 0.330, 0.451], atol=0.002)

    def test_mu_20_gives_smaller_probabilities(self):
        counts = np.array([1, 2, 3])
        low = exponential_cdf(counts, mu=20.0)
        high = exponential_cdf(counts, mu=5.0)
        assert (low < high).all()

    def test_monotone_in_counts(self):
        probs = exponential_cdf(np.arange(1, 50), mu=5.0)
        assert (np.diff(probs) > 0).all()

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            exponential_cdf(np.array([1]), mu=0.0)


class TestBiomineComposite:
    def test_range(self):
        degrees = np.random.default_rng(0).integers(2, 100, size=5_000)
        probs = biomine_composite(5_000, degrees, rng=1)
        assert ((probs > 0) & (probs <= 1)).all()

    def test_high_degree_edges_less_probable(self):
        # Informativeness penalises hub edges on average.
        low = biomine_composite(20_000, np.full(20_000, 6), rng=2)
        high = biomine_composite(20_000, np.full(20_000, 500), rng=2)
        assert high.mean() < low.mean()

    def test_mean_in_paper_ballpark(self):
        degrees = np.random.default_rng(3).integers(5, 60, size=50_000)
        probs = biomine_composite(50_000, degrees, rng=4)
        assert probs.mean() == pytest.approx(0.27, abs=0.06)
