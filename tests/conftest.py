"""Shared fixtures and hypothesis strategies for the test suite."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.graph import UncertainGraph


@pytest.fixture
def diamond_graph() -> UncertainGraph:
    """0 -> {1, 2} -> 3: two disjoint 2-hop paths.

    Exact reliability 0->3: 1 - (1 - 0.5*0.5)(1 - 0.5*0.5) = 0.4375.
    """
    edges = [
        (0, 1, 0.5),
        (0, 2, 0.5),
        (1, 3, 0.5),
        (2, 3, 0.5),
    ]
    return UncertainGraph(4, edges)


@pytest.fixture
def chain_graph() -> UncertainGraph:
    """0 -> 1 -> 2 -> 3, each edge 0.8; exact reliability 0->3 = 0.512."""
    return UncertainGraph(4, [(0, 1, 0.8), (1, 2, 0.8), (2, 3, 0.8)])


@pytest.fixture
def toy_paper_graph() -> UncertainGraph:
    """The 3-node chain of the paper's Example 1 (Fig. 4)."""
    return UncertainGraph(3, [(0, 1, 0.5), (1, 2, 0.5)])


def random_graph(
    seed: int,
    node_count: int = 8,
    edge_probability: float = 0.3,
    low: float = 0.1,
    high: float = 0.9,
) -> UncertainGraph:
    """Deterministic small random digraph for cross-checking estimators."""
    rng = np.random.default_rng(seed)
    edges = [
        (u, v, float(rng.uniform(low, high)))
        for u in range(node_count)
        for v in range(node_count)
        if u != v and rng.random() < edge_probability
    ]
    return UncertainGraph(node_count, edges)


# Hypothesis strategy: a small random uncertain graph as raw parts, built
# inside the test so shrinking stays effective.
small_graph_parts = st.integers(min_value=2, max_value=7).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            max_size=12,
        ),
    )
)
