"""Tests for statistics helpers (variance, dispersion, bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    RunningMoments,
    binomial_variance,
    chernoff_sample_bound,
    dispersion_index,
    mean_and_variance,
    pairwise_deviation,
)


class TestRunningMoments:
    def test_empty_has_zero_variance(self):
        moments = RunningMoments()
        assert moments.count == 0
        assert moments.variance == 0.0

    def test_single_value(self):
        moments = RunningMoments()
        moments.add(4.2)
        assert moments.mean == pytest.approx(4.2)
        assert moments.variance == 0.0

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, values):
        moments = RunningMoments()
        moments.extend(values)
        array = np.asarray(values)
        assert moments.mean == pytest.approx(float(array.mean()), abs=1e-6, rel=1e-9)
        assert moments.variance == pytest.approx(
            float(array.var(ddof=1)), abs=1e-5, rel=1e-6
        )


class TestMeanAndVariance:
    def test_single_value(self):
        mean, variance = mean_and_variance([3.0])
        assert mean == 3.0
        assert variance == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_variance([])

    def test_known_values(self):
        mean, variance = mean_and_variance([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert variance == pytest.approx(1.0)


class TestDispersionIndex:
    def test_zero_mean_is_converged(self):
        assert dispersion_index(0.0, 0.0) == 0.0

    def test_ratio(self):
        assert dispersion_index(0.002, 0.4) == pytest.approx(0.005)


class TestBinomialVariance:
    def test_formula(self):
        assert binomial_variance(0.3, 100) == pytest.approx(0.3 * 0.7 / 100)

    def test_extremes_have_zero_variance(self):
        assert binomial_variance(0.0, 10) == 0.0
        assert binomial_variance(1.0, 10) == 0.0

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            binomial_variance(0.5, 0)


class TestChernoffBound:
    def test_monotone_in_reliability(self):
        # Rarer events need more samples.
        assert chernoff_sample_bound(0.01) > chernoff_sample_bound(0.5)

    def test_monotone_in_epsilon(self):
        assert chernoff_sample_bound(0.3, epsilon=0.05) > chernoff_sample_bound(
            0.3, epsilon=0.2
        )

    def test_paper_scale(self):
        # For moderate reliability the bound lands in the thousands —
        # consistent with the paper's "K in the order of thousands".
        bound = chernoff_sample_bound(0.3, epsilon=0.1, failure=0.05)
        assert 1_000 < bound < 10_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reliability": 0.0},
            {"reliability": 1.5},
            {"reliability": 0.5, "epsilon": 0.0},
            {"reliability": 0.5, "failure": 0.0},
            {"reliability": 0.5, "failure": 1.0},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            chernoff_sample_bound(**kwargs)


class TestPairwiseDeviation:
    def test_fewer_than_two_is_zero(self):
        assert pairwise_deviation([]) == 0.0
        assert pairwise_deviation([0.3]) == 0.0

    def test_identical_errors_give_zero(self):
        assert pairwise_deviation([0.2, 0.2, 0.2]) == 0.0

    def test_two_values(self):
        # Sum over ordered pairs |a-b| = 2 * 0.1; normalised by k(k-1) = 2.
        assert pairwise_deviation([0.1, 0.2]) == pytest.approx(0.1)

    def test_matches_paper_normalisation(self):
        # Six estimators: denominator 5 * 6 = 30 ordered pairs.
        errors = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06]
        expected = sum(
            abs(a - b) for a in errors for b in errors
        ) / 30.0
        assert pairwise_deviation(errors) == pytest.approx(expected)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_and_shift_invariant(self, values):
        base = pairwise_deviation(values)
        shifted = pairwise_deviation([v + 0.37 for v in values])
        assert base >= 0.0
        assert shifted == pytest.approx(base, abs=1e-9)
