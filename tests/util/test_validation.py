"""Tests for argument validation helpers."""

import pytest

from repro.util.validation import check_node, check_positive, check_probability


class TestCheckProbability:
    @pytest.mark.parametrize("value", [1e-9, 0.5, 1.0])
    def test_valid(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [0.0, -0.1, 1.0001, float("nan")])
    def test_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability(value)

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="edge_prob"):
            check_probability(2.0, name="edge_prob")


class TestCheckNode:
    def test_valid_bounds(self):
        assert check_node(0, 5) == 0
        assert check_node(4, 5) == 4

    @pytest.mark.parametrize("node", [-1, 5, 100])
    def test_out_of_range(self, node):
        with pytest.raises(ValueError):
            check_node(node, 5)


class TestCheckPositive:
    def test_valid(self):
        assert check_positive(3, "samples") == 3

    @pytest.mark.parametrize("value", [0, -1])
    def test_invalid(self, value):
        with pytest.raises(ValueError, match="samples"):
            check_positive(value, "samples")
