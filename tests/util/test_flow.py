"""Tests for the Edmonds-Karp max-flow / min-cut substrate."""

import numpy as np
import pytest

from repro.util.flow import max_flow


class TestMaxFlowValue:
    def test_single_edge(self):
        result = max_flow(2, [(0, 1, 3.5)], 0, 1)
        assert result.value == pytest.approx(3.5)

    def test_series_bottleneck(self):
        result = max_flow(3, [(0, 1, 5.0), (1, 2, 2.0)], 0, 2)
        assert result.value == pytest.approx(2.0)

    def test_parallel_paths_add(self):
        edges = [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]
        result = max_flow(4, edges, 0, 3)
        assert result.value == pytest.approx(3.0)

    def test_classic_diamond_with_cross_edge(self):
        edges = [
            (0, 1, 3.0),
            (0, 2, 2.0),
            (1, 2, 1.0),
            (1, 3, 2.0),
            (2, 3, 3.0),
        ]
        result = max_flow(4, edges, 0, 3)
        assert result.value == pytest.approx(5.0)

    def test_disconnected_is_zero(self):
        result = max_flow(3, [(0, 1, 1.0)], 0, 2)
        assert result.value == 0.0
        assert result.cut_edges == []

    def test_infinite_capacity_path(self):
        edges = [(0, 1, float("inf")), (1, 2, float("inf"))]
        result = max_flow(3, edges, 0, 2)
        assert result.value == float("inf")


class TestMinCut:
    def test_cut_separates(self):
        edges = [(0, 1, 5.0), (1, 2, 2.0), (2, 3, 9.0)]
        result = max_flow(4, edges, 0, 3)
        assert result.cut_edges == [1]  # the bottleneck edge
        assert result.source_side[0] and result.source_side[1]
        assert not result.source_side[3]

    def test_cut_capacity_equals_flow(self):
        rng = np.random.default_rng(0)
        edges = [
            (u, v, float(rng.uniform(0.5, 3.0)))
            for u in range(6)
            for v in range(6)
            if u != v and rng.random() < 0.4
        ]
        result = max_flow(6, edges, 0, 5)
        cut_capacity = sum(edges[i][2] for i in result.cut_edges)
        assert cut_capacity == pytest.approx(result.value, abs=1e-9)

    def test_cut_edges_cross_partition(self):
        rng = np.random.default_rng(1)
        edges = [
            (u, v, float(rng.uniform(0.5, 3.0)))
            for u in range(7)
            for v in range(7)
            if u != v and rng.random() < 0.35
        ]
        result = max_flow(7, edges, 0, 6)
        for index in result.cut_edges:
            u, v, _ = edges[index]
            assert result.source_side[u]
            assert not result.source_side[v]


class TestValidation:
    def test_same_source_sink_rejected(self):
        with pytest.raises(ValueError):
            max_flow(3, [], 1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            max_flow(3, [], 0, 5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_flow(2, [(0, 1, -1.0)], 0, 1)
