"""Tests for packed-bitset kernels (BFS Sharing substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import bitset


class TestPackedWords:
    @pytest.mark.parametrize(
        "bits,words", [(0, 0), (1, 1), (63, 1), (64, 1), (65, 2), (1500, 24)]
    )
    def test_values(self, bits, words):
        assert bitset.packed_words(bits) == words

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitset.packed_words(-1)


class TestFullRow:
    @pytest.mark.parametrize("bits", [1, 7, 64, 65, 100, 128, 250])
    def test_popcount_equals_bits(self, bits):
        assert bitset.popcount(bitset.full_row(bits)) == bits

    def test_trailing_bits_are_zero(self):
        row = bitset.full_row(70)
        assert not bitset.get_bit(row, 70 % 64 + 64)


class TestGetSetBit:
    def test_roundtrip(self):
        row = np.zeros(2, dtype=np.uint64)
        for index in (0, 1, 63, 64, 127):
            assert not bitset.get_bit(row, index)
            bitset.set_bit(row, index)
            assert bitset.get_bit(row, index)
        assert bitset.popcount(row) == 5


class TestSampleBitMatrix:
    def test_shape(self):
        probs = np.full(10, 0.5)
        matrix = bitset.sample_bit_matrix(probs, 130, np.random.default_rng(0))
        assert matrix.shape == (10, 3)

    def test_probability_zero_and_one_edges(self):
        probs = np.array([1.0, 1e-9])
        matrix = bitset.sample_bit_matrix(probs, 256, np.random.default_rng(0))
        counts = bitset.popcount_rows(matrix)
        assert counts[0] == 256  # always-present edge
        assert counts[1] == 0  # essentially never present

    def test_bit_frequencies_match_probabilities(self):
        probs = np.array([0.1, 0.5, 0.9])
        bits = 20_000
        matrix = bitset.sample_bit_matrix(probs, bits, np.random.default_rng(7))
        frequencies = bitset.popcount_rows(matrix) / bits
        np.testing.assert_allclose(frequencies, probs, atol=0.02)

    def test_trailing_bits_unset(self):
        probs = np.full(4, 1.0)
        bits = 70
        matrix = bitset.sample_bit_matrix(probs, bits, np.random.default_rng(0))
        assert (bitset.popcount_rows(matrix) == bits).all()


class TestPopcountRows:
    def test_matches_python_bit_count(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 2**63, size=(5, 4), dtype=np.uint64)
        expected = [
            sum(int(word).bit_count() for word in row) for row in matrix
        ]
        np.testing.assert_array_equal(bitset.popcount_rows(matrix), expected)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            bitset.popcount_rows(np.zeros(3, dtype=np.uint64))


class TestConcatenateRanges:
    def test_basic(self):
        starts = np.array([0, 5, 9])
        ends = np.array([3, 5, 12])
        np.testing.assert_array_equal(
            bitset.concatenate_ranges(starts, ends), [0, 1, 2, 9, 10, 11]
        )

    def test_all_empty(self):
        starts = np.array([4, 7])
        ends = np.array([4, 7])
        assert bitset.concatenate_ranges(starts, ends).size == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=20),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_concatenation(self, segments):
        starts = np.array([s for s, _ in segments], dtype=np.int64)
        ends = starts + np.array([l for _, l in segments], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, ends)]
        ) if (ends > starts).any() else np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(
            bitset.concatenate_ranges(starts, ends), expected
        )


class TestPackBoolMatrix:
    def test_roundtrip_via_get_bit(self):
        rng = np.random.default_rng(0)
        masks = rng.random((70, 5)) < 0.4  # spans a word boundary
        packed = bitset.pack_bool_matrix(masks)
        assert packed.shape == (5, bitset.packed_words(70))
        for bit in range(70):
            for row in range(5):
                assert bitset.get_bit(packed[row], bit) == masks[bit, row]

    def test_matches_sample_bit_matrix_layout(self):
        # Packing externally-drawn booleans must land in the same layout
        # sample_bit_matrix produces, so the fixpoint kernel can consume it.
        rng = np.random.default_rng(1)
        probs = np.array([0.3, 0.8])
        sampled = bitset.sample_bit_matrix(probs, 64, np.random.default_rng(2))
        draws = np.empty((64, 2), dtype=bool)
        replay = np.random.default_rng(2)
        for word_bits in [replay.random((2, 64)) < probs[:, None]]:
            draws[:] = word_bits.T
        packed = bitset.pack_bool_matrix(draws)
        assert np.array_equal(packed, sampled)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            bitset.pack_bool_matrix(np.zeros(4, dtype=bool))


class TestPrefixMask:
    def test_counts_only_prefix_bits(self):
        mask = bitset.prefix_mask(70, 2)
        assert bitset.popcount(mask) == 70

    def test_zero_bits(self):
        assert bitset.popcount(bitset.prefix_mask(0, 3)) == 0

    def test_saturates_at_word_width(self):
        mask = bitset.prefix_mask(500, 2)
        assert bitset.popcount(mask) == 128

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitset.prefix_mask(-1, 2)
