"""Tests for RNG plumbing: determinism, independence, distributions."""

import itertools
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.util.rng import (
    ensure_generator,
    geometric_skips,
    spawn_generators,
    stable_substream,
)


class TestEnsureGenerator:
    def test_none_gives_generator(self):
        assert isinstance(ensure_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_generator(123).random(5)
        b = ensure_generator(123).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        a = ensure_generator(sequence)
        assert isinstance(a, np.random.Generator)

    def test_different_seeds_differ(self):
        a = ensure_generator(1).random(5)
        b = ensure_generator(2).random(5)
        assert not np.array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 7)) == 7

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_and_deterministic(self):
        first = [g.random(3) for g in spawn_generators(5, 3)]
        second = [g.random(3) for g in spawn_generators(5, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_generators(parent, 2)
        assert len(children) == 2
        assert not np.array_equal(children[0].random(3), children[1].random(3))


class TestStableSubstream:
    def test_same_keys_same_stream(self):
        a = stable_substream(9, 1, 2, 3).random(4)
        b = stable_substream(9, 1, 2, 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = stable_substream(9, 1, 2, 3).random(4)
        b = stable_substream(9, 1, 2, 4).random(4)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = stable_substream(9, 1, 2).random(4)
        b = stable_substream(9, 2, 1).random(4)
        assert not np.array_equal(a, b)


class TestSubstreamDerivation:
    """The property the determinism lint (``repro lint``) assumes: any
    two distinct ``(seed, index)`` pairs derive distinct substreams, so
    per-request seeding never needs interpreter-global RNG state."""

    def test_distinct_seed_index_pairs_give_distinct_streams(self):
        pairs = list(itertools.product(range(4), range(8)))
        draws = {
            pair: tuple(stable_substream(pair[0], pair[1]).random(4))
            for pair in pairs
        }
        assert len(set(draws.values())) == len(pairs)

    def test_substream_does_not_collide_with_root(self):
        root = ensure_generator(11).random(4)
        derived = stable_substream(11, 0).random(4)
        assert not np.array_equal(root, derived)

    def test_nested_and_flat_keys_are_distinct_streams(self):
        flat = stable_substream(3, 12).random(4)
        nested = stable_substream(3, 1, 2).random(4)
        assert not np.array_equal(flat, nested)

    def test_derivation_is_entropy_based_not_hash_based(self):
        # numpy's spawn-key mechanism, not Python's salted hash():
        # the same (seed, keys) must name the same stream in every
        # process, or worker fan-out would not be bit-identical.
        sequence = np.random.SeedSequence(entropy=21, spawn_key=(5, 7))
        expected = np.random.default_rng(sequence).random(4)
        actual = stable_substream(21, 5, 7).random(4)
        np.testing.assert_array_equal(actual, expected)

    def test_stable_across_processes(self):
        # A fresh interpreter (fresh hash salt, fresh import order) must
        # derive bit-identical substreams — the cross-process half of
        # the serial == parallel == distributed contract.
        script = (
            "import json, sys\n"
            "from repro.util.rng import stable_substream\n"
            "draws = {\n"
            "    f'{seed}:{index}': stable_substream(seed, index).random(3).tolist()\n"
            "    for seed in (0, 7) for index in (0, 3)\n"
            "}\n"
            "json.dump(draws, sys.stdout)\n"
        )
        src_dir = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + [p for p in [env.get("PYTHONPATH")] if p]
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
            check=True,
        )
        remote = json.loads(result.stdout)
        for key, values in remote.items():
            seed, index = (int(part) for part in key.split(":"))
            np.testing.assert_array_equal(
                np.asarray(values), stable_substream(seed, index).random(3)
            )


class TestGeometricSkips:
    def test_probability_one_always_zero(self):
        skips = geometric_skips(np.random.default_rng(0), 1.0, 100)
        assert (skips == 0).all()

    def test_mean_matches_geometric(self):
        # E[skips] = (1 - p) / p
        p = 0.25
        skips = geometric_skips(np.random.default_rng(0), p, 200_000)
        assert abs(skips.mean() - (1 - p) / p) < 0.05

    def test_support_is_nonnegative(self):
        skips = geometric_skips(np.random.default_rng(1), 0.01, 10_000)
        assert (skips >= 0).all()

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_invalid_probability_rejected(self, bad):
        with pytest.raises(ValueError):
            geometric_skips(np.random.default_rng(0), bad, 10)
