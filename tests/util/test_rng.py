"""Tests for RNG plumbing: determinism, independence, distributions."""

import numpy as np
import pytest

from repro.util.rng import (
    ensure_generator,
    geometric_skips,
    spawn_generators,
    stable_substream,
)


class TestEnsureGenerator:
    def test_none_gives_generator(self):
        assert isinstance(ensure_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_generator(123).random(5)
        b = ensure_generator(123).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        a = ensure_generator(sequence)
        assert isinstance(a, np.random.Generator)

    def test_different_seeds_differ(self):
        a = ensure_generator(1).random(5)
        b = ensure_generator(2).random(5)
        assert not np.array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 7)) == 7

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_and_deterministic(self):
        first = [g.random(3) for g in spawn_generators(5, 3)]
        second = [g.random(3) for g in spawn_generators(5, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_generators(parent, 2)
        assert len(children) == 2
        assert not np.array_equal(children[0].random(3), children[1].random(3))


class TestStableSubstream:
    def test_same_keys_same_stream(self):
        a = stable_substream(9, 1, 2, 3).random(4)
        b = stable_substream(9, 1, 2, 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = stable_substream(9, 1, 2, 3).random(4)
        b = stable_substream(9, 1, 2, 4).random(4)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = stable_substream(9, 1, 2).random(4)
        b = stable_substream(9, 2, 1).random(4)
        assert not np.array_equal(a, b)


class TestGeometricSkips:
    def test_probability_one_always_zero(self):
        skips = geometric_skips(np.random.default_rng(0), 1.0, 100)
        assert (skips == 0).all()

    def test_mean_matches_geometric(self):
        # E[skips] = (1 - p) / p
        p = 0.25
        skips = geometric_skips(np.random.default_rng(0), p, 200_000)
        assert abs(skips.mean() - (1 - p) / p) < 0.05

    def test_support_is_nonnegative(self):
        skips = geometric_skips(np.random.default_rng(1), 0.01, 10_000)
        assert (skips >= 0).all()

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_invalid_probability_rejected(self, bad):
        with pytest.raises(ValueError):
            geometric_skips(np.random.default_rng(0), bad, 10)
