"""Tests for the shared-world batch engine.

The load-bearing properties (see the determinism contract in
:mod:`repro.engine.batch`): batch and sequential evaluation agree exactly
under a shared seed, results are independent of ``chunk_size``, the result
cache serves repeats without re-sampling, and degenerate workloads (empty,
duplicated) are handled.
"""

import numpy as np
import pytest

from repro.core.estimators.base import Estimator
from repro.core.estimators.monte_carlo import MonteCarloEstimator
from repro.engine.batch import BatchEngine, estimate_workload
from repro.engine.cache import ResultCache
from repro.experiments.convergence import evaluate_at_k
from repro.datasets.queries import QueryWorkload

from tests.conftest import random_graph

WORKLOAD = [
    (0, 3, 400),
    (0, 5, 400),
    (1, 4, 250),
    (2, 6, 300),
    (0, 3, 400),  # duplicate on purpose
    (5, 2, 150),
]


@pytest.fixture(scope="module")
def graph():
    return random_graph(seed=11, node_count=12, edge_probability=0.25)


class TestAgreement:
    def test_batch_equals_sequential_exactly(self, graph):
        engine = BatchEngine(graph, seed=5)
        batch = engine.run(WORKLOAD)
        sequential = BatchEngine(graph, seed=5).run_sequential(WORKLOAD)
        np.testing.assert_array_equal(batch.estimates, sequential.estimates)

    def test_estimates_are_probabilities(self, graph):
        estimates = BatchEngine(graph, seed=5).run(WORKLOAD).estimates
        assert ((estimates >= 0.0) & (estimates <= 1.0)).all()

    def test_batch_converges_to_exact_reliability(self, diamond_graph):
        result = BatchEngine(diamond_graph, seed=3).run([(0, 3, 4000)])
        assert result.estimates[0] == pytest.approx(0.4375, abs=0.03)

    def test_different_seeds_differ(self, graph):
        a = BatchEngine(graph, seed=1).run(WORKLOAD).estimates
        b = BatchEngine(graph, seed=2).run(WORKLOAD).estimates
        assert not np.array_equal(a, b)

    def test_world_sampling_is_amortised(self, graph):
        batch = BatchEngine(graph, seed=5).run(WORKLOAD)
        sequential = BatchEngine(graph, seed=5).run_sequential(WORKLOAD)
        assert batch.worlds_sampled == 400  # max K, once
        assert sequential.worlds_sampled == sum(
            k for _, _, k in set(WORKLOAD)
        )


class TestSweepModes:
    def test_bitset_and_per_world_agree_exactly(self, graph):
        bitset_run = BatchEngine(graph, seed=5, sweep="bitset").run(WORKLOAD)
        per_world = BatchEngine(graph, seed=5, sweep="per_world").run(WORKLOAD)
        np.testing.assert_array_equal(
            bitset_run.estimates, per_world.estimates
        )

    def test_unknown_sweep_mode_rejected(self, graph):
        with pytest.raises(ValueError):
            BatchEngine(graph, sweep="telepathy")

    @pytest.mark.parametrize("chunk_size", [1, 5, 64])
    def test_per_world_sweep_chunk_independent(self, graph, chunk_size):
        reference = BatchEngine(graph, seed=5, sweep="per_world").run(WORKLOAD)
        chunked = BatchEngine(
            graph, seed=5, sweep="per_world", chunk_size=chunk_size
        ).run(WORKLOAD)
        np.testing.assert_array_equal(
            reference.estimates, chunked.estimates
        )


class TestChunkedStreaming:
    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 1000])
    def test_results_independent_of_chunk_size(self, graph, chunk_size):
        reference = BatchEngine(graph, seed=5, chunk_size=17).run(WORKLOAD)
        chunked = BatchEngine(graph, seed=5, chunk_size=chunk_size).run(
            WORKLOAD
        )
        np.testing.assert_array_equal(
            reference.estimates, chunked.estimates
        )

    def test_chunk_size_must_be_positive(self, graph):
        with pytest.raises(Exception):
            BatchEngine(graph, chunk_size=0)


class TestCacheBehaviour:
    def test_first_run_misses_second_run_hits(self, graph):
        engine = BatchEngine(graph, seed=5)
        first = engine.run(WORKLOAD)
        unique = len(set(WORKLOAD))
        assert first.cache_hits == 0
        assert first.cache_misses == unique
        second = engine.run(WORKLOAD)
        assert second.cache_hits == unique
        assert second.cache_misses == 0
        assert second.worlds_sampled == 0  # served without sampling
        np.testing.assert_array_equal(first.estimates, second.estimates)

    def test_shared_cache_across_engines(self, graph):
        cache = ResultCache(capacity=64)
        BatchEngine(graph, seed=5, cache=cache).run(WORKLOAD)
        replay = BatchEngine(graph, seed=5, cache=cache).run(WORKLOAD)
        assert replay.worlds_sampled == 0

    def test_seed_partitions_the_cache(self, graph):
        cache = ResultCache(capacity=64)
        BatchEngine(graph, seed=5, cache=cache).run(WORKLOAD)
        other = BatchEngine(graph, seed=6, cache=cache).run(WORKLOAD)
        assert other.cache_hits == 0

    def test_partial_hit_only_samples_for_misses(self, graph):
        engine = BatchEngine(graph, seed=5)
        engine.run([(0, 3, 400)])
        mixed = engine.run([(0, 3, 400), (1, 4, 250)])
        assert mixed.cache_hits == 1
        assert mixed.cache_misses == 1
        assert mixed.worlds_sampled == 250  # only the missing query's K


class TestEdgeCases:
    def test_empty_workload(self, graph):
        result = BatchEngine(graph, seed=5).run([])
        assert len(result) == 0
        assert result.estimates.shape == (0,)
        assert result.worlds_sampled == 0

    def test_duplicates_evaluate_once_and_agree(self, graph):
        result = BatchEngine(graph, seed=5).run(WORKLOAD)
        assert result.estimates[0] == result.estimates[4]
        assert result.cache_misses == len(set(WORKLOAD))

    def test_source_equals_target_is_certain(self, graph):
        result = BatchEngine(graph, seed=5).run([(2, 2, 100)])
        assert result.estimates[0] == 1.0

    def test_invalid_query_raises(self, graph):
        with pytest.raises(Exception):
            BatchEngine(graph, seed=5).run([(0, 999, 10)])

    def test_seed_none_draws_fresh_stream(self, graph):
        a = BatchEngine(graph, seed=None)
        b = BatchEngine(graph, seed=None)
        assert a.seed != b.seed


class TestEstimatorIntegration:
    def test_mc_override_matches_engine(self, graph):
        mc = MonteCarloEstimator(graph, seed=0)
        via_estimator = mc.estimate_batch(WORKLOAD, seed=5)
        via_engine = BatchEngine(graph, seed=5).run(WORKLOAD).estimates
        np.testing.assert_array_equal(via_estimator, via_engine)

    def test_base_fallback_loops_per_query(self, graph):
        mc = MonteCarloEstimator(graph, seed=0)
        fallback = Estimator.estimate_batch(mc, WORKLOAD, seed=5)
        assert fallback.shape == (len(WORKLOAD),)
        assert ((fallback >= 0.0) & (fallback <= 1.0)).all()
        # duplicate queries share a substream, hence agree
        assert fallback[0] == fallback[4]

    def test_fallback_deterministic_under_seed(self, graph):
        mc = MonteCarloEstimator(graph, seed=0)
        a = Estimator.estimate_batch(mc, WORKLOAD, seed=5)
        b = Estimator.estimate_batch(mc, WORKLOAD, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_convenience_wrapper(self, graph):
        result = estimate_workload(graph, [(0, 3, 100)], seed=5)
        assert len(result) == 1


class TestRunnerWiring:
    def test_batched_grid_point_matches_protocol_shape(self, graph):
        workload = QueryWorkload(
            pairs=((0, 3), (1, 4), (2, 6)), hop_distance=2, seed=0
        )
        mc = MonteCarloEstimator(graph, seed=0)
        point = evaluate_at_k(
            mc, workload, samples=200, repeats=3, seed=0, use_batch=True
        )
        assert point.per_pair_means.shape == (3,)
        assert 0.0 <= point.average_reliability <= 1.0
        assert point.samples == 200

    def test_batched_grid_point_is_deterministic(self, graph):
        workload = QueryWorkload(
            pairs=((0, 3), (1, 4)), hop_distance=2, seed=0
        )
        mc = MonteCarloEstimator(graph, seed=0)
        a = evaluate_at_k(mc, workload, 150, repeats=2, seed=1, use_batch=True)
        b = evaluate_at_k(mc, workload, 150, repeats=2, seed=1, use_batch=True)
        np.testing.assert_array_equal(a.per_pair_means, b.per_pair_means)


class TestSeedFallback:
    def test_seedless_call_uses_constructor_seed(self, graph):
        # Two freshly built estimators with the same constructor seed must
        # agree when estimate_batch is called without an explicit seed.
        a = MonteCarloEstimator(graph, seed=7).estimate_batch(WORKLOAD)
        b = MonteCarloEstimator(graph, seed=7).estimate_batch(WORKLOAD)
        np.testing.assert_array_equal(a, b)

    def test_successive_seedless_calls_are_independent(self, graph):
        mc = MonteCarloEstimator(graph, seed=7)
        first = mc.estimate_batch(WORKLOAD)
        second = mc.estimate_batch(WORKLOAD)
        assert not np.array_equal(first, second)


class TestInstrumentation:
    def test_sequential_reports_zero_cache_traffic(self, graph):
        result = BatchEngine(graph, seed=5).run_sequential(WORKLOAD)
        assert result.cache_hits == 0
        assert result.cache_misses == 0

    def test_engine_memory_reflects_chunk_working_set(self, graph):
        small = BatchEngine(graph, seed=5, chunk_size=64).memory_bytes()
        large = BatchEngine(graph, seed=5, chunk_size=1024).memory_bytes()
        assert graph.memory_bytes() < small < large

    def test_mc_memory_reports_batch_path_after_batch(self, graph):
        mc = MonteCarloEstimator(graph, seed=0)
        lazy_bytes = mc.memory_bytes()
        mc.estimate_batch(WORKLOAD, seed=5)
        assert mc.memory_bytes() > lazy_bytes
        mc.estimate(0, 3, 50)  # per-query path resets the report
        assert mc.memory_bytes() == lazy_bytes


class TestCacheProvenance:
    """`BatchResult.from_cache`: per-query cached-vs-evaluated flags."""

    def test_cold_run_marks_nothing_cached(self):
        graph = random_graph(21)
        result = BatchEngine(graph, seed=3).run(WORKLOAD)
        assert result.from_cache is not None
        assert not result.from_cache.any()
        assert [row["cached"] for row in result.as_rows()] == [False] * 6

    def test_warm_run_marks_everything_cached(self):
        graph = random_graph(21)
        engine = BatchEngine(graph, seed=3)
        engine.run(WORKLOAD)
        warm = engine.run(WORKLOAD)
        assert warm.from_cache.all()
        assert warm.worlds_sampled == 0
        assert [row["cached"] for row in warm.as_rows()] == [True] * 6

    def test_partial_overlap_is_flagged_per_query(self):
        graph = random_graph(21)
        engine = BatchEngine(graph, seed=3)
        engine.run([(0, 3, 400)])
        mixed = engine.run([(0, 3, 400), (1, 4, 250)])
        np.testing.assert_array_equal(mixed.from_cache, [True, False])

    def test_duplicates_share_their_provenance(self):
        graph = random_graph(21)
        result = BatchEngine(graph, seed=3).run(
            [(0, 3, 400), (0, 3, 400)]
        )
        assert list(result.from_cache) == [False, False]

    def test_sequential_oracle_reports_uncached(self):
        graph = random_graph(21)
        engine = BatchEngine(graph, seed=3)
        engine.run(WORKLOAD)  # populate the cache...
        sequential = engine.run_sequential(WORKLOAD)
        assert not sequential.from_cache.any()  # ...which the oracle bypasses
