"""Lifecycle and conformance tests for the shared worker pool.

The pool is an *accelerator*, never a correctness dependency: every test
here pins either a lifecycle transition (lazy start, respawn after a
worker crash, idempotent close, graph-update rejection) or the bit-for-bit
agreement between pooled and in-process evaluation that the engine's
determinism contract promises.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.engine.batch import BatchEngine
from repro.engine.pool import (
    POOL_ENV_VAR,
    PoolClosedError,
    WorkerPool,
    close_shared_pools,
    pool_enabled,
    shared_pool,
)
from tests.conftest import random_graph

WORKLOAD = [
    (0, 3, 400),
    (0, 5, 400),
    (1, 4, 250),
    (2, 6, 300),
    (0, 3, 400, 2),
    (5, 2, 150),
]


@pytest.fixture(scope="module")
def graph():
    return random_graph(seed=11, node_count=12, edge_probability=0.25)


@pytest.fixture
def pool(graph):
    with WorkerPool(graph, workers=2) as pool:
        yield pool


def run_pooled(graph, pool, **kwargs):
    engine = BatchEngine(
        graph, seed=5, chunk_size=64, workers=2, pool=pool, **kwargs
    )
    return engine.run(WORKLOAD)


class TestConformance:
    def test_pooled_run_bit_identical_to_serial(self, graph, pool):
        serial = BatchEngine(graph, seed=5, chunk_size=64).run(WORKLOAD)
        pooled = run_pooled(graph, pool)
        np.testing.assert_array_equal(pooled.estimates, serial.estimates)
        assert pooled.sweeps == serial.sweeps
        assert pooled.worlds_sampled == serial.worlds_sampled

    def test_pool_is_reused_across_runs(self, graph, pool):
        first = run_pooled(graph, pool)
        pids = set(pool.worker_pids())
        second = run_pooled(graph, pool)
        np.testing.assert_array_equal(first.estimates, second.estimates)
        # Same workers served both runs: no per-request forking.
        assert set(pool.worker_pids()) == pids
        assert pool.statistics()["runs"] == 2

    def test_pooled_vectorized_kernels_conform(self, graph, pool):
        serial = BatchEngine(graph, seed=5, chunk_size=64).run(WORKLOAD)
        pooled = run_pooled(graph, pool, kernels="vectorized")
        np.testing.assert_array_equal(pooled.estimates, serial.estimates)


class TestLifecycle:
    def test_lazy_start(self, graph):
        pool = WorkerPool(graph, workers=2)
        assert not pool.started
        assert pool.worker_pids() == ()
        assert pool.healthy()
        assert pool.started
        pool.close()

    def test_crashed_worker_respawn(self, graph, pool):
        baseline = BatchEngine(graph, seed=5, chunk_size=64).run(WORKLOAD)
        assert pool.healthy()
        for pid in pool.worker_pids():
            os.kill(pid, signal.SIGKILL)
        # The dead workers surface as BrokenProcessPool on the next run;
        # the pool must re-fork and retry it transparently.
        pooled = run_pooled(graph, pool)
        np.testing.assert_array_equal(pooled.estimates, baseline.estimates)
        stats = pool.statistics()
        assert stats["respawns"] >= 1
        assert pool.healthy()

    def test_close_is_idempotent(self, graph):
        pool = WorkerPool(graph, workers=2)
        assert pool.healthy()
        pool.close()
        pool.close()
        assert pool.closed
        assert not pool.started

    def test_closed_pool_raises_and_engine_falls_back(self, graph):
        pool = WorkerPool(graph, workers=2)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.evaluate(
                BatchEngine(graph, seed=5), [(0, 1)], (), np.zeros(0, bool), 0
            )
        # The engine treats the closed pool as "no pool": the run still
        # completes (per-run fork path) with bit-identical results.
        serial = BatchEngine(graph, seed=5, chunk_size=64).run(WORKLOAD)
        fallback = run_pooled(graph, pool)
        np.testing.assert_array_equal(fallback.estimates, serial.estimates)

    def test_graph_update_rejected(self, graph, pool):
        other = random_graph(seed=12, node_count=12, edge_probability=0.25)
        engine = BatchEngine(other, seed=5, chunk_size=64, workers=2, pool=pool)
        with pytest.raises(ValueError, match="does not match this pool"):
            engine.run(WORKLOAD)

    def test_healthy_false_after_close(self, graph):
        pool = WorkerPool(graph, workers=2)
        pool.close()
        assert not pool.healthy(timeout=5.0)

    def test_context_manager_closes(self, graph):
        with WorkerPool(graph, workers=1) as pool:
            assert pool.healthy()
        assert pool.closed


class TestSharedRegistry:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        close_shared_pools()
        yield
        close_shared_pools()

    def test_pool_enabled_env(self, monkeypatch):
        monkeypatch.delenv(POOL_ENV_VAR, raising=False)
        assert not pool_enabled()
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv(POOL_ENV_VAR, value)
            assert pool_enabled()
        monkeypatch.setenv(POOL_ENV_VAR, "0")
        assert not pool_enabled()

    def test_same_graph_shares_one_pool(self, graph):
        first = shared_pool(graph, workers=2)
        second = shared_pool(graph, workers=4)
        assert first is second  # first-seen worker count wins

    def test_distinct_graphs_get_distinct_pools(self, graph):
        other = random_graph(seed=12, node_count=12, edge_probability=0.25)
        assert shared_pool(graph, 1) is not shared_pool(other, 1)

    def test_closed_registry_pool_is_replaced(self, graph):
        first = shared_pool(graph, workers=1)
        first.close()
        second = shared_pool(graph, workers=1)
        assert second is not first
        assert not second.closed

    def test_env_var_routes_engine_runs_through_registry(
        self, graph, monkeypatch
    ):
        monkeypatch.setenv(POOL_ENV_VAR, "1")
        serial = BatchEngine(graph, seed=5, chunk_size=64).run(WORKLOAD)
        pooled = BatchEngine(graph, seed=5, chunk_size=64, workers=2).run(
            WORKLOAD
        )
        np.testing.assert_array_equal(pooled.estimates, serial.estimates)
        registry_pool = shared_pool(graph, workers=2)
        assert registry_pool.statistics()["runs"] >= 1


class TestRespawnTiming:
    def test_respawn_does_not_leak_old_workers(self, graph):
        with WorkerPool(graph, workers=2) as pool:
            assert pool.healthy()
            old_pids = set(pool.worker_pids())
            for pid in old_pids:
                os.kill(pid, signal.SIGKILL)
            run_pooled(graph, pool)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                alive = {pid for pid in old_pids if _process_alive(pid)}
                if not alive:
                    break
                time.sleep(0.05)
            assert not alive, f"old workers still alive: {alive}"


def _process_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Reaped zombies raise ProcessLookupError; an unreaped child is
    # "alive" only until the executor joins it, which close() guarantees.
    return True
